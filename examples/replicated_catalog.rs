//! §9 operations features together: a strictly consistent replicated MCS
//! (synchronous write shipping, round-robin reads, divergence eviction)
//! in front of a durable primary that survives a restart.
//!
//! Run with `cargo run --example replicated_catalog`.

use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs, ReplicatedMcs,
    WriteOp,
};
use relstore::{Database, SyncPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let admin = Credential::new("/O=Grid/CN=admin");
    let clock = Arc::new(ManualClock::default());

    // ---- part 1: replication for read scaling & reliability (§9) ----
    let fleet = ReplicatedMcs::new(&admin, 2, IndexProfile::Paper2003, clock.clone())?;
    fleet.write(
        &admin,
        &WriteOp::DefineAttribute {
            name: "experiment".into(),
            attr_type: AttrType::Str,
            description: "owning experiment".into(),
        },
    )?;
    for i in 0..50 {
        fleet.write(
            &admin,
            &WriteOp::CreateFile(
                FileSpec::named(format!("evt-{i:03}.dat"))
                    .attr("experiment", if i % 2 == 0 { "cms" } else { "atlas" }),
            ),
        )?;
    }
    let preds = [AttrPredicate::eq("experiment", "cms")];
    println!(
        "replicated catalog: {} live replicas, query returns {} hits (round-robin reads)",
        fleet.live_replicas(),
        fleet.query_by_attributes(&admin, &preds)?.len()
    );
    assert!(fleet.check_consistency(&admin, &preds)?);
    println!("all copies agree (strict consistency via synchronous write shipping)");

    // ---- part 2: durability — the catalog survives a "crash" ----
    let dir = std::env::temp_dir().join(format!("mcs-replicated-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered)?;
        let durable = Mcs::with_database(db, &admin, IndexProfile::Paper2003, clock.clone())?;
        durable.define_attribute(&admin, "experiment", AttrType::Str, "")?;
        durable.create_file(&admin, &FileSpec::named("survivor.dat").attr("experiment", "cms"))?;
        println!("durable catalog: wrote 1 file, now simulating a crash (no checkpoint)...");
    } // dropped without checkpoint — only the write-ahead log remains

    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered)?;
    let recovered = Mcs::with_database(db, &admin, IndexProfile::Paper2003, clock)?;
    let hits = recovered.query_by_attributes(&admin, &preds)?;
    println!("after restart: {} file(s) recovered from the write-ahead log", hits.len());
    assert_eq!(hits, vec![("survivor.dat".to_string(), 1)]);
    recovered.database().checkpoint()?;
    println!("checkpoint written; log truncated");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
