//! Federated metadata catalogs — the §9 future-work design, running:
//! several self-consistent site catalogs push soft-state digests to an
//! aggregating index; clients query the index first and sub-query only
//! the candidate sites.
//!
//! Run with `cargo run --example federation`.

use std::sync::Arc;

use mcs::{AttrPredicate, AttrType, Credential, FileSpec, Mcs};
use mcs_repro::federation::{digest_catalog, federated_query, FederatedSite, FederationIndex};

fn site(id: &str, experiment: &str, files: usize) -> FederatedSite {
    let admin = Credential::new(format!("/O=Grid/OU={id}/CN=admin"));
    let m = Mcs::new(&admin).unwrap();
    m.allow_anyone(&admin).unwrap();
    m.define_attribute(&admin, "experiment", AttrType::Str, "").unwrap();
    m.define_attribute(&admin, "year", AttrType::Int, "").unwrap();
    for i in 0..files {
        m.create_file(
            &admin,
            &FileSpec::named(format!("{id}-{experiment}-{i:04}.dat"))
                .attr("experiment", experiment)
                .attr("year", 2003i64 - (i % 3) as i64),
        )
        .unwrap();
    }
    FederatedSite { id: id.to_owned(), catalog: Arc::new(m) }
}

fn main() -> mcs::Result<()> {
    // Four virtual-organization sites, two communities.
    let sites = vec![
        site("isi", "ligo", 40),
        site("caltech", "ligo", 25),
        site("ncar", "esg", 30),
        site("llnl", "esg", 35),
    ];
    let index = FederationIndex::new(300);

    // Soft-state push: each site periodically digests its catalog.
    for s in &sites {
        index.update(digest_catalog(&s.id, &s.catalog, 0), 0);
    }
    println!("index holds digests from {} sites", index.site_count());

    // A LIGO query: the index prunes the ESG sites before any sub-query.
    let cred = Credential::new("/O=Grid/CN=roaming-scientist");
    let preds =
        [AttrPredicate::eq("experiment", "ligo"), AttrPredicate::eq("year", 2003i64)];
    let result = federated_query(&index, &sites, &cred, &preds, 1)?;
    println!(
        "federated LIGO query: {} hits from {} sites ({} pruned by the index)",
        result.hits.len(),
        result.queried_sites,
        result.pruned_sites
    );
    assert_eq!(result.pruned_sites, 2, "ESG sites must be pruned");
    assert!(result.hits.iter().all(|(s, _, _)| s == "isi" || s == "caltech"));

    // Soft state ages out: a site that stops pushing disappears from
    // results without any explicit deregistration.
    let result_later = federated_query(&index, &sites, &cred, &preds, 10_000)?;
    println!(
        "same query 10000s later with no digest refresh: {} hits (all digests stale)",
        result_later.hits.len()
    );
    assert!(result_later.hits.is_empty());

    // One site refreshes; only it comes back.
    index.update(digest_catalog("isi", &sites[0].catalog, 10_000), 10_000);
    let result_refreshed = federated_query(&index, &sites, &cred, &preds, 10_001)?;
    assert!(result_refreshed.hits.iter().all(|(s, _, _)| s == "isi"));
    println!("after isi refreshes its digest: {} hits, all from isi", result_refreshed.hits.len());
    Ok(())
}
