//! The paper's Figure 2, end to end: attribute-based discovery and data
//! access across three federated Grid services —
//!
//! 1–2. query the **MCS** by descriptive attributes → logical names;
//! 3–4. query the **RLS** (RLI → LRC) → physical replicas;
//! 5–6. select a replica and fetch it with **GridFTP**.
//!
//! The MCS runs as a real SOAP service over loopback TCP; the transfer
//! layer is the deterministic simulator (see DESIGN.md substitutions).
//!
//! Run with `cargo run --example discovery_access`.

use std::sync::Arc;

use gridftp::{transfer, Endpoint, GridFtpServer, TransferOptions};
use mcs::{AttrPredicate, AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs};
use mcs_net::{McsClient, McsServer};
use rls::{Digest, LocalReplicaCatalog, ReplicaLocationIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the Grid: one MCS service, two sites with LRCs, one RLI ----
    let admin = Credential::new("/O=Grid/CN=admin");
    let catalog =
        Arc::new(Mcs::with_options(&admin, IndexProfile::Paper2003, Arc::new(ManualClock::default()))?);
    let server = McsServer::start(Arc::clone(&catalog), "127.0.0.1:0", 4)?;
    let mut client = McsClient::connect(server.addr().to_string(), admin.clone());

    let caltech_lrc = LocalReplicaCatalog::new("ldas.ligo.caltech.edu");
    let isi_lrc = LocalReplicaCatalog::new("storage.isi.edu");
    let rli = ReplicaLocationIndex::new(300);

    let caltech = GridFtpServer::new(
        "ldas.ligo.caltech.edu",
        Endpoint { bandwidth_mbps: 622.0, latency_ms: 28.0 },
    );
    // the ISI cache sits on Alice's gigabit campus LAN — near and fast
    let isi = GridFtpServer::new(
        "storage.isi.edu",
        Endpoint { bandwidth_mbps: 1000.0, latency_ms: 0.5 },
    );
    let workstation = GridFtpServer::new("alice-desktop.isi.edu", Endpoint::lan());

    // ---- publication: metadata to MCS, replicas to LRCs ----
    client.define_attribute("instrument", AttrType::Str, "")?;
    client.define_attribute("gpsStart", AttrType::Int, "")?;
    for i in 0..6i64 {
        let lfn = format!("S1-H1-{i:04}.gwf");
        client.create_file(
            &FileSpec::named(&lfn).attr("instrument", "H1").attr("gpsStart", 714_000_000 + 16 * i),
        )?;
        let path = format!("/frames/{lfn}");
        caltech.put(&path, 128 << 20)?;
        caltech_lrc.add(&lfn, &caltech.url(&path))?;
        if i < 2 {
            // two segments are also cached at ISI, much closer to Alice
            isi.put(&path, 128 << 20)?;
            isi_lrc.add(&lfn, &isi.url(&path))?;
        }
    }
    // soft-state: each LRC pushes its digest to the index
    for lrc in [&caltech_lrc, &isi_lrc] {
        rli.update(Digest::build(lrc.id(), &lrc.lfns(), 0, 0.001), 0);
    }

    // ---- steps 1–2: attribute query against the metadata service ----
    let hits = client.query_by_attributes(&[
        AttrPredicate::eq("instrument", "H1"),
        AttrPredicate { name: "gpsStart".into(), op: mcs::AttrOp::Lt, value: 714_000_032i64.into() },
    ])?;
    println!("MCS returned {} logical names", hits.len());
    assert_eq!(hits.len(), 2);

    // ---- steps 3–4: logical name -> physical replicas via RLI + LRCs ----
    let lrcs = [&caltech_lrc, &isi_lrc];
    for (lfn, _version) in &hits {
        let sites = rli.query(lfn, 1);
        let mut replicas = Vec::new();
        for site in &sites {
            let lrc = lrcs.iter().find(|l| l.id() == site).expect("known site");
            replicas.extend(lrc.lookup(lfn));
        }
        println!("{lfn}: {} replica(s) at sites {sites:?}", replicas.len());
        assert_eq!(replicas.len(), 2, "both sites hold the early segments");

        // ---- steps 5–6: replica selection + GridFTP retrieval ----
        // naive selection: try each replica, keep the fastest simulated
        // transfer (a real broker would use NWS forecasts)
        let path = format!("/frames/{lfn}");
        let mut best: Option<(String, gridftp::TransferReport)> = None;
        for (srcname, src) in [("ldas.ligo.caltech.edu", &caltech), ("storage.isi.edu", &isi)] {
            if src.size_of(&path).is_none() {
                continue;
            }
            let dst_path = format!("/scratch/{srcname}/{lfn}");
            let report = transfer(src, &path, &workstation, &dst_path, TransferOptions::default())?;
            if best.as_ref().is_none_or(|(_, b)| report.duration < b.duration) {
                best = Some((srcname.to_owned(), report));
            }
        }
        let (site, report) = best.expect("at least one replica");
        println!(
            "  fetched from {site}: {:.1} MB in {:.2}s ({:.0} Mbit/s)",
            report.bytes as f64 / 1e6,
            report.duration.as_secs_f64(),
            report.throughput_mbps
        );
        assert_eq!(site, "storage.isi.edu", "the near replica must win");
    }

    println!("figure-2 scenario complete: {} files delivered", workstation.file_count() / 2);
    Ok(())
}
