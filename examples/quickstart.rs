//! Quickstart: the full publication → discovery → annotation cycle from
//! paper §2, in one binary against an in-process catalog.
//!
//! Run with `cargo run --example quickstart`.

use mcs::{
    AttrPredicate, AttrType, Credential, FileSpec, Mcs, ObjectRef, Permission, ANYONE,
};

fn main() -> mcs::Result<()> {
    // --- bootstrap: a catalog with one administrator ---
    let admin = Credential::new("/O=Grid/OU=ISI/CN=admin");
    let catalog = Mcs::new(&admin)?;

    // The community agrees on an attribute ontology (paper §5:
    // user-defined attributes encode domain-specific schemas).
    catalog.define_attribute(&admin, "instrument", AttrType::Str, "detector site")?;
    catalog.define_attribute(&admin, "gps_start", AttrType::Int, "GPS start second")?;
    catalog.define_attribute(&admin, "duration_s", AttrType::Int, "segment length")?;

    // --- publication (paper §2) ---
    catalog.create_collection(&admin, "s1-run", None, "science run 1, calibrated")?;
    for (i, instrument) in ["H1", "H2", "L1"].iter().cycle().take(12).enumerate() {
        let name = format!("S1-{instrument}-{:04}.gwf", i);
        catalog.create_file(
            &admin,
            &FileSpec::named(&name)
                .in_collection("s1-run")
                .attr("instrument", *instrument)
                .attr("gps_start", 714_000_000 + i as i64 * 16)
                .attr("duration_s", 16i64),
        )?;
    }
    println!("published {} logical files into `s1-run`", catalog.file_count()?);

    // Publish = make visible: the community gets read access on the
    // collection, so every file inherits it (union up the hierarchy),
    // plus service-level read so attribute queries are allowed at all.
    catalog.grant(&admin, &ObjectRef::Collection("s1-run".into()), ANYONE, Permission::Read)?;
    catalog.grant(&admin, &ObjectRef::Service, ANYONE, Permission::Read)?;

    // --- discovery (paper §2): attribute-based query ---
    let scientist = Credential::new("/O=Grid/OU=LIGO/CN=alice");
    let hits = catalog.query_by_attributes(
        &scientist,
        &[
            AttrPredicate::eq("instrument", "H1"),
            AttrPredicate {
                name: "gps_start".into(),
                op: mcs::AttrOp::Ge,
                value: 714_000_060i64.into(),
            },
        ],
    )?;
    println!("H1 segments at/after GPS 714000060:");
    for (name, version) in &hits {
        println!("  {name} (v{version})");
    }
    assert!(!hits.is_empty());

    // --- annotation and views (paper §2/§5) ---
    let (first, _) = hits[0].clone();
    catalog.annotate(&scientist, &ObjectRef::File(first.clone()), "clean stretch, low seismic")?;
    catalog.create_view(&admin, "alice-picks", "segments Alice flagged")?;
    catalog.add_to_view(&admin, "alice-picks", &ObjectRef::File(first.clone()))?;
    let view = catalog.list_view(&admin, "alice-picks")?;
    println!("view `alice-picks` now holds {:?}", view.files);

    // --- provenance & audit ---
    catalog.add_history(&admin, &first, "calibrated with h(t) pipeline v2")?;
    let history = catalog.get_history(&admin, &first)?;
    println!("history of {first}: {}", history[0].description);

    let annotations = catalog.get_annotations(&scientist, &ObjectRef::File(first))?;
    println!("annotations: {}", annotations[0].text);

    println!("quickstart complete");
    Ok(())
}
