//! The Pegasus/LIGO integration (paper §6.1).
//!
//! A simplified Pegasus planner maps an abstract pulsar-search request
//! onto concrete work: it queries the MCS for existing data products with
//! the requested metadata; products that already exist are reused, the
//! rest become compute jobs whose outputs are registered back into the
//! MCS (and their physical locations into the RLS). The paper notes that
//! 23 user-defined attributes sufficed to capture the LIGO environment —
//! this example registers exactly that ontology.
//!
//! Run with `cargo run --example pegasus_ligo`.

use std::sync::Arc;

use mcs::{AttrPredicate, AttrType, Attribute, Credential, FileSpec, Mcs};
use relstore::Value;
use rls::LocalReplicaCatalog;

/// The 23 LIGO user-defined attributes (paper §6.1: "we added 23
/// user-defined attributes to the pre-defined attributes provided by the
/// MCS schema").
const LIGO_ATTRS: [(&str, AttrType); 23] = [
    ("dataType", AttrType::Str),          // time series / spectrum / pulsar candidates
    ("instrument", AttrType::Str),        // H1, H2, L1
    ("channel", AttrType::Str),
    ("frameType", AttrType::Str),
    ("gpsStart", AttrType::Int),
    ("gpsEnd", AttrType::Int),
    ("duration", AttrType::Int),
    ("sampleRate", AttrType::Float),
    ("fLow", AttrType::Float),
    ("fHigh", AttrType::Float),
    ("band", AttrType::Float),
    ("runId", AttrType::Str),
    ("calibrationVersion", AttrType::Int),
    ("pipelineVersion", AttrType::Str),
    ("analysisDate", AttrType::Date),
    ("segmentQuality", AttrType::Int),
    ("skyRightAscension", AttrType::Float),
    ("skyDeclination", AttrType::Float),
    ("spinDownOrder", AttrType::Int),
    ("templateBank", AttrType::Str),
    ("snrThreshold", AttrType::Float),
    ("vetoCategory", AttrType::Int),
    ("productLevel", AttrType::Int),      // 0 raw, 1 spectrum, 2 candidates
];

/// An abstract workflow request: pulsar candidates for a frequency band.
struct Request {
    run_id: &'static str,
    f_low: f64,
    f_high: f64,
    bands: usize,
}

/// One planned concrete job.
#[derive(Debug)]
enum PlannedStep {
    Reuse { product: String },
    Compute { product: String, f_low: f64, f_high: f64 },
}

fn product_name(run: &str, f_low: f64) -> String {
    format!("{run}-pulsar-{f_low:05.0}Hz.xml")
}

/// The planner: for each band, discover or schedule (paper: "Pegasus uses
/// MCS to discover existing application data products").
fn plan(mcs: &Mcs, cred: &Credential, req: &Request) -> mcs::Result<Vec<PlannedStep>> {
    let step = (req.f_high - req.f_low) / req.bands as f64;
    let mut steps = Vec::new();
    for b in 0..req.bands {
        let f_low = req.f_low + step * b as f64;
        let f_high = f_low + step;
        let existing = mcs.query_by_attributes(
            cred,
            &[
                AttrPredicate::eq("dataType", "pulsarCandidates"),
                AttrPredicate::eq("runId", req.run_id),
                AttrPredicate::eq("fLow", f_low),
                AttrPredicate::eq("fHigh", f_high),
            ],
        )?;
        match existing.first() {
            Some((name, _)) => steps.push(PlannedStep::Reuse { product: name.clone() }),
            None => steps.push(PlannedStep::Compute {
                product: product_name(req.run_id, f_low),
                f_low,
                f_high,
            }),
        }
    }
    Ok(steps)
}

/// "Execute" a compute job: register the materialized product in the MCS
/// (paper: "Pegasus uses the Metadata Catalog Service to record metadata
/// attributes associated with those newly materialized data products")
/// and its physical replica in the RLS.
fn execute(
    mcs: &Mcs,
    rls: &LocalReplicaCatalog,
    cred: &Credential,
    run_id: &str,
    product: &str,
    f_low: f64,
    f_high: f64,
) -> mcs::Result<()> {
    let mut spec = FileSpec::named(product);
    spec.data_type = Some("LIGO_LW XML".into());
    spec.attributes = vec![
        Attribute { name: "dataType".into(), value: "pulsarCandidates".into() },
        Attribute { name: "runId".into(), value: run_id.into() },
        Attribute { name: "fLow".into(), value: Value::Float(f_low) },
        Attribute { name: "fHigh".into(), value: Value::Float(f_high) },
        Attribute { name: "band".into(), value: Value::Float(f_high - f_low) },
        Attribute { name: "pipelineVersion".into(), value: "pulsar-search-3.1".into() },
        Attribute { name: "productLevel".into(), value: Value::Int(2) },
    ];
    mcs.create_file(cred, &spec)?;
    mcs.add_history(cred, product, &format!("pulsar-search --band {f_low}-{f_high}Hz"))?;
    rls.add(product, &format!("gsiftp://ldas.ligo.caltech.edu/products/{product}"))
        .expect("fresh product has no replicas yet");
    Ok(())
}

fn main() -> mcs::Result<()> {
    let admin = Credential::new("/O=LIGO/CN=pegasus");
    let mcs = Arc::new(Mcs::new(&admin)?);
    let lrc = LocalReplicaCatalog::new("ldas-caltech");

    for (name, ty) in LIGO_ATTRS {
        mcs.define_attribute(&admin, name, ty, "LIGO ontology")?;
    }
    println!("registered {} LIGO user-defined attributes", LIGO_ATTRS.len());

    // Seed: two bands of run S1 were analyzed last month.
    for f_low in [40.0f64, 45.0] {
        execute(&mcs, &lrc, &admin, "S1", &product_name("S1", f_low), f_low, f_low + 5.0)?;
    }

    // A scientist asks for the 40–60 Hz band in 5 Hz slices.
    let request = Request { run_id: "S1", f_low: 40.0, f_high: 60.0, bands: 4 };
    let steps = plan(&mcs, &admin, &request)?;

    let mut computed = 0;
    let mut reused = 0;
    for step in &steps {
        match step {
            PlannedStep::Reuse { product } => {
                reused += 1;
                let pfns = lrc.lookup(product);
                println!("reuse   {product}  (replicas: {pfns:?})");
            }
            PlannedStep::Compute { product, f_low, f_high } => {
                computed += 1;
                println!("compute {product}  [{f_low}, {f_high}) Hz");
                execute(&mcs, &lrc, &admin, "S1", product, *f_low, *f_high)?;
            }
        }
    }
    assert_eq!(reused, 2, "the two seeded bands must be reused");
    assert_eq!(computed, 2, "the two missing bands must be computed");

    // Re-planning the same request now reuses everything.
    let steps = plan(&mcs, &admin, &request)?;
    assert!(steps.iter().all(|s| matches!(s, PlannedStep::Reuse { .. })));
    println!("re-planning after execution: all {} bands reused — workflow is idempotent", steps.len());

    // Provenance survives: every product records how it was made.
    let history = mcs.get_history(&admin, &product_name("S1", 50.0))?;
    println!("provenance of 50Hz product: {}", history[0].description);
    Ok(())
}
