//! The Earth System Grid integration (paper §6.2): loading
//! netCDF-convention + Dublin Core XML metadata into the MCS by
//! *shredding* it into user-defined attributes — including the friction
//! the ESG scientists reported.
//!
//! Run with `cargo run --example esg_xml`.

use mcs::{AttrPredicate, Credential, Mcs, ObjectRef};

/// A climate-model dataset description in the style ESG used: netCDF
/// variable metadata plus Dublin Core fields.
fn esg_document(run: &str, variable: &str, mean: f64) -> String {
    format!(
        r#"<?xml version="1.0"?>
<dataset xmlns:dc="http://purl.org/dc/elements/1.1/">
  <dc:title>PCM run {run}</dc:title>
  <dc:creator>NCAR Climate and Global Dynamics</dc:creator>
  <dc:date>2002-08-15</dc:date>
  <dc:format>netCDF</dc:format>
  <convention>CF-1.0</convention>
  <run>{run}</run>
  <variable name="{variable}">
    <long_name>surface temperature</long_name>
    <units>K</units>
    <mean>{mean}</mean>
  </variable>
  <grid>
    <resolution_deg>2.8</resolution_deg>
    <levels>18</levels>
  </grid>
  <timesteps>1460</timesteps>
</dataset>"#
    )
}

fn main() -> mcs::Result<()> {
    let admin = Credential::new("/O=ESG/CN=loader");
    let catalog = Mcs::new(&admin)?;

    // Load three datasets; shredding defines attributes on first use.
    let mut total_attrs = 0;
    for (run, var, mean) in [("B06.22", "TS", 287.4), ("B06.23", "TS", 287.9), ("B06.28", "TS", 286.8)]
    {
        let name = format!("pcm.{run}.nc");
        let (_, n) = catalog.publish_xml_metadata(&admin, &name, &esg_document(run, var, mean))?;
        total_attrs += n;
        println!("loaded {name}: {n} shredded attributes");
    }
    println!(
        "{} attribute definitions now in the catalog (vs. 3 XML documents — the paper's \
         'no simple mapping between XML metadata files and MCS relational tables')",
        catalog.attribute_definitions()?.len()
    );

    // Discovery works, through Dublin Core...
    let by_creator = catalog.query_by_attributes(
        &admin,
        &[AttrPredicate::eq("dataset/creator", "NCAR Climate and Global Dynamics")],
    )?;
    println!("datasets by NCAR CGD: {}", by_creator.len());
    assert_eq!(by_creator.len(), 3);

    // ...and through netCDF-derived numeric attributes with ranges.
    let warm = catalog.query_by_attributes(
        &admin,
        &[AttrPredicate {
            name: "dataset/variable/mean".into(),
            op: mcs::AttrOp::Ge,
            value: 287.5f64.into(),
        }],
    )?;
    println!("runs with mean TS >= 287.5 K: {warm:?}");
    assert_eq!(warm.len(), 1);

    // The friction, reproduced: the shredded paths are unwieldy...
    let attrs = catalog.get_attributes(&admin, &ObjectRef::File("pcm.B06.22.nc".into()))?;
    println!("example shredded paths for one dataset:");
    for a in attrs.iter().take(5) {
        println!("  {} = {}", a.name, a.value);
    }
    // ...and round-tripping back to XML is lossy (repeats got suffixes,
    // document order is gone) — which is why §9 proposes a native XML
    // backend as future work.
    println!(
        "({} attributes total across {} files; reconstructing the original XML from \
         these rows is not possible — paper §6.2's 'cumbersome and slow')",
        total_attrs, 3
    );
    Ok(())
}
