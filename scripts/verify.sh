#!/usr/bin/env sh
# Tier-1 verification: release build + full test suite (see ROADMAP.md).
#
# With no argument, the tier-1 gate runs unchanged: build everything,
# run everything. CI splits the same suite into lanes so the slow
# byte-granular crash matrix and the multi-writer stress runs don't
# serialise behind the fast unit tests:
#
#   verify.sh          build + the whole suite (the tier-1 gate)
#   verify.sh unit     everything except *_truncation / *_stress tests
#   verify.sh crash    WAL crash-recovery matrix (*_truncation tests)
#   verify.sh stress   concurrent-commit stress runs (*_stress tests)
#   verify.sh async-durability
#                      the async epoch/ack contract: mixed-durability
#                      crash matrix, wait_for_epoch liveness, epoch
#                      monotonicity property test, SOAP round-trip
#   verify.sh cache    the read-cache consistency contract (DESIGN.md
#                      §7.3): table-version unit tests, cache unit
#                      tests, the seeded cached-vs-uncached twin
#                      property test, and the SOAP bypass/stats
#                      round-trip
#   verify.sh shard    the sharded-catalog contract (DESIGN.md §7.4):
#                      the seeded 1-shard-vs-4-shard twin property
#                      test, the two-phase membership crash matrix,
#                      the parallel loader equivalence test, and the
#                      SOAP shard-routing round-trip
#   verify.sh mvcc     the snapshot-read contract (DESIGN.md §7.5):
#                      relstore version-chain/snapshot/vacuum unit
#                      tests, the seeded MVCC-vs-barrier twin property
#                      test, the snapshot-isolation test, and the
#                      MVCC WAL-truncation crash matrix
#   verify.sh planner  the cost-based-planner contract (DESIGN.md
#                      §7.6): relstore statistics/index-dive unit
#                      tests, plan construction unit tests, the
#                      plan-shape + statistics edge-case regressions,
#                      the seeded planner-vs-posting-scan twin
#                      property test (barrier/MVCC/4-shard), and the
#                      explainQuery SOAP round-trip
#   verify.sh wire     the binary wire-protocol contract (DESIGN.md
#                      §7.7): frame codec unit tests, the seeded
#                      SOAP-vs-binary cross-protocol twin property
#                      test (barrier/MVCC/4-shard), the frame-decoder
#                      fuzz/robustness harness, the 8×200 pipelining
#                      stress test, and the connection-reuse
#                      regressions shared with the SOAP keep-alive
#                      client
set -eu
cd "$(dirname "$0")/.."

lane="${1:-all}"
case "$lane" in
  all)
    cargo build --release
    cargo test -q
    ;;
  unit)
    cargo build --release
    cargo test -q -- --skip _truncation --skip _stress
    ;;
  crash)
    start=$(date +%s)
    cargo test -q _truncation
    echo "crash lane: $(($(date +%s) - start))s elapsed"
    ;;
  stress)
    start=$(date +%s)
    cargo test -q _stress
    echo "stress lane: $(($(date +%s) - start))s elapsed"
    ;;
  async-durability)
    start=$(date +%s)
    if ! cargo test -q -p relstore --test epoch_monotonicity --test async_epoch_liveness; then
      echo "async-durability lane failed." >&2
      echo "To replay a monotonicity failure, rerun with the seed printed above:" >&2
      echo "  RELSTORE_EPOCH_SEED=<seed> cargo test -p relstore --test epoch_monotonicity -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p relstore epoch
    cargo test -q -p mcs --test crash_atomicity mixed_durability_epoch_contract
    cargo test -q -p mcs-net --test async_durability
    echo "async-durability lane: $(($(date +%s) - start))s elapsed"
    ;;
  cache)
    start=$(date +%s)
    cargo test -q -p relstore --lib table_version
    cargo test -q -p mcs --lib cache
    if ! cargo test -q -p mcs --test cache_consistency; then
      echo "cache lane failed." >&2
      echo "To replay a twin-divergence failure, rerun with the seed printed above:" >&2
      echo "  MCS_CACHE_SEED=<seed> cargo test -p mcs --test cache_consistency -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p mcs-net --test cache_over_net
    cargo test -q -p soapstack --test keep_alive
    echo "cache lane: $(($(date +%s) - start))s elapsed"
    ;;
  shard)
    start=$(date +%s)
    if ! cargo test -q -p mcs --test shard_twin; then
      echo "shard lane failed." >&2
      echo "To replay a twin-divergence failure, rerun with the seed printed above:" >&2
      echo "  MCS_SHARD_SEED=<seed> cargo test -p mcs --test shard_twin -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p mcs --test shard_crash
    cargo test -q -p workload sharded
    cargo test -q -p mcs-net --test sharded_over_net
    echo "shard lane: $(($(date +%s) - start))s elapsed"
    ;;
  mvcc)
    start=$(date +%s)
    cargo test -q -p relstore --lib mvcc
    cargo test -q -p relstore --lib snapshot
    cargo test -q -p relstore --lib vacuum
    if ! cargo test -q -p mcs --test mvcc_twin; then
      echo "mvcc lane failed." >&2
      echo "To replay a twin-divergence failure, rerun with the seed printed above:" >&2
      echo "  MCS_MVCC_SEED=<seed> cargo test -p mcs --test mvcc_twin -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p mcs --test mvcc_truncation
    echo "mvcc lane: $(($(date +%s) - start))s elapsed"
    ;;
  planner)
    start=$(date +%s)
    cargo test -q -p relstore --lib stats
    cargo test -q -p relstore --lib statistics
    cargo test -q -p relstore --lib planner
    cargo test -q -p mcs --lib plan
    cargo test -q -p mcs --test plan_shape
    if ! cargo test -q -p mcs --test planner_twin; then
      echo "planner lane failed." >&2
      echo "To replay a twin-divergence failure, rerun with the seed printed above:" >&2
      echo "  MCS_PLANNER_SEED=<seed> cargo test -p mcs --test planner_twin -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p mcs-net --test roundtrip explain
    echo "planner lane: $(($(date +%s) - start))s elapsed"
    ;;
  wire)
    start=$(date +%s)
    cargo test -q -p mcs-net --lib binproto
    if ! cargo test -q -p mcs-net --test wire_twin; then
      echo "wire lane failed." >&2
      echo "To replay a twin-divergence failure, rerun with the seed printed above:" >&2
      echo "  MCS_WIRE_SEED=<seed> cargo test -p mcs-net --test wire_twin -- --nocapture" >&2
      exit 1
    fi
    cargo test -q -p mcs-net --test bin_fuzz
    cargo test -q -p mcs-net --test bin_pipeline_stress
    cargo test -q -p soapstack --test keep_alive
    echo "wire lane: $(($(date +%s) - start))s elapsed"
    ;;
  *)
    echo "usage: verify.sh [unit|crash|stress|async-durability|cache|shard|mvcc|planner|wire]" >&2
    exit 2
    ;;
esac
