#!/usr/bin/env sh
# Tier-1 verification: release build + full test suite (see ROADMAP.md).
set -eu
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
