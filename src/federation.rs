//! Federated metadata catalogs — the paper's §9 future-work sketch,
//! built from the pieces the paper says to reuse:
//!
//! > "consistent local catalogs use soft state update mechanisms to send
//! > periodic summaries of metadata discovery information to aggregating
//! > index nodes. Clients query these indexes to discover desirable data
//! > sets across a collection of metadata services and then issue
//! > subqueries to the underlying local catalogs."
//!
//! Each site runs its own self-consistent [`mcs::Mcs`]. A
//! [`FederationIndex`] receives Bloom-filter digests of each catalog's
//! *(attribute name, value)* pairs (the same soft-state machinery as the
//! RLS's [`rls::ReplicaLocationIndex`]); a federated query first asks the
//! index which sites may match, then sub-queries only those catalogs.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcs::{AttrOp, AttrPredicate, Credential, Mcs};
use rls::softstate::{BloomFilter, Digest};

/// One site's catalog registered in a federation.
pub struct FederatedSite {
    /// Site identifier.
    pub id: String,
    /// The site's local catalog.
    pub catalog: Arc<Mcs>,
}

/// Digest an MCS catalog's attribute content for the federation index:
/// every `(attribute name, value)` pair present on any valid logical file.
///
/// Only equality predicates can be pre-filtered through such a digest;
/// range/LIKE predicates always fan out (documented limitation, same
/// trade-off Giggle makes).
pub fn digest_catalog(site_id: &str, catalog: &Mcs, produced_at: u64) -> Digest {
    let db = catalog.database();
    let table = db.table("user_attributes").expect("catalog schema");
    let t = table.read();
    let mut filter = BloomFilter::with_capacity(t.len().max(16), 0.001);
    for (_, row) in t.scan() {
        // columns: id, object_type, object_id, name, attr_type, str, int,
        // float, date, time, datetime
        if row[1] != relstore::Value::Int(0) {
            continue; // only logical-file attributes are discoverable
        }
        let name = match &row[3] {
            relstore::Value::Str(s) => s,
            _ => continue,
        };
        for v in &row[5..11] {
            if !v.is_null() {
                filter.insert(&key(name, v));
            }
        }
    }
    Digest { lrc_id: site_id.to_owned(), filter, produced_at }
}

fn key(name: &str, value: &relstore::Value) -> String {
    format!("{name}\u{1}{value}")
}

/// An aggregating index node over many site catalogs.
pub struct FederationIndex {
    sites: parking_lot::RwLock<BTreeMap<String, (Digest, u64)>>,
    ttl: u64,
}

impl FederationIndex {
    /// Index with the given digest TTL (seconds of logical time).
    pub fn new(ttl: u64) -> FederationIndex {
        FederationIndex { sites: parking_lot::RwLock::new(BTreeMap::new()), ttl }
    }

    /// Accept a digest push (replaces the site's previous digest).
    pub fn update(&self, digest: Digest, now: u64) {
        self.sites.write().insert(digest.lrc_id.clone(), (digest, now));
    }

    /// Sites that *may* match every equality predicate (Bloom, so false
    /// positives possible; non-equality predicates do not prune).
    pub fn candidate_sites(&self, preds: &[AttrPredicate], now: u64) -> Vec<String> {
        let sites = self.sites.read();
        sites
            .values()
            .filter(|(_, received)| now.saturating_sub(*received) <= self.ttl)
            .filter(|(d, _)| {
                preds
                    .iter()
                    .filter(|p| p.op == AttrOp::Eq)
                    .all(|p| d.filter.contains(&key(&p.name, &p.value)))
            })
            .map(|(d, _)| d.lrc_id.clone())
            .collect()
    }

    /// Number of live site digests.
    pub fn site_count(&self) -> usize {
        self.sites.read().len()
    }
}

/// Result of a federated query: per-site hits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FederatedHits {
    /// (site id, logical name, version) triples, sorted.
    pub hits: Vec<(String, String, i64)>,
    /// Sites the index pruned away without sub-querying.
    pub pruned_sites: usize,
    /// Sites actually sub-queried.
    pub queried_sites: usize,
}

/// Run a federated attribute query: index pre-filter, then sub-queries to
/// candidate sites only (paper §9's two-step discovery).
pub fn federated_query(
    index: &FederationIndex,
    sites: &[FederatedSite],
    cred: &Credential,
    preds: &[AttrPredicate],
    now: u64,
) -> mcs::Result<FederatedHits> {
    let candidates = index.candidate_sites(preds, now);
    let mut out = FederatedHits {
        pruned_sites: sites.len().saturating_sub(candidates.len()),
        ..Default::default()
    };
    for site in sites {
        if !candidates.contains(&site.id) {
            continue;
        }
        out.queried_sites += 1;
        for (name, version) in site.catalog.query_by_attributes(cred, preds)? {
            out.hits.push((site.id.clone(), name, version));
        }
    }
    out.hits.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs::{AttrType, FileSpec};

    fn site(id: &str, channel: &str, n: usize) -> FederatedSite {
        let admin = Credential::new("/CN=admin");
        let m = Mcs::new(&admin).unwrap();
        m.allow_anyone(&admin).unwrap();
        m.define_attribute(&admin, "channel", AttrType::Str, "").unwrap();
        for i in 0..n {
            m.create_file(&admin, &FileSpec::named(format!("{id}-f{i}")).attr("channel", channel))
                .unwrap();
        }
        FederatedSite { id: id.to_owned(), catalog: Arc::new(m) }
    }

    #[test]
    fn index_prunes_non_matching_sites() {
        let sites = vec![site("isi", "H1", 3), site("cern", "L1", 3), site("ncsa", "H1", 2)];
        let index = FederationIndex::new(300);
        for s in &sites {
            index.update(digest_catalog(&s.id, &s.catalog, 0), 0);
        }
        let cred = Credential::new("/CN=u");
        let preds = [AttrPredicate::eq("channel", "H1")];
        let r = federated_query(&index, &sites, &cred, &preds, 10).unwrap();
        assert_eq!(r.hits.len(), 5);
        assert!(r.hits.iter().all(|(s, _, _)| s == "isi" || s == "ncsa"));
        // "cern" pruned without a sub-query (false positives possible but
        // vanishingly unlikely at fp=0.001 with this tiny content)
        assert_eq!(r.pruned_sites, 1);
        assert_eq!(r.queried_sites, 2);
    }

    #[test]
    fn stale_digests_drop_out() {
        let sites = vec![site("isi", "H1", 1)];
        let index = FederationIndex::new(60);
        index.update(digest_catalog("isi", &sites[0].catalog, 0), 0);
        let cred = Credential::new("/CN=u");
        let preds = [AttrPredicate::eq("channel", "H1")];
        assert_eq!(federated_query(&index, &sites, &cred, &preds, 59).unwrap().hits.len(), 1);
        assert!(federated_query(&index, &sites, &cred, &preds, 61).unwrap().hits.is_empty());
    }

    #[test]
    fn non_equality_predicates_do_not_prune() {
        let sites = vec![site("isi", "H1", 1), site("cern", "L1", 1)];
        let index = FederationIndex::new(300);
        for s in &sites {
            index.update(digest_catalog(&s.id, &s.catalog, 0), 0);
        }
        let cred = Credential::new("/CN=u");
        let preds = [AttrPredicate {
            name: "channel".into(),
            op: AttrOp::Like,
            value: "H%".into(),
        }];
        let r = federated_query(&index, &sites, &cred, &preds, 0).unwrap();
        assert_eq!(r.queried_sites, 2); // both consulted
        assert_eq!(r.hits.len(), 1); // only isi matches
    }
}
