//! # mcs-repro — reproduction of *"A Metadata Catalog Service for Data
//! Intensive Applications"* (Singh et al., SC'03)
//!
//! This facade crate re-exports the workspace's components and hosts the
//! cross-crate [`federation`] prototype (paper §9) plus the runnable
//! examples under `examples/`:
//!
//! | crate | role |
//! |---|---|
//! | [`mcs`] | the Metadata Catalog Service itself |
//! | [`mcs_net`] | its SOAP web service and client |
//! | [`relstore`] | the embedded relational backend (MySQL stand-in) |
//! | [`soapstack`] | XML + HTTP + SOAP substrate (Tomcat/Axis stand-in) |
//! | [`rls`] | the Replica Location Service it federates with |
//! | [`gridftp`] | the transport simulator for end-to-end scenarios |
//! | [`workload`] | the §7 evaluation workload and client driver |
//!
//! Start with `examples/quickstart.rs`; the evaluation harness lives in
//! `crates/mcs-bench`.

#![warn(missing_docs)]

pub use gridftp;
pub use mcs;
pub use mcs_net;
pub use relstore;
pub use rls;
pub use soapstack;
pub use workload;
pub use xmlkit;

pub mod federation;
