//! Property tests: XML serialize→parse is the identity on element trees.

use proptest::prelude::*;
use xmlkit::{parse, Element, Node};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}(:[a-z][a-z0-9]{0,4})?"
}

/// Text with tricky characters but never whitespace-only (the parser
/// canonicalizes indentation-only runs away).
fn arb_text() -> impl Strategy<Value = String> {
    "[a-z<>&\"' ]{0,10}[a-z<>&\"']"
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), prop::collection::vec((arb_name(), arb_text()), 0..3)).prop_map(
        |(name, attrs)| {
            let mut e = Element::new(name);
            e.attrs = dedup_attrs(attrs);
            e
        },
    );
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
            prop::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    arb_text().prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                e.attrs = dedup_attrs(attrs);
                // merge adjacent text nodes (parser always coalesces them)
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}

fn dedup_attrs(attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.into_iter().filter(|(n, _)| seen.insert(n.clone())).collect()
}

proptest! {
    #[test]
    fn xml_serialize_parse_roundtrip(e in arb_element()) {
        let wire = e.to_xml();
        let parsed = parse(&wire).unwrap();
        prop_assert_eq!(parsed, e);
    }
}
