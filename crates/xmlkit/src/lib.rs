//! # xmlkit — minimal XML 1.0
//!
//! A tree model, a writer with correct escaping, and a non-validating
//! parser (elements, attributes, text, CDATA, comments, processing
//! instructions). Namespaces are not resolved — prefixed names are kept
//! verbatim, which is all the SOAP layer and the ESG metadata shredder of
//! this MCS reproduction need.

#![warn(missing_docs)]


use std::fmt;

/// XML errors.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlError {
    /// Parse failure with byte offset and message.
    Parse {
        /// Byte offset in the input.
        at: usize,
        /// Description.
        msg: String,
    },
    /// Tree navigation failure (missing child, wrong text...).
    Shape(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { at, msg } => write!(f, "XML parse error at byte {at}: {msg}"),
            XmlError::Shape(m) => write!(f, "XML shape error: {m}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, XmlError>;

/// An element node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Tag name (prefix kept verbatim, e.g. `soap:Envelope`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<Node>,
}

/// Any node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Element node.
    Element(Element),
    /// Text node (already unescaped).
    Text(String),
}

impl Element {
    /// New empty element.
    pub fn new(name: impl Into<String>) -> Element {
        Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: append a child element.
    pub fn child(mut self, e: Element) -> Element {
        self.children.push(Node::Element(e));
        self
    }

    /// Builder: append a text node.
    pub fn text(mut self, t: impl Into<String>) -> Element {
        self.children.push(Node::Text(t.into()));
        self
    }

    /// Local part of the tag name (`Body` for `soap:Body`).
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// First child element with the given local name.
    pub fn find(&self, local: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            Node::Element(e) if e.local_name() == local => Some(e),
            _ => None,
        })
    }

    /// Like [`Element::find`] but an error if absent.
    pub fn expect(&self, local: &str) -> Result<&Element> {
        self.find(local)
            .ok_or_else(|| XmlError::Shape(format!("<{}> has no <{local}> child", self.name)))
    }

    /// All child elements with the given local name.
    pub fn find_all<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.local_name() == local => Some(e),
            _ => None,
        })
    }

    /// All child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element (direct text children).
    pub fn text_content(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s
    }

    /// Attribute value by name.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Serialize to a string (no XML declaration, no pretty-printing —
    /// SOAP peers don't care and compactness is what we measure).
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(256);
        write_element(self, &mut out);
        out
    }
}

/// Escape text content.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escape an attribute value (double-quoted).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            Node::Element(el) => write_element(el, out),
            Node::Text(t) => escape_text(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Parse a document; returns the root element. Leading XML declaration,
/// comments and PIs are skipped.
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser { input, bytes: input.as_bytes(), pos: 0 };
    p.skip_misc();
    let root = p.element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::Parse { at: self.pos, msg: msg.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\r' | b'\n')
        {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs, and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                if let Some(end) = self.input[self.pos..].find("?>") {
                    self.pos += end + 2;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<!--") {
                if let Some(end) = self.input[self.pos + 4..].find("-->") {
                    self.pos += 4 + end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            return;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            let ok = c.is_ascii_alphanumeric()
                || c == b'_'
                || c == b'-'
                || c == b'.'
                || c == b':'
                || c >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn element(&mut self) -> Result<Element> {
        if !self.starts_with("<") {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                return Ok(el);
            }
            if self.starts_with(">") {
                self.pos += 1;
                break;
            }
            // attribute
            let an = self.name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err("expected `=` after attribute name"));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.bytes.get(self.pos) {
                Some(&q @ (b'"' | b'\'')) => q,
                _ => return Err(self.err("expected quoted attribute value")),
            };
            self.pos += 1;
            let vstart = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                self.pos += 1;
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated attribute value"));
            }
            let raw = &self.input[vstart..self.pos];
            self.pos += 1;
            el.attrs.push((an, unescape(raw, vstart)?));
        }
        // content
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err(format!("unterminated <{}>", el.name)));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != el.name {
                    return Err(self.err(format!("</{close}> closes <{}>", el.name)));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.err("expected `>`"));
                }
                self.pos += 1;
                return Ok(el);
            }
            if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                let end = self.input[start..]
                    .find("]]>")
                    .ok_or_else(|| self.err("unterminated CDATA"))?;
                push_text(&mut el, self.input[start..start + end].to_owned());
                self.pos = start + end + 3;
                continue;
            }
            if self.starts_with("<!--") {
                let end = self.input[self.pos + 4..]
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos += 4 + end + 3;
                continue;
            }
            if self.starts_with("<?") {
                let end = self.input[self.pos..]
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos += end + 2;
                continue;
            }
            if self.starts_with("<") {
                let child = self.element()?;
                el.children.push(Node::Element(child));
                continue;
            }
            // text run
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            let text = unescape(raw, start)?;
            if !text.trim().is_empty() || !el.children.is_empty() {
                // keep interior whitespace but drop pure-indentation runs
                // before the first child
                push_text(&mut el, text);
            }
        }
    }
}

fn push_text(el: &mut Element, t: String) {
    if let Some(Node::Text(prev)) = el.children.last_mut() {
        prev.push_str(&t);
    } else {
        el.children.push(Node::Text(t));
    }
}

/// Decode entity references in a text or attribute run.
fn unescape(raw: &str, at: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or(XmlError::Parse { at, msg: "unterminated entity".into() })?;
        let ent = &rest[1..end];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| XmlError::Parse { at, msg: format!("bad entity &{ent};") })?;
                out.push(char::from_u32(code).ok_or(XmlError::Parse {
                    at,
                    msg: format!("bad char ref &{ent};"),
                })?);
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..]
                    .parse()
                    .map_err(|_| XmlError::Parse { at, msg: format!("bad entity &{ent};") })?;
                out.push(char::from_u32(code).ok_or(XmlError::Parse {
                    at,
                    msg: format!("bad char ref &{ent};"),
                })?);
            }
            _ => return Err(XmlError::Parse { at, msg: format!("unknown entity &{ent};") }),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let e = Element::new("a")
            .attr("x", "1 & 2")
            .child(Element::new("b").text("hi <there>"))
            .child(Element::new("c"));
        assert_eq!(e.to_xml(), r#"<a x="1 &amp; 2"><b>hi &lt;there&gt;</b><c/></a>"#);
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"<a x="1 &amp; 2"><b>hi &lt;there&gt;</b><c/></a>"#;
        let e = parse(src).unwrap();
        assert_eq!(e.to_xml(), src);
    }

    #[test]
    fn parse_with_decl_comments_cdata() {
        let src = "<?xml version=\"1.0\"?>\n<!-- top -->\n<root>\n  <item>a</item>\n  <!-- mid -->\n  <item><![CDATA[<raw&stuff>]]></item>\n</root>";
        let e = parse(src).unwrap();
        let items: Vec<&Element> = e.find_all("item").collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].text_content(), "a");
        assert_eq!(items[1].text_content(), "<raw&stuff>");
    }

    #[test]
    fn namespaced_names() {
        let e = parse(r#"<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>"#).unwrap();
        assert_eq!(e.local_name(), "Envelope");
        assert!(e.find("Body").is_some());
        assert_eq!(
            e.attr_value("xmlns:soap"),
            Some("http://schemas.xmlsoap.org/soap/envelope/")
        );
    }

    #[test]
    fn numeric_entities() {
        let e = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(e.text_content(), "AB");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a>&unknown;</a>").is_err());
    }

    #[test]
    fn attribute_quotes_both_kinds() {
        let e = parse(r#"<a x='single "quotes"' y="it&apos;s"/>"#).unwrap();
        assert_eq!(e.attr_value("x"), Some(r#"single "quotes""#));
        assert_eq!(e.attr_value("y"), Some("it's"));
    }

    #[test]
    fn whitespace_only_leading_text_dropped() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn expect_error_message() {
        let e = parse("<a/>").unwrap();
        let err = e.expect("missing").unwrap_err();
        assert!(matches!(err, XmlError::Shape(_)));
    }
}
