//! The transfer model.
//!
//! Time for a transfer of `S` bytes over endpoints with bandwidths
//! `b_src`, `b_dst` (bytes/s), round-trip latency `L = l_src + l_dst`,
//! and `p` parallel streams:
//!
//! ```text
//! setup   = L * (1 control round trip + 1 per data stream)
//! goodput = min(b_src, b_dst) * eff(p),  eff(p) = p / (p + 1) * C
//! time    = setup + S / goodput
//! ```
//!
//! `eff(p)` captures GridFTP's diminishing returns from extra TCP streams
//! (each stream fights slow-start alone; aggregation approaches but never
//! reaches the bottleneck link rate). Striped transfers split the file
//! across server pairs and complete when the slowest stripe does.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridFtpError {
    /// Source file missing.
    NoSuchFile(String),
    /// Destination already has the file.
    FileExists(String),
    /// Post-transfer checksum mismatch (corruption injection).
    ChecksumMismatch {
        /// The file.
        path: String,
        /// Expected checksum.
        expected: u64,
        /// Received checksum.
        got: u64,
    },
    /// No stripe servers given.
    NoServers,
}

impl fmt::Display for GridFtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridFtpError::NoSuchFile(p) => write!(f, "no such file `{p}`"),
            GridFtpError::FileExists(p) => write!(f, "file `{p}` already exists"),
            GridFtpError::ChecksumMismatch { path, expected, got } => {
                write!(f, "checksum mismatch on `{path}`: expected {expected:x}, got {got:x}")
            }
            GridFtpError::NoServers => write!(f, "striped transfer needs at least one server"),
        }
    }
}

impl std::error::Error for GridFtpError {}

/// Network characteristics of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Endpoint {
    /// Usable bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

impl Endpoint {
    /// A 2003-era site on a fast research network (622 Mbit/s OC-12,
    /// 25 ms one-way — coast to coast).
    pub fn wan_2003() -> Endpoint {
        Endpoint { bandwidth_mbps: 622.0, latency_ms: 25.0 }
    }

    /// A LAN endpoint (gigabit, sub-millisecond).
    pub fn lan() -> Endpoint {
        Endpoint { bandwidth_mbps: 1000.0, latency_ms: 0.2 }
    }

    fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_mbps * 1e6 / 8.0
    }
}

/// Stored file metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileMeta {
    size: u64,
    checksum: u64,
}

/// Deterministic checksum of a file's synthetic content: derived from the
/// path and size so a faithfully transferred file always verifies.
pub fn content_checksum(path: &str, size: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in path.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ size.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A simulated GridFTP server: a named endpoint with a file store.
#[derive(Debug)]
pub struct GridFtpServer {
    /// Server name (host part of `gsiftp://` URLs).
    pub name: String,
    /// Network characteristics.
    pub endpoint: Endpoint,
    files: parking_lot_free::Mutex<BTreeMap<String, FileMeta>>,
}

/// Tiny internal mutex shim so this crate stays dependency-free.
mod parking_lot_free {
    pub use std::sync::Mutex as StdMutex;

    /// `std::sync::Mutex` with poisoning ignored (no panics cross it).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(StdMutex<T>);

    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(StdMutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

impl GridFtpServer {
    /// New server with the given network characteristics.
    pub fn new(name: impl Into<String>, endpoint: Endpoint) -> GridFtpServer {
        GridFtpServer {
            name: name.into(),
            endpoint,
            files: parking_lot_free::Mutex::new(BTreeMap::new()),
        }
    }

    /// Create a file of `size` bytes with deterministic content.
    pub fn put(&self, path: &str, size: u64) -> Result<(), GridFtpError> {
        let mut files = self.files.lock();
        if files.contains_key(path) {
            return Err(GridFtpError::FileExists(path.to_owned()));
        }
        files.insert(path.to_owned(), FileMeta { size, checksum: content_checksum(path, size) });
        Ok(())
    }

    /// File size, if present.
    pub fn size_of(&self, path: &str) -> Option<u64> {
        self.files.lock().get(path).map(|m| m.size)
    }

    /// File checksum, if present.
    pub fn checksum_of(&self, path: &str) -> Option<u64> {
        self.files.lock().get(path).map(|m| m.checksum)
    }

    /// Delete a file.
    pub fn delete(&self, path: &str) -> Result<(), GridFtpError> {
        self.files
            .lock()
            .remove(path)
            .map(drop)
            .ok_or_else(|| GridFtpError::NoSuchFile(path.to_owned()))
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }

    /// `gsiftp://` URL for a path on this server.
    pub fn url(&self, path: &str) -> String {
        format!("gsiftp://{}{}", self.name, path)
    }

    fn store_received(&self, path: &str, meta: FileMeta) -> Result<(), GridFtpError> {
        let mut files = self.files.lock();
        if files.contains_key(path) {
            return Err(GridFtpError::FileExists(path.to_owned()));
        }
        files.insert(path.to_owned(), meta);
        Ok(())
    }
}

/// Transfer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TransferOptions {
    /// Parallel TCP streams (GridFTP `-p`).
    pub parallel_streams: u32,
    /// Verify the checksum on arrival.
    pub verify_checksum: bool,
    /// Fault injection: flip the checksum in flight (for testing
    /// recovery paths).
    pub corrupt_in_flight: bool,
}

impl Default for TransferOptions {
    fn default() -> Self {
        TransferOptions { parallel_streams: 4, verify_checksum: true, corrupt_in_flight: false }
    }
}

/// Outcome of a simulated transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Bytes moved.
    pub bytes: u64,
    /// Simulated wall-clock duration.
    pub duration: Duration,
    /// Achieved goodput in megabits per second.
    pub throughput_mbps: f64,
    /// Streams used.
    pub streams: u32,
}

fn stream_efficiency(p: u32) -> f64 {
    let p = f64::from(p.max(1));
    (p / (p + 1.0)) * 0.95
}

fn transfer_time(size: u64, src: Endpoint, dst: Endpoint, streams: u32) -> Duration {
    let rtt = (src.latency_ms + dst.latency_ms) * 2.0 / 1000.0; // seconds
    let setup = rtt * (1.0 + f64::from(streams.max(1)));
    let goodput = src.bytes_per_sec().min(dst.bytes_per_sec()) * stream_efficiency(streams);
    let secs = setup + size as f64 / goodput;
    Duration::from_secs_f64(secs)
}

/// Third-party transfer of one file between servers (Figure 2 step 6).
pub fn transfer(
    src: &GridFtpServer,
    src_path: &str,
    dst: &GridFtpServer,
    dst_path: &str,
    opts: TransferOptions,
) -> Result<TransferReport, GridFtpError> {
    let meta = src
        .files
        .lock()
        .get(src_path)
        .copied()
        .ok_or_else(|| GridFtpError::NoSuchFile(src_path.to_owned()))?;
    let received = FileMeta {
        size: meta.size,
        checksum: if opts.corrupt_in_flight { meta.checksum ^ 0xdead_beef } else { meta.checksum },
    };
    if opts.verify_checksum {
        let expected = content_checksum(src_path, meta.size);
        if received.checksum != expected {
            return Err(GridFtpError::ChecksumMismatch {
                path: dst_path.to_owned(),
                expected,
                got: received.checksum,
            });
        }
    }
    // Store under the destination path with the destination's canonical
    // checksum (content identity is path-independent in the simulation;
    // what we verified above is the transfer integrity).
    dst.store_received(
        dst_path,
        FileMeta { size: received.size, checksum: content_checksum(dst_path, received.size) },
    )?;
    let duration = transfer_time(meta.size, src.endpoint, dst.endpoint, opts.parallel_streams);
    Ok(TransferReport {
        bytes: meta.size,
        duration,
        throughput_mbps: meta.size as f64 * 8.0 / 1e6 / duration.as_secs_f64().max(1e-9),
        streams: opts.parallel_streams,
    })
}

/// Striped transfer: the file is split across several source servers
/// (each holding the whole file in this model) and fetched in stripes;
/// completion is gated by the slowest stripe.
pub fn transfer_striped(
    sources: &[&GridFtpServer],
    src_path: &str,
    dst: &GridFtpServer,
    dst_path: &str,
    opts: TransferOptions,
) -> Result<TransferReport, GridFtpError> {
    if sources.is_empty() {
        return Err(GridFtpError::NoServers);
    }
    let meta = sources[0]
        .files
        .lock()
        .get(src_path)
        .copied()
        .ok_or_else(|| GridFtpError::NoSuchFile(src_path.to_owned()))?;
    for s in sources {
        if s.size_of(src_path) != Some(meta.size) {
            return Err(GridFtpError::NoSuchFile(format!("{}:{}", s.name, src_path)));
        }
    }
    let stripe = meta.size / sources.len() as u64;
    let mut slowest = Duration::ZERO;
    for (i, s) in sources.iter().enumerate() {
        let sz = if i == sources.len() - 1 {
            meta.size - stripe * (sources.len() as u64 - 1)
        } else {
            stripe
        };
        let d = transfer_time(sz, s.endpoint, dst.endpoint, opts.parallel_streams);
        slowest = slowest.max(d);
    }
    dst.store_received(
        dst_path,
        FileMeta { size: meta.size, checksum: content_checksum(dst_path, meta.size) },
    )?;
    Ok(TransferReport {
        bytes: meta.size,
        duration: slowest,
        throughput_mbps: meta.size as f64 * 8.0 / 1e6 / slowest.as_secs_f64().max(1e-9),
        streams: opts.parallel_streams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers() -> (GridFtpServer, GridFtpServer) {
        let src = GridFtpServer::new("ldas.ligo.caltech.edu", Endpoint::wan_2003());
        let dst = GridFtpServer::new("hpss.ncsa.uiuc.edu", Endpoint::wan_2003());
        src.put("/data/f1.gwf", 256 * 1024 * 1024).unwrap();
        (src, dst)
    }

    #[test]
    fn basic_transfer_moves_file() {
        let (src, dst) = servers();
        let r = transfer(&src, "/data/f1.gwf", &dst, "/cache/f1.gwf", TransferOptions::default())
            .unwrap();
        assert_eq!(r.bytes, 256 * 1024 * 1024);
        assert!(dst.size_of("/cache/f1.gwf") == Some(r.bytes));
        assert!(r.duration > Duration::ZERO);
        assert!(r.throughput_mbps > 0.0);
        // source keeps its copy (third-party copy, not move)
        assert_eq!(src.file_count(), 1);
    }

    #[test]
    fn more_streams_are_faster_but_diminishing() {
        let (src, dst) = servers();
        let t = |p| {
            transfer_time(1 << 30, src.endpoint, dst.endpoint, p).as_secs_f64()
        };
        assert!(t(2) < t(1));
        assert!(t(8) < t(2));
        let gain_1_2 = t(1) - t(2);
        let gain_8_16 = t(8) - t(16);
        assert!(gain_1_2 > gain_8_16, "diminishing returns expected");
    }

    #[test]
    fn latency_dominates_small_files() {
        let wan = Endpoint::wan_2003();
        let lan = Endpoint::lan();
        let small_wan = transfer_time(1024, wan, wan, 4);
        let small_lan = transfer_time(1024, lan, lan, 4);
        assert!(small_wan > small_lan * 10);
    }

    #[test]
    fn missing_and_duplicate_files_error() {
        let (src, dst) = servers();
        assert!(matches!(
            transfer(&src, "/nope", &dst, "/x", TransferOptions::default()),
            Err(GridFtpError::NoSuchFile(_))
        ));
        transfer(&src, "/data/f1.gwf", &dst, "/cache/f1.gwf", TransferOptions::default()).unwrap();
        assert!(matches!(
            transfer(&src, "/data/f1.gwf", &dst, "/cache/f1.gwf", TransferOptions::default()),
            Err(GridFtpError::FileExists(_))
        ));
    }

    #[test]
    fn corruption_detected() {
        let (src, dst) = servers();
        let opts = TransferOptions { corrupt_in_flight: true, ..Default::default() };
        assert!(matches!(
            transfer(&src, "/data/f1.gwf", &dst, "/cache/f1.gwf", opts),
            Err(GridFtpError::ChecksumMismatch { .. })
        ));
        // nothing stored on failure
        assert_eq!(dst.file_count(), 0);
        // corruption ignored when verification is off (caller's risk)
        let opts = TransferOptions {
            corrupt_in_flight: true,
            verify_checksum: false,
            ..Default::default()
        };
        transfer(&src, "/data/f1.gwf", &dst, "/cache/f1.gwf", opts).unwrap();
    }

    #[test]
    fn striped_transfer_beats_single_source() {
        let s1 = GridFtpServer::new("a", Endpoint::wan_2003());
        let s2 = GridFtpServer::new("b", Endpoint::wan_2003());
        let s3 = GridFtpServer::new("c", Endpoint::wan_2003());
        let dst = GridFtpServer::new("d", Endpoint { bandwidth_mbps: 10_000.0, latency_ms: 5.0 });
        for s in [&s1, &s2, &s3] {
            s.put("/f", 3 << 30).unwrap();
        }
        let single =
            transfer(&s1, "/f", &dst, "/f1", TransferOptions::default()).unwrap();
        let striped =
            transfer_striped(&[&s1, &s2, &s3], "/f", &dst, "/f3", TransferOptions::default())
                .unwrap();
        assert!(striped.duration < single.duration);
        assert_eq!(striped.bytes, single.bytes);
    }

    #[test]
    fn striped_transfer_validation() {
        let s1 = GridFtpServer::new("a", Endpoint::lan());
        let dst = GridFtpServer::new("d", Endpoint::lan());
        assert!(matches!(
            transfer_striped(&[], "/f", &dst, "/f", TransferOptions::default()),
            Err(GridFtpError::NoServers)
        ));
        assert!(matches!(
            transfer_striped(&[&s1], "/f", &dst, "/f", TransferOptions::default()),
            Err(GridFtpError::NoSuchFile(_))
        ));
    }

    #[test]
    fn urls_and_delete() {
        let s = GridFtpServer::new("host.org", Endpoint::lan());
        s.put("/d/f", 1).unwrap();
        assert_eq!(s.url("/d/f"), "gsiftp://host.org/d/f");
        s.delete("/d/f").unwrap();
        assert!(s.delete("/d/f").is_err());
    }
}
