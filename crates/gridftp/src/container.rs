//! The external container service (paper §3/§5).
//!
//! > "Metadata mappings may also contain attributes that refer to an
//! > external container service that is used to group together large
//! > numbers of relatively small data objects for efficient data storage
//! > and transfer. The external container service is responsible for
//! > constructing containers and extracting individual data items from
//! > the container."
//!
//! A [`ContainerService`] packs small logical items into container files
//! stored on a [`GridFtpServer`] and extracts them on demand. The MCS
//! records only the (`container_id`, `container_service`) pair on a
//! logical file — the layered factoring the paper argues for — and the
//! integration test in `tests/` drives the two together.

use std::collections::BTreeMap;

use crate::sim::{GridFtpError, GridFtpServer};

/// Errors from the container service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// No container with this id.
    NoSuchContainer(String),
    /// No item with this name in the container.
    NoSuchItem {
        /// Container id.
        container: String,
        /// Item name.
        item: String,
    },
    /// An item with this name already exists in the open container.
    ItemExists(String),
    /// The container was already sealed (containers are write-once, like
    /// tar archives on tape).
    Sealed(String),
    /// The container is still open — items can only be extracted after
    /// sealing (the construction/extraction phases of the paper).
    NotSealed(String),
    /// Underlying storage failure.
    Storage(GridFtpError),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::NoSuchContainer(c) => write!(f, "no such container `{c}`"),
            ContainerError::NoSuchItem { container, item } => {
                write!(f, "no item `{item}` in container `{container}`")
            }
            ContainerError::ItemExists(i) => write!(f, "item `{i}` already in container"),
            ContainerError::Sealed(c) => write!(f, "container `{c}` is sealed"),
            ContainerError::NotSealed(c) => write!(f, "container `{c}` is not sealed yet"),
            ContainerError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<GridFtpError> for ContainerError {
    fn from(e: GridFtpError) -> Self {
        ContainerError::Storage(e)
    }
}

/// One item's bookkeeping inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ItemMeta {
    offset: u64,
    size: u64,
}

#[derive(Debug)]
struct Container {
    items: BTreeMap<String, ItemMeta>,
    next_offset: u64,
    sealed: bool,
}

/// A container service bound to one storage server.
pub struct ContainerService {
    /// Service locator recorded in MCS `container_service` attributes.
    pub locator: String,
    storage: std::sync::Arc<GridFtpServer>,
    containers: parking_lot_shim::Mutex<BTreeMap<String, Container>>,
    counter: std::sync::atomic::AtomicU64,
}

/// std Mutex with poisoning ignored, keeping this crate dependency-free.
mod parking_lot_shim {
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

impl ContainerService {
    /// A container service storing containers on `storage`.
    pub fn new(locator: impl Into<String>, storage: std::sync::Arc<GridFtpServer>) -> Self {
        ContainerService {
            locator: locator.into(),
            storage,
            containers: parking_lot_shim::Mutex::new(BTreeMap::new()),
            counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Begin constructing a new container; returns its id.
    pub fn create_container(&self) -> String {
        let n = self.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let id = format!("cont-{n:06}");
        self.containers.lock().insert(
            id.clone(),
            Container { items: BTreeMap::new(), next_offset: 0, sealed: false },
        );
        id
    }

    /// Add a small item to an open container. Returns the item's offset.
    pub fn add_item(&self, container: &str, item: &str, size: u64) -> Result<u64, ContainerError> {
        let mut containers = self.containers.lock();
        let c = containers
            .get_mut(container)
            .ok_or_else(|| ContainerError::NoSuchContainer(container.to_owned()))?;
        if c.sealed {
            return Err(ContainerError::Sealed(container.to_owned()));
        }
        if c.items.contains_key(item) {
            return Err(ContainerError::ItemExists(item.to_owned()));
        }
        let offset = c.next_offset;
        c.items.insert(item.to_owned(), ItemMeta { offset, size });
        c.next_offset += size;
        Ok(offset)
    }

    /// Seal a container: its aggregate file is written to storage and no
    /// more items may be added. Returns the storage path.
    pub fn seal(&self, container: &str) -> Result<String, ContainerError> {
        let mut containers = self.containers.lock();
        let c = containers
            .get_mut(container)
            .ok_or_else(|| ContainerError::NoSuchContainer(container.to_owned()))?;
        if c.sealed {
            return Err(ContainerError::Sealed(container.to_owned()));
        }
        let path = format!("/containers/{container}.tar");
        self.storage.put(&path, c.next_offset.max(1))?;
        c.sealed = true;
        Ok(path)
    }

    /// Extract one item from a sealed container to a destination path on
    /// the same storage (the read path of Figure 2 when data lives in
    /// containers). Returns the item's size.
    pub fn extract(
        &self,
        container: &str,
        item: &str,
        dest_path: &str,
    ) -> Result<u64, ContainerError> {
        let containers = self.containers.lock();
        let c = containers
            .get(container)
            .ok_or_else(|| ContainerError::NoSuchContainer(container.to_owned()))?;
        if !c.sealed {
            return Err(ContainerError::NotSealed(container.to_owned()));
        }
        let meta = c.items.get(item).ok_or_else(|| ContainerError::NoSuchItem {
            container: container.to_owned(),
            item: item.to_owned(),
        })?;
        self.storage.put(dest_path, meta.size)?;
        Ok(meta.size)
    }

    /// Items of a container, in name order.
    pub fn list(&self, container: &str) -> Result<Vec<(String, u64)>, ContainerError> {
        let containers = self.containers.lock();
        let c = containers
            .get(container)
            .ok_or_else(|| ContainerError::NoSuchContainer(container.to_owned()))?;
        Ok(c.items.iter().map(|(n, m)| (n.clone(), m.size)).collect())
    }

    /// Is the container sealed?
    pub fn is_sealed(&self, container: &str) -> Result<bool, ContainerError> {
        self.containers
            .lock()
            .get(container)
            .map(|c| c.sealed)
            .ok_or_else(|| ContainerError::NoSuchContainer(container.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Endpoint;
    use std::sync::Arc;

    fn service() -> ContainerService {
        let storage = Arc::new(GridFtpServer::new("hpss.ncsa.uiuc.edu", Endpoint::lan()));
        ContainerService::new("http://containers.ncsa.uiuc.edu", storage)
    }

    #[test]
    fn construct_seal_extract_lifecycle() {
        let svc = service();
        let id = svc.create_container();
        svc.add_item(&id, "small-0001.dat", 4096).unwrap();
        svc.add_item(&id, "small-0002.dat", 2048).unwrap();
        assert_eq!(svc.add_item(&id, "small-0003.dat", 1024).unwrap(), 6144); // offsets accumulate
        let path = svc.seal(&id).unwrap();
        assert!(path.contains(&id));
        // aggregate file exists on storage with the summed size
        assert_eq!(svc.storage.size_of(&path), Some(4096 + 2048 + 1024));
        // extraction materializes the item
        let size = svc.extract(&id, "small-0002.dat", "/scratch/small-0002.dat").unwrap();
        assert_eq!(size, 2048);
        assert_eq!(svc.storage.size_of("/scratch/small-0002.dat"), Some(2048));
    }

    #[test]
    fn phase_rules_enforced() {
        let svc = service();
        let id = svc.create_container();
        svc.add_item(&id, "x", 10).unwrap();
        // cannot extract before sealing
        assert!(matches!(
            svc.extract(&id, "x", "/scratch/x"),
            Err(ContainerError::NotSealed(_))
        ));
        svc.seal(&id).unwrap();
        assert!(svc.is_sealed(&id).unwrap());
        // cannot add after sealing, cannot seal twice
        assert!(matches!(svc.add_item(&id, "y", 10), Err(ContainerError::Sealed(_))));
        assert!(matches!(svc.seal(&id), Err(ContainerError::Sealed(_))));
    }

    #[test]
    fn duplicate_and_missing_items() {
        let svc = service();
        let id = svc.create_container();
        svc.add_item(&id, "x", 10).unwrap();
        assert!(matches!(svc.add_item(&id, "x", 10), Err(ContainerError::ItemExists(_))));
        svc.seal(&id).unwrap();
        assert!(matches!(
            svc.extract(&id, "nope", "/scratch/nope"),
            Err(ContainerError::NoSuchItem { .. })
        ));
        assert!(matches!(
            svc.extract("cont-999999", "x", "/s"),
            Err(ContainerError::NoSuchContainer(_))
        ));
    }

    #[test]
    fn listing_and_ids_unique() {
        let svc = service();
        let a = svc.create_container();
        let b = svc.create_container();
        assert_ne!(a, b);
        svc.add_item(&a, "z", 1).unwrap();
        svc.add_item(&a, "a", 2).unwrap();
        assert_eq!(svc.list(&a).unwrap(), vec![("a".to_string(), 2), ("z".to_string(), 1)]);
        assert!(svc.list(&b).unwrap().is_empty());
    }
}
