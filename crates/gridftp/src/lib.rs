//! # gridftp — a deterministic GridFTP transfer simulator
//!
//! The data-transport substrate for the MCS paper's Figure-2 scenario
//! (steps 5–6: contact storage systems, move the selected replicas). Real
//! GridFTP servers and wide-area links are out of scope on a laptop, so
//! this simulates the aspects the scenario exercises: per-endpoint
//! bandwidth and latency, parallel TCP streams with diminishing returns,
//! striped multi-server transfers, and end-to-end checksums over
//! deterministic synthetic content.

#![warn(missing_docs)]

pub mod container;
pub mod sim;

pub use container::{ContainerError, ContainerService};
pub use sim::{
    transfer, transfer_striped, Endpoint, GridFtpError, GridFtpServer, TransferOptions,
    TransferReport,
};
