//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * `value_index` — the 2003 schema indexes attribute *names* only;
//!   §9's redesign would index values. The `ValueIndexed` profile makes
//!   equality complex queries nearly size-independent.
//! * `keepalive` — connection-per-request (2003 Axis default) vs HTTP
//!   keep-alive: how much of the web-service overhead is TCP setup.
//! * `encoding` — SOAP/XML envelope codec vs a compact length-prefixed
//!   binary framing: the serialization share of the overhead.
//! * `selectivity` — evaluating the most selective predicate first vs
//!   last: under posting-list intersection the *scan* cost is symmetric,
//!   but candidate-set sizes (hashing cost) are not.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs::{AttrPredicate, IndexProfile};
use mcs_net::{McsClient, McsServer};
use soapstack::xml::Element;
use soapstack::TransportOpts;
use workload::{build_catalog, driver_credential, spec};

fn ablate_value_index(c: &mut Criterion) {
    let cred = driver_credential(0, 0);
    let mut g = c.benchmark_group("ablate_value_index");
    g.sample_size(10);
    for n in [2_000u64, 20_000] {
        for profile in [IndexProfile::Paper2003, IndexProfile::ValueIndexed] {
            let built = build_catalog(n, profile);
            let label = format!("{n}_{profile:?}");
            g.bench_function(BenchmarkId::from_parameter(label), |bench| {
                let mcs = Arc::clone(&built.mcs);
                let mut i = 0u64;
                bench.iter(|| {
                    i = (i + 7919) % n;
                    mcs.query_by_attributes(&cred, &spec::complex_query(i, 10)).expect("query")
                });
            });
        }
    }
    g.finish();
}

fn ablate_keepalive(c: &mut Criterion) {
    let built = build_catalog(2_000, IndexProfile::Paper2003);
    let server = McsServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", 4).expect("server");
    let mut g = c.benchmark_group("ablate_keepalive");
    for keep_alive in [false, true] {
        let label = if keep_alive { "keepalive" } else { "conn_per_request" };
        g.bench_function(label, |bench| {
            let opts = TransportOpts { keep_alive, simulated_rtt: Duration::ZERO };
            let mut client =
                McsClient::with_opts(server.addr().to_string(), driver_credential(0, 0), opts);
            let mut i = 0u64;
            bench.iter(|| {
                i = (i + 7919) % built.n_files;
                client.get_file(&spec::file_name(i)).expect("query")
            });
        });
    }
    g.finish();
}

/// A compact binary framing of the same createFile payload, for
/// comparison with the SOAP envelope (length-prefixed fields, no
/// escaping, no parsing).
fn binary_encode(name: &str, attrs: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    let put = |out: &mut Vec<u8>, s: &str| {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    put(&mut out, name);
    out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
    for (k, v) in attrs {
        put(&mut out, k);
        put(&mut out, v);
    }
    out
}

fn binary_decode(buf: &[u8]) -> (String, Vec<(String, String)>) {
    fn take(buf: &[u8], pos: &mut usize) -> String {
        let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        let s = std::str::from_utf8(&buf[*pos..*pos + len]).unwrap().to_owned();
        *pos += len;
        s
    }
    let mut pos = 0usize;
    let name = take(buf, &mut pos);
    let n = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = take(buf, &mut pos);
        let v = take(buf, &mut pos);
        attrs.push((k, v));
    }
    (name, attrs)
}

fn ablate_encoding(c: &mut Criterion) {
    // one representative createFile payload: name + 10 attributes
    let attrs: Vec<(String, String)> = spec::attributes_of(42)
        .into_iter()
        .map(|a| (a.name, a.value.to_string()))
        .collect();
    let name = spec::file_name(42);

    let mut g = c.benchmark_group("ablate_encoding");
    g.bench_function("soap_xml", |bench| {
        bench.iter(|| {
            let mut args = Element::new("a");
            let mut spec_el = Element::new("fileSpec").child(Element::new("name").text(&name));
            for (k, v) in &attrs {
                spec_el = spec_el.child(
                    Element::new("attribute")
                        .attr("name", k.as_str())
                        .child(Element::new("value").attr("type", "string").text(v.as_str())),
                );
            }
            args = args.child(spec_el);
            let wire = soapstack::soap::encode_request("createFile", args);
            let (method, el) = soapstack::soap::decode_request(&wire).expect("decode");
            assert_eq!(method, "createFile");
            el
        });
    });
    g.bench_function("binary", |bench| {
        bench.iter(|| {
            let wire = binary_encode(&name, &attrs);
            let (n, a) = binary_decode(&wire);
            assert_eq!(a.len(), attrs.len());
            n
        });
    });
    g.finish();
}

fn ablate_selectivity(c: &mut Criterion) {
    let cred = driver_credential(0, 0);
    let built = build_catalog(20_000, IndexProfile::Paper2003);
    // wl_seq (i % 1000) is highly selective (~20 rows); wl_site (i % 50)
    // is not (~400 rows).
    let selective = AttrPredicate::eq(spec::ATTR_NAMES[2], spec::attr_value(2, 777));
    let unselective = AttrPredicate::eq(spec::ATTR_NAMES[0], spec::attr_value(0, 777));
    let mut g = c.benchmark_group("ablate_selectivity");
    g.sample_size(10);
    g.bench_function("selective_first", |bench| {
        let preds = [selective.clone(), unselective.clone()];
        let mcs = Arc::clone(&built.mcs);
        bench.iter(|| mcs.query_by_attributes(&cred, &preds).expect("query"));
    });
    g.bench_function("selective_last", |bench| {
        let preds = [unselective.clone(), selective.clone()];
        let mcs = Arc::clone(&built.mcs);
        bench.iter(|| mcs.query_by_attributes(&cred, &preds).expect("query"));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = ablate_value_index, ablate_keepalive, ablate_encoding, ablate_selectivity
}
criterion_main!(benches);
