//! Criterion micro-benchmarks for the three measured operations of the
//! paper's evaluation (per-operation latency complements the `repro`
//! binary's closed-loop throughput figures):
//!
//! * Figure 5 — add (create + delete) a file with ten attributes;
//! * Figure 6 — simple query (static-attribute match by logical name);
//! * Figure 7 — complex query (all ten user-defined attributes);
//! * Figure 11 — complex query with a varying number of attributes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs::IndexProfile;
use workload::{build_catalog, driver_credential, spec, BuiltCatalog};

const SIZES: [u64; 2] = [2_000, 20_000];

fn catalogs() -> Vec<BuiltCatalog> {
    SIZES.iter().map(|&n| build_catalog(n, IndexProfile::Paper2003)).collect()
}

fn bench_ops(c: &mut Criterion) {
    let built = catalogs();
    let cred = driver_credential(0, 0);

    let mut g = c.benchmark_group("fig5_add");
    for b in &built {
        g.bench_with_input(BenchmarkId::from_parameter(b.n_files), b, |bench, b| {
            let mcs = Arc::clone(&b.mcs);
            let mut counter = 0u64;
            bench.iter(|| {
                counter += 1;
                let mut s = mcs::FileSpec::named(format!("bench.{counter}.dat"));
                s.attributes = spec::attributes_of(b.n_files + counter);
                mcs.create_file(&cred, &s).expect("create");
                mcs.delete_file(&cred, &s.name).expect("delete");
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig6_simple_query");
    for b in &built {
        g.bench_with_input(BenchmarkId::from_parameter(b.n_files), b, |bench, b| {
            let mcs = Arc::clone(&b.mcs);
            let mut i = 0u64;
            bench.iter(|| {
                i = (i + 7919) % b.n_files;
                mcs.get_file(&cred, &spec::file_name(i)).expect("simple query")
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig7_complex_query");
    g.sample_size(10);
    for b in &built {
        g.bench_with_input(BenchmarkId::from_parameter(b.n_files), b, |bench, b| {
            let mcs = Arc::clone(&b.mcs);
            let mut i = 0u64;
            bench.iter(|| {
                i = (i + 7919) % b.n_files;
                mcs.query_by_attributes(&cred, &spec::complex_query(i, 10)).expect("complex")
            });
        });
    }
    g.finish();

    // Figure 11: attribute-count sweep on the larger catalog only.
    let b = &built[1];
    let mut g = c.benchmark_group("fig11_attr_sweep");
    g.sample_size(10);
    for attrs in [1usize, 2, 5, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(attrs), &attrs, |bench, &attrs| {
            let mcs = Arc::clone(&b.mcs);
            let mut i = 0u64;
            bench.iter(|| {
                i = (i + 7919) % b.n_files;
                mcs.query_by_attributes(&cred, &spec::complex_query(i, attrs)).expect("query")
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_ops
}
criterion_main!(benches);
