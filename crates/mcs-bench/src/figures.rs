//! Figure runners: one function per figure of the paper's §7.

use std::sync::Arc;
use std::time::Duration;

use mcs::IndexProfile;
use mcs_net::{BinServer, McsServer};
use workload::{build_catalog, make_worker, run_closed_loop, Access, BuiltCatalog, OpKind, RunConfig};

use crate::config::Config;
use crate::report::{size_label, Figure, Point, Series};

/// One populated catalog with its SOAP server, shared across figures.
pub struct Deployment {
    /// Database size (logical files).
    pub n_files: u64,
    /// The populated catalog.
    pub built: BuiltCatalog,
    /// Its web service.
    pub server: McsServer,
}

/// Build all three deployments for a config (the expensive step — done
/// once, reused by every figure).
pub fn deploy(cfg: &Config) -> Vec<Deployment> {
    cfg.scale
        .sizes()
        .iter()
        .map(|&n| {
            eprintln!("[deploy] populating {} logical files...", size_label(n));
            let t0 = std::time::Instant::now();
            let built = build_catalog(n, IndexProfile::Paper2003);
            let server = McsServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", cfg.server_workers)
                .expect("server start");
            eprintln!("[deploy] {} ready in {:.1}s", size_label(n), t0.elapsed().as_secs_f64());
            Deployment { n_files: n, built, server }
        })
        .collect()
}

fn direct_access(d: &Deployment, wire_rtt: Duration) -> Access {
    Access::Direct { mcs: Arc::clone(&d.built.mcs), wire_rtt }
}

fn soap_access(d: &Deployment, rtt: Duration) -> Access {
    Access::Soap { addr: d.server.addr().to_string(), rtt, keep_alive: false }
}

fn measure(
    cfg: &Config,
    d: &Deployment,
    access: &Access,
    kind: OpKind,
    hosts: usize,
    threads_per_host: usize,
) -> Point {
    let run = RunConfig {
        hosts,
        threads_per_host,
        duration: cfg.scale.point_duration(),
        warmup: cfg.scale.warmup(),
        min_ops: cfg.scale.min_ops(),
        max_extension: cfg.scale.max_extension(),
    };
    let m = run_closed_loop(&run, |h, t| make_worker(access, kind, d.n_files, h, t));
    Point { x: 0, rate: m.rate(), ops: m.ops, errors: m.errors }
}

/// Sweep a single-host thread count axis (Figures 5–7 shape).
fn single_host_figure(cfg: &Config, deployments: &[Deployment], kind: OpKind, id: &str, title: &str) -> Figure {
    let mut series = Vec::new();
    for d in deployments {
        for (path, access) in [
            ("direct", direct_access(d, Duration::ZERO)),
            ("soap", soap_access(d, Duration::ZERO)),
        ] {
            let label = format!("{} {}", size_label(d.n_files), path);
            eprintln!("[{id}] series {label}");
            let mut points = Vec::new();
            for &t in &cfg.threads {
                let mut p = measure(cfg, d, &access, kind, 1, t);
                p.x = t as u64;
                points.push(p);
            }
            series.push(Series { label, points });
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "threads".into(),
        y_label: "ops/sec".into(),
        series,
    }
}

/// Sweep a multi-host axis, 4 threads per host (Figures 8–10 shape). The
/// per-host RTT applies to both paths: direct clients spoke the MySQL
/// wire protocol across the same LAN (DESIGN.md substitutions).
fn multi_host_figure(cfg: &Config, deployments: &[Deployment], kind: OpKind, id: &str, title: &str) -> Figure {
    let mut series = Vec::new();
    for d in deployments {
        for (path, access) in [
            ("direct", direct_access(d, cfg.host_rtt)),
            ("soap", soap_access(d, cfg.host_rtt)),
        ] {
            let label = format!("{} {}", size_label(d.n_files), path);
            eprintln!("[{id}] series {label}");
            let mut points = Vec::new();
            for &h in &cfg.hosts {
                let mut p = measure(cfg, d, &access, kind, h, 4);
                p.x = h as u64;
                points.push(p);
            }
            series.push(Series { label, points });
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "hosts".into(),
        y_label: "ops/sec".into(),
        series,
    }
}

/// Figure 5: add rate with varying threads on a single client host.
pub fn fig5(cfg: &Config, deployments: &[Deployment]) -> Figure {
    single_host_figure(
        cfg,
        deployments,
        OpKind::AddDelete,
        "fig5",
        "Add Rate on MCS with Varying Threads on a Single Client Host",
    )
}

/// Figure 6: simple query rate with varying threads on a single host.
pub fn fig6(cfg: &Config, deployments: &[Deployment]) -> Figure {
    single_host_figure(
        cfg,
        deployments,
        OpKind::SimpleQuery,
        "fig6",
        "Simple Query Rate on MCS with Varying Threads on a Single Client Host",
    )
}

/// Figure 7: complex query (all 10 attributes) rate, single host.
pub fn fig7(cfg: &Config, deployments: &[Deployment]) -> Figure {
    single_host_figure(
        cfg,
        deployments,
        OpKind::ComplexQuery { attrs: 10 },
        "fig7",
        "Complex Query Rate with a Varying Number of Threads on a Single Client Host",
    )
}

/// Figure 8: add rate with a varying number of hosts (4 threads each).
pub fn fig8(cfg: &Config, deployments: &[Deployment]) -> Figure {
    multi_host_figure(
        cfg,
        deployments,
        OpKind::AddDelete,
        "fig8",
        "Add Rate with Varying Number of Hosts, Each Running 4 Threads",
    )
}

/// Figure 9: simple query rate with a varying number of hosts.
pub fn fig9(cfg: &Config, deployments: &[Deployment]) -> Figure {
    multi_host_figure(
        cfg,
        deployments,
        OpKind::SimpleQuery,
        "fig9",
        "Simple Query Rate with a Varying Number of Client Hosts",
    )
}

/// Figure 10: complex query rate with a varying number of hosts.
pub fn fig10(cfg: &Config, deployments: &[Deployment]) -> Figure {
    multi_host_figure(
        cfg,
        deployments,
        OpKind::ComplexQuery { attrs: 10 },
        "fig10",
        "Complex Query Rate with a Varying Number of Hosts",
    )
}

/// Figure 11: complex query rate as the number of matched attributes
/// varies 1..=10 (direct database path only, like the paper).
pub fn fig11(cfg: &Config, deployments: &[Deployment]) -> Figure {
    let mut series = Vec::new();
    for d in deployments {
        let access = direct_access(d, Duration::ZERO);
        let label = format!("{} direct", size_label(d.n_files));
        eprintln!("[fig11] series {label}");
        let mut points = Vec::new();
        for attrs in 1..=10usize {
            let mut p = measure(cfg, d, &access, OpKind::ComplexQuery { attrs }, 1, 4);
            p.x = attrs as u64;
            points.push(p);
        }
        series.push(Series { label, points });
    }
    Figure {
        id: "fig11".into(),
        title: "Complex Query Performance as the Number of Attributes is Varied".into(),
        x_label: "attributes".into(),
        y_label: "queries/sec".into(),
        series,
    }
}

/// Figure 12 (beyond the paper): write throughput and fsync cost of the
/// durable catalog as concurrent writers scale, per-transaction fsync
/// (`Durability::Always`) against the group-commit queue
/// (`Durability::Group`). Builds its own small durable catalogs — the
/// shared deployments are in-memory and never touch a WAL.
pub fn fig12(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use mcs::{AttrType, Credential, FileSpec, ManualClock, Mcs, StoreConfig};

    let admin = Credential::new("/O=Grid/CN=bench");
    let total: u64 = match cfg.scale {
        crate::config::Scale::Quick => 200,
        crate::config::Scale::Default => 800,
        crate::config::Scale::Full => 3_200,
    };
    let modes: [(&str, fn() -> StoreConfig); 2] = [
        ("per-txn fsync", StoreConfig::default),
        ("group commit", || StoreConfig::grouped(Duration::from_millis(2), 64)),
    ];

    let mut series = Vec::new();
    for (label, mk_store) in modes {
        eprintln!("[fig12] series {label} ({total} creates per point)");
        let mut points = Vec::new();
        for &writers in &[1usize, 2, 4, 8] {
            let dir = std::env::temp_dir().join(format!(
                "mcs-fig12-{}-{writers}-{}",
                label.replace(' ', "-"),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let catalog = Arc::new(
                Mcs::open_durable(
                    &dir,
                    &admin,
                    IndexProfile::Paper2003,
                    Arc::new(ManualClock::default()),
                    mk_store(),
                )
                .expect("open durable catalog"),
            );
            catalog.define_attribute(&admin, "experiment", AttrType::Str, "").unwrap();
            catalog.define_attribute(&admin, "run", AttrType::Int, "").unwrap();

            let per_writer = total / writers as u64;
            let syncs_before = catalog.database().wal_stats().sync_count();
            let t0 = std::time::Instant::now();
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let catalog = Arc::clone(&catalog);
                    let admin = admin.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_writer {
                            let spec = FileSpec::named(format!("f-{w}-{i:05}.dat"))
                                .attr("experiment", "bench")
                                .attr("run", (w as u64 * 1_000_000 + i) as i64);
                            catalog.create_file(&admin, &spec).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let ops = per_writer * writers as u64;
            let syncs = catalog.database().wal_stats().sync_count() - syncs_before;
            eprintln!(
                "[fig12] {label} writers={writers}: {:.0} creates/s, {syncs} fsyncs \
                 ({:.1} txns/fsync)",
                ops as f64 / elapsed,
                ops as f64 / syncs.max(1) as f64,
            );
            points.push(Point { x: writers as u64, rate: ops as f64 / elapsed, ops, errors: 0 });
            drop(catalog);
            let _ = std::fs::remove_dir_all(&dir);
        }
        series.push(Series { label: label.into(), points });
    }
    Figure {
        id: "fig12".into(),
        title: "Catalog Add Rate with Concurrent Writers: Group Commit vs Per-Txn Fsync".into(),
        x_label: "writers".into(),
        y_label: "creates/sec".into(),
        series,
    }
}

/// Figure 13 (beyond the paper): *client-visible* commit latency and add
/// rate under the three durability tiers — per-transaction fsync
/// (`Always`), group commit (`Group`), and epoch-acknowledged async
/// commits (`Async`, DESIGN.md §7.2). Async acks return before the fsync,
/// so their per-op latency should collapse to in-memory cost while
/// throughput meets or beats group commit; the deferred durability is
/// paid by one timed `sync_now` barrier at the end (included in the
/// throughput denominator so the comparison stays honest).
pub fn fig13(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use mcs::{AttrType, Credential, FileSpec, ManualClock, Mcs, StoreConfig};

    let admin = Credential::new("/O=Grid/CN=bench");
    let total: u64 = match cfg.scale {
        crate::config::Scale::Quick => 200,
        crate::config::Scale::Default => 800,
        crate::config::Scale::Full => 3_200,
    };
    let window = Duration::from_millis(2);
    let modes: [(&str, fn(Duration) -> StoreConfig); 3] = [
        ("per-txn fsync", |_| StoreConfig::default()),
        ("group commit", |w| StoreConfig::grouped(w, 64)),
        ("async acks", |w| StoreConfig::asynchronous(w, 64)),
    ];

    let mut series = Vec::new();
    for (label, mk_store) in modes {
        eprintln!("[fig13] series {label} ({total} creates per point)");
        let mut points = Vec::new();
        for &writers in &[1usize, 4, 8] {
            let dir = std::env::temp_dir().join(format!(
                "mcs-fig13-{}-{writers}-{}",
                label.replace(' ', "-"),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let catalog = Arc::new(
                Mcs::open_durable(
                    &dir,
                    &admin,
                    IndexProfile::Paper2003,
                    Arc::new(ManualClock::default()),
                    mk_store(window),
                )
                .expect("open durable catalog"),
            );
            catalog.define_attribute(&admin, "experiment", AttrType::Str, "").unwrap();
            catalog.define_attribute(&admin, "run", AttrType::Int, "").unwrap();

            let per_writer = total / writers as u64;
            let syncs_before = catalog.database().wal_stats().sync_count();
            let t0 = std::time::Instant::now();
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let catalog = Arc::clone(&catalog);
                    let admin = admin.clone();
                    std::thread::spawn(move || {
                        // Per-op wall time as the CLIENT sees it: for async
                        // this stops at the epoch ack, not the fsync.
                        let mut busy = Duration::ZERO;
                        for i in 0..per_writer {
                            let spec = FileSpec::named(format!("f-{w}-{i:05}.dat"))
                                .attr("experiment", "bench")
                                .attr("run", (w as u64 * 1_000_000 + i) as i64);
                            let op0 = std::time::Instant::now();
                            catalog.create_file(&admin, &spec).unwrap();
                            busy += op0.elapsed();
                        }
                        busy
                    })
                })
                .collect();
            let busy: Duration = handles.into_iter().map(|h| h.join().unwrap()).sum();
            // Async acked everything already; the durability debt is paid
            // here, once, and charged to throughput (not to op latency).
            let barrier0 = std::time::Instant::now();
            catalog.sync_now().expect("final durability barrier");
            let barrier = barrier0.elapsed();
            let elapsed = t0.elapsed().as_secs_f64();
            let ops = per_writer * writers as u64;
            let syncs = catalog.database().wal_stats().sync_count() - syncs_before;
            let lat_us = busy.as_secs_f64() * 1e6 / ops as f64;
            eprintln!(
                "[fig13] {label} writers={writers}: {:.0} creates/s, {lat_us:.0} us/op \
                 client-visible, {syncs} fsyncs, final sync_now {:.1} ms",
                ops as f64 / elapsed,
                barrier.as_secs_f64() * 1e3,
            );
            points.push(Point { x: writers as u64, rate: ops as f64 / elapsed, ops, errors: 0 });
            drop(catalog);
            let _ = std::fs::remove_dir_all(&dir);
        }
        series.push(Series { label: label.into(), points });
    }
    Figure {
        id: "fig13".into(),
        title: "Client-Visible Commit Latency: Async Epoch Acks vs Group Commit vs Per-Txn Fsync"
            .into(),
        x_label: "writers".into(),
        y_label: "creates/sec".into(),
        series,
    }
}

/// Figure 14 (beyond the paper): the epoch-consistent read cache A/B
/// (DESIGN.md §7.3) on the complex-query hot path. One *cached* catalog
/// per database size, measured three ways over a small repeated working
/// set of full 10-attribute queries:
///
/// * **cache off** — every query wrapped in the per-request bypass, i.e.
///   the byte-identical uncached execution path (the fig7 baseline);
/// * **warm cache** — the working set prewarmed, so steady state is all
///   version-validated hits;
/// * **write churn** — a background writer keeps touching
///   `user_attributes`, so every hit must revalidate and refill; each
///   query's result is checked against the expected file, so this series
///   doubles as a correctness probe of the invalidation protocol.
///
/// Builds its own catalogs — the shared deployments are uncached.
pub fn fig14(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use mcs::Attribute;
    use workload::{build_catalog_with, spec};

    /// Distinct repeated queries in the working set (same shape as a
    /// workflow re-running its discovery queries).
    const WORKING_SET: u64 = 16;

    let run = RunConfig {
        hosts: 1,
        threads_per_host: 4,
        duration: cfg.scale.point_duration(),
        warmup: cfg.scale.warmup(),
        min_ops: cfg.scale.min_ops(),
        max_extension: cfg.scale.max_extension(),
    };

    let mut off = Vec::new();
    let mut warm = Vec::new();
    let mut churn = Vec::new();
    for &n in cfg.scale.sizes().iter() {
        eprintln!("[fig14] populating {} logical files (cached catalog)...", size_label(n));
        let t0 = std::time::Instant::now();
        let built = build_catalog_with(n, IndexProfile::Paper2003, Some(mcs::CacheConfig::default()));
        eprintln!("[fig14] {} ready in {:.1}s", size_label(n), t0.elapsed().as_secs_f64());
        let mcs = &built.mcs;
        let admin = &built.admin;
        // File indices spread across the database; each query matches
        // exactly its file (attributes 2+3 pin the index).
        let targets: Vec<u64> = (0..WORKING_SET).map(|j| j * (n / WORKING_SET).max(1)).collect();
        let queries: Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>> =
            Arc::new(targets.iter().map(|&i| (i, spec::complex_query(i, 10))).collect());

        // One worker: round-robin the working set, verify every answer.
        let make_worker = |bypass: bool| {
            let mcs = Arc::clone(mcs);
            let queries = Arc::clone(&queries);
            move |_h: usize, t: usize| -> Box<dyn workload::Workload> {
                let mcs = Arc::clone(&mcs);
                let queries = Arc::clone(&queries);
                let mut at = t; // stagger threads across the set
                let cred = workload::driver_credential(0, t);
                Box::new(move || {
                    let (i, preds) = &queries[at % queries.len()];
                    at += 1;
                    let r = if bypass {
                        mcs.with_cache_bypass(|m| m.query_by_attributes(&cred, preds))
                    } else {
                        mcs.query_by_attributes(&cred, preds)
                    };
                    matches!(r, Ok(hits) if hits == [(spec::file_name(*i), 1)])
                })
            }
        };

        // --- cache off: the uncached baseline via the bypass path ---
        eprintln!("[fig14] {} cache off", size_label(n));
        let m = run_closed_loop(&run, make_worker(true));
        off.push(Point { x: n, rate: m.rate(), ops: m.ops, errors: m.errors });

        // --- warm cache: prewarm, then measure repeated hits ---
        for (_, preds) in queries.iter() {
            mcs.query_by_attributes(admin, preds).expect("prewarm");
        }
        eprintln!("[fig14] {} warm cache", size_label(n));
        let m = run_closed_loop(&run, make_worker(false));
        warm.push(Point { x: n, rate: m.rate(), ops: m.ops, errors: m.errors });

        // --- write churn: a background writer invalidates while we read ---
        eprintln!("[fig14] {} write churn", size_label(n));
        let stop = std::sync::atomic::AtomicBool::new(false);
        let m = std::thread::scope(|scope| {
            scope.spawn(|| {
                // Rewrite an attribute to its current value: the commit
                // bumps `user_attributes` (staling every query entry)
                // without changing any query's answer.
                let mut k = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let i = targets[(k % WORKING_SET) as usize];
                    let attr = Attribute {
                        name: spec::ATTR_NAMES[0].to_owned(),
                        value: spec::attr_value(0, i),
                    };
                    mcs.set_attribute(admin, &mcs::ObjectRef::File(spec::file_name(i)), &attr)
                        .expect("churn write");
                    k += 1;
                    std::thread::sleep(Duration::from_millis(100));
                }
            });
            let m = run_closed_loop(&run, make_worker(false));
            stop.store(true, std::sync::atomic::Ordering::Release);
            m
        });
        churn.push(Point { x: n, rate: m.rate(), ops: m.ops, errors: m.errors });

        let stats = mcs.cache_stats().expect("cached catalog");
        let speedup = warm.last().unwrap().rate / off.last().unwrap().rate.max(1e-9);
        eprintln!(
            "[fig14] {}: off {:.1}/s, warm {:.1}/s ({speedup:.0}x), churn {:.1}/s; \
             cache hits {} misses {} stale {} evictions {}",
            size_label(n),
            off.last().unwrap().rate,
            warm.last().unwrap().rate,
            churn.last().unwrap().rate,
            stats.hits,
            stats.misses,
            stats.stale,
            stats.evictions,
        );
    }

    Figure {
        id: "fig14".into(),
        title: "Complex Query Rate with an Epoch-Consistent Read Cache: Off vs Warm vs Churn"
            .into(),
        x_label: "database size (files)".into(),
        y_label: "queries/sec".into(),
        series: vec![
            Series { label: "cache off (bypass)".into(), points: off },
            Series { label: "warm cache".into(), points: warm },
            Series { label: "write churn".into(), points: churn },
        ],
    }
}

/// Figure 15 (beyond the paper): horizontal scaling of the
/// hash-partitioned catalog (DESIGN.md §7.4). Two experiments per shard
/// count (1/2/4/8):
///
/// * **aggregate add rate** — 8 concurrent writers creating files
///   through the router into a fresh *durable* catalog with per-txn
///   fsync. One WAL serializes every fsync; N shards fsync
///   independently, which is exactly where partitioning should pay.
/// * **complex-query rate** — the paper's 10-predicate discovery query
///   against catalogs bulk-loaded in parallel (one loader thread per
///   shard) at the two larger workload sizes, every answer verified, so
///   the scatter-gather planner is held to single-shard answers while
///   it fans out.
pub fn fig15(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use mcs::{AttrType, Credential, FileSpec, ManualClock, StoreConfig};
    use workload::{build_sharded_catalog, spec};

    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const WRITERS: usize = 8;
    const WORKING_SET: u64 = 16;

    let admin = Credential::new("/O=Grid/CN=bench");
    let total: u64 = match cfg.scale {
        crate::config::Scale::Quick => 200,
        crate::config::Scale::Default => 800,
        crate::config::Scale::Full => 3_200,
    };

    // --- (a) durable add rate, 8 writers, per-txn fsync ---
    let mut add_points = Vec::new();
    for &shards in &SHARD_COUNTS {
        let dir = std::env::temp_dir()
            .join(format!("mcs-fig15-{shards}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Arc::new(
            mcs::Mcs::open_sharded(
                &dir,
                &admin,
                IndexProfile::Paper2003,
                Arc::new(ManualClock::default()),
                StoreConfig::default().sharded(shards),
            )
            .expect("open durable sharded catalog"),
        );
        catalog.define_attribute(&admin, "experiment", AttrType::Str, "").unwrap();
        catalog.define_attribute(&admin, "run", AttrType::Int, "").unwrap();

        let per_writer = total / WRITERS as u64;
        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let catalog = Arc::clone(&catalog);
                let admin = admin.clone();
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        let spec = FileSpec::named(format!("f-{w}-{i:05}.dat"))
                            .attr("experiment", "bench")
                            .attr("run", (w as u64 * 1_000_000 + i) as i64);
                        catalog.create_file(&admin, &spec).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let ops = per_writer * WRITERS as u64;
        eprintln!(
            "[fig15] add rate, {shards} shard(s), {WRITERS} writers: {:.0} creates/s",
            ops as f64 / elapsed
        );
        add_points.push(Point {
            x: shards as u64,
            rate: ops as f64 / elapsed,
            ops,
            errors: 0,
        });
        drop(catalog);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let mut series =
        vec![Series { label: format!("add rate, {WRITERS} writers"), points: add_points }];

    // --- (b) complex-query rate on parallel-loaded catalogs ---
    let run = RunConfig {
        hosts: 1,
        threads_per_host: 4,
        duration: cfg.scale.point_duration(),
        warmup: cfg.scale.warmup(),
        min_ops: cfg.scale.min_ops(),
        max_extension: cfg.scale.max_extension(),
    };
    for &n in &cfg.scale.sizes()[1..=2] {
        let mut points = Vec::new();
        for &shards in &SHARD_COUNTS {
            eprintln!(
                "[fig15] populating {} files across {shards} shard(s)...",
                size_label(n)
            );
            let t0 = std::time::Instant::now();
            let built = build_sharded_catalog(n, IndexProfile::Paper2003, shards, None);
            eprintln!("[fig15] loaded in {:.1}s", t0.elapsed().as_secs_f64());
            let targets: Vec<u64> =
                (0..WORKING_SET).map(|j| j * (n / WORKING_SET).max(1)).collect();
            let queries: Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>> =
                Arc::new(targets.iter().map(|&i| (i, spec::complex_query(i, 10))).collect());
            let catalog = &built.catalog;
            let m = run_closed_loop(&run, |_h, t| -> Box<dyn workload::Workload> {
                let catalog = Arc::clone(catalog);
                let queries = Arc::clone(&queries);
                let mut at = t; // stagger threads across the set
                let cred = workload::driver_credential(0, t);
                Box::new(move || {
                    let (i, preds) = &queries[at % queries.len()];
                    at += 1;
                    let r = catalog.query_by_attributes(&cred, preds);
                    matches!(r, Ok(hits) if hits == [(spec::file_name(*i), 1)])
                })
            });
            eprintln!(
                "[fig15] complex query, {} files, {shards} shard(s): {:.1}/s",
                size_label(n),
                m.rate()
            );
            points.push(Point { x: shards as u64, rate: m.rate(), ops: m.ops, errors: m.errors });
        }
        series.push(Series { label: format!("complex query, {}", size_label(n)), points });
    }

    Figure {
        id: "fig15".into(),
        title: "Sharded Catalog Scaling: Aggregate Add Rate and Scatter-Gather Query Rate"
            .into(),
        x_label: "shards".into(),
        y_label: "ops/sec".into(),
        series,
    }
}

/// Figure 16 (beyond the paper): the MVCC snapshot-read A/B
/// (DESIGN.md §7.5). Two experiments:
///
/// * **mixed read/write throughput** — equal reader and writer thread
///   counts (2/4/8 per class) against ONE durable catalog, barrier
///   engine vs `StoreConfig::with_mvcc`. Both sides commit with
///   per-transaction fsync (`Durability::Always`, the default): the
///   fsync cadence paces writers identically on both engines, so the
///   write series compare like-for-like — and on the barrier engine
///   every committing writer holds its exclusive table barriers
///   *across its commit fsync*, which is precisely the reader stall
///   the MVCC refactor retires. Readers drive the paper's
///   simple-query shape (indexed file and attribute lookups); writers
///   mix ten-attribute `create_file` transactions (the paper's ingest
///   shape) with `set_attribute` updates, both classes paced with
///   client think times. The acceptance bar is ≥2× read throughput at
///   8r+8w with ≤10% write regression.
/// * **the fig15 shard curve re-run under MVCC** — the scatter-gather
///   complex-query experiment on parallel-loaded catalogs with every
///   shard on the MVCC engine (snapshot-vector reads), every answer
///   verified, at the middle workload size.
pub fn fig16(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use mcs::{AttrType, Credential, FileSpec, ManualClock, Mcs, ObjectRef, StoreConfig};
    use workload::{build_sharded_catalog_opts, run_closed_loop, run_mixed, spec, MixedConfig};

    const CLASS_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const PRELOAD: u64 = 512;
    const COLLS: u64 = 4;

    let admin = Credential::new("/O=Grid/CN=bench");

    // --- (a) mixed read/write A/B on one durable catalog per engine ---
    let mut read_series = Vec::new();
    let mut write_series = Vec::new();
    for (engine, mvcc) in [("barrier", false), ("mvcc", true)] {
        let dir = std::env::temp_dir()
            .join(format!("mcs-fig16-{engine}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = StoreConfig::default();
        let store = if mvcc { base.with_mvcc() } else { base };
        let catalog = Arc::new(
            Mcs::open_durable(
                &dir,
                &admin,
                IndexProfile::Paper2003,
                Arc::new(ManualClock::default()),
                store,
            )
            .expect("open durable catalog"),
        );
        assert_eq!(catalog.database().is_mvcc(), mvcc);
        catalog.allow_anyone(&admin).unwrap();
        catalog.define_attribute(&admin, "experiment", AttrType::Str, "").unwrap();
        catalog.define_attribute(&admin, "run", AttrType::Int, "").unwrap();
        for a in 0..10 {
            catalog.define_attribute(&admin, &format!("run{a}"), AttrType::Int, "").unwrap();
        }
        for c in 0..COLLS {
            catalog.create_collection(&admin, &format!("c{c}"), None, "").unwrap();
        }
        for i in 0..PRELOAD {
            let spec = FileSpec::named(format!("pre-{i:05}.dat"))
                .in_collection(format!("c{}", i % COLLS))
                .attr("experiment", "bench")
                .attr("run", i as i64);
            catalog.create_file(&admin, &spec).unwrap();
        }

        // One monotone name counter per engine: warm-up and every sweep
        // share it, so writers never trip over their own earlier files.
        let next_id = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut rpoints = Vec::new();
        let mut wpoints = Vec::new();
        for &threads in &CLASS_COUNTS {
            let run = MixedConfig {
                readers: threads,
                writers: threads,
                duration: cfg.scale.point_duration(),
                warmup: cfg.scale.warmup(),
                min_ops: cfg.scale.min_ops(),
                max_extension: cfg.scale.max_extension(),
            };
            let m = run_mixed(
                &run,
                |t| {
                    // Reader: the paper's simple-query shape — indexed
                    // point lookups of files and their attributes. On
                    // the barrier engine each SELECT takes the shared
                    // statement barrier of its table, so it queues
                    // (writer-priority) whenever a committing writer
                    // holds that barrier across its fsync; under MVCC
                    // it pins a snapshot epoch and never waits.
                    let catalog = Arc::clone(&catalog);
                    let cred = workload::driver_credential(0, t);
                    let mut k = t as u64;
                    Box::new(move || {
                        // Short think time: readers stay demanding but
                        // the runqueue drains often enough that woken
                        // writers schedule promptly on a small host.
                        std::thread::sleep(Duration::from_micros(200));
                        k += 1;
                        let pre = format!("pre-{:05}.dat", k % PRELOAD);
                        if k % 2 == 0 {
                            catalog.get_file(&cred, &pre).is_ok()
                        } else {
                            catalog
                                .get_attributes(&cred, &ObjectRef::File(pre))
                                .is_ok()
                        }
                    })
                },
                |w| {
                    // Writer: create transactions + attribute updates.
                    // Per-commit fsync paces both engines' writers to
                    // the same cadence (the write series compare
                    // like-for-like); the read series isolates what
                    // that load costs concurrent readers.
                    let catalog = Arc::clone(&catalog);
                    let admin = admin.clone();
                    let next_id = Arc::clone(&next_id);
                    let mut k = w as u64;
                    Box::new(move || {
                        // Client think time: the offered write load grows
                        // with the writer count instead of saturating the
                        // commit path outright, so the sweep walks the
                        // exclusive-barrier utilization up point by point.
                        std::thread::sleep(Duration::from_micros(2_500));
                        k += 1;
                        if k % 2 == 0 {
                            let i =
                                next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            // Ten typed attributes per new file, like
                            // the paper's ingest workload — one
                            // transaction, one WAL group, one fsync.
                            let mut spec = FileSpec::named(format!("new-{i:07}.dat"))
                                .attr("experiment", "bench");
                            for a in 0..10i64 {
                                spec = spec.attr(format!("run{a}"), i as i64 + a);
                            }
                            catalog.create_file(&admin, &spec).is_ok()
                        } else {
                            let attr = mcs::Attribute {
                                name: "run".into(),
                                value: (k as i64).into(),
                            };
                            let obj = ObjectRef::File(format!("pre-{:05}.dat", k % PRELOAD));
                            catalog.set_attribute(&admin, &obj, &attr).is_ok()
                        }
                    })
                },
            );
            eprintln!(
                "[fig16] {engine} {threads}r+{threads}w: reads {:.0}/s ({} errors), \
                 writes {:.0}/s ({} errors)",
                m.reads.rate(),
                m.reads.errors,
                m.writes.rate(),
                m.writes.errors,
            );
            rpoints.push(Point {
                x: threads as u64,
                rate: m.reads.rate(),
                ops: m.reads.ops,
                errors: m.reads.errors,
            });
            wpoints.push(Point {
                x: threads as u64,
                rate: m.writes.rate(),
                ops: m.writes.ops,
                errors: m.writes.errors,
            });
        }
        read_series.push(Series { label: format!("reads, {engine}"), points: rpoints });
        write_series.push(Series { label: format!("writes, {engine}"), points: wpoints });
        drop(catalog);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- (b) the fig15 scatter-gather query curve, every shard MVCC ---
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const WORKING_SET: u64 = 16;
    let run = RunConfig {
        hosts: 1,
        threads_per_host: 4,
        duration: cfg.scale.point_duration(),
        warmup: cfg.scale.warmup(),
        min_ops: cfg.scale.min_ops(),
        max_extension: cfg.scale.max_extension(),
    };
    let n = cfg.scale.sizes()[1];
    let mut points = Vec::new();
    for &shards in &SHARD_COUNTS {
        eprintln!("[fig16] populating {} files across {shards} MVCC shard(s)...", size_label(n));
        let t0 = std::time::Instant::now();
        let built = build_sharded_catalog_opts(n, IndexProfile::Paper2003, shards, None, true);
        eprintln!("[fig16] loaded in {:.1}s", t0.elapsed().as_secs_f64());
        assert!(built.catalog.shard(0).database().is_mvcc());
        let targets: Vec<u64> = (0..WORKING_SET).map(|j| j * (n / WORKING_SET).max(1)).collect();
        let queries: Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>> =
            Arc::new(targets.iter().map(|&i| (i, spec::complex_query(i, 10))).collect());
        let catalog = &built.catalog;
        let m = run_closed_loop(&run, |_h, t| -> Box<dyn workload::Workload> {
            let catalog = Arc::clone(catalog);
            let queries = Arc::clone(&queries);
            let mut at = t; // stagger threads across the set
            let cred = workload::driver_credential(0, t);
            Box::new(move || {
                let (i, preds) = &queries[at % queries.len()];
                at += 1;
                let r = catalog.query_by_attributes(&cred, preds);
                matches!(r, Ok(hits) if hits == [(spec::file_name(*i), 1)])
            })
        });
        eprintln!(
            "[fig16] complex query (mvcc), {} files, {shards} shard(s): {:.1}/s",
            size_label(n),
            m.rate()
        );
        points.push(Point { x: shards as u64, rate: m.rate(), ops: m.ops, errors: m.errors });
    }

    let mut series = read_series;
    series.extend(write_series);
    series.push(Series {
        label: format!("complex query, {} (mvcc shards)", size_label(n)),
        points,
    });
    Figure {
        id: "fig16".into(),
        title: "Mixed Read/Write Throughput and Shard Scaling: MVCC Snapshot Reads vs \
                Barrier Engine"
            .into(),
        x_label: "threads per class / shards".into(),
        y_label: "ops/sec".into(),
        series,
    }
}

/// Figure 17 (beyond the paper): **cost-based planner A/B** on the
/// value-indexed profile, read cache out of the picture.
///
/// One uncached `ValueIndexed` catalog per database size answers the
/// same complex-query working set two ways:
///
/// * **planner on** — the default path: composite-index dives pick the
///   most selective predicate as the seed, the rest intersect or run as
///   per-candidate `ua_object` probes (DESIGN.md §7.6);
/// * **planner off** — inside `with_planner_bypass`: every predicate
///   walks its attribute's full `ua_name` posting list (the 2003
///   evaluation), so per-query cost grows linearly with database size.
///
/// Two query shapes per side: the paper's 10-attribute equality
/// conjunction (Figures 7/10/11's op) and a mixed shape with a range
/// and a LIKE prefix, exercising the planner's range and prefix-range
/// access paths. Every answer is verified. The acceptance bar is ≥5×
/// planned-over-naive throughput at the largest size; the tentpole goal
/// is a planned curve that stays roughly flat while the naive curve
/// decays with n.
pub fn fig17(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use workload::spec;

    const WORKING_SET: u64 = 16;

    let run = RunConfig {
        hosts: 1,
        threads_per_host: 4,
        duration: cfg.scale.point_duration(),
        warmup: cfg.scale.warmup(),
        min_ops: cfg.scale.min_ops(),
        max_extension: cfg.scale.max_extension(),
    };

    // Eq-conjunction series and range-mix series, each planned + naive.
    let mut series: Vec<Series> = ["planner on", "planner off", "planner on, range mix", "planner off, range mix"]
        .iter()
        .map(|label| Series { label: label.to_string(), points: Vec::new() })
        .collect();
    let mut speedup_at_largest = 0.0;
    for &n in cfg.scale.sizes().iter() {
        eprintln!("[fig17] populating {} logical files (value-indexed)...", size_label(n));
        let t0 = std::time::Instant::now();
        let built = build_catalog(n, IndexProfile::ValueIndexed);
        // Post-load ANALYZE, as any bulk load would do: the figure measures
        // query evaluation, not the one-time cold-statistics scan.
        built.mcs.database().analyze_table("user_attributes").unwrap();
        eprintln!("[fig17] {} ready in {:.1}s", size_label(n), t0.elapsed().as_secs_f64());
        let mcs = &built.mcs;
        let targets: Vec<u64> = (0..WORKING_SET).map(|j| j * (n / WORKING_SET).max(1)).collect();

        // The paper's complex query: equality on all ten attributes.
        let eq10: Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>> =
            Arc::new(targets.iter().map(|&i| (i, spec::complex_query(i, 10))).collect());
        // Mixed shape: the same file pinned by an equality plus a
        // Ge/Le range pair, with a LIKE literal prefix on top — the
        // answer is still exactly file `i`, but evaluation goes through
        // the planner's range and prefix-range access paths.
        let mixed: Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>> = Arc::new(
            targets
                .iter()
                .map(|&i| {
                    let mut preds = spec::complex_query(i, 4);
                    preds[0].op = mcs::AttrOp::Like;
                    preds[0].value = relstore::Value::from(
                        format!("{}%", preds[0].value.as_str().unwrap()).as_str(),
                    );
                    preds[3].op = mcs::AttrOp::Ge;
                    let mut le = preds[3].clone();
                    le.op = mcs::AttrOp::Le;
                    preds.push(le);
                    (i, preds)
                })
                .collect(),
        );

        let make_worker = |queries: &Arc<Vec<(u64, Vec<mcs::AttrPredicate>)>>, bypass: bool| {
            let mcs = Arc::clone(mcs);
            let queries = Arc::clone(queries);
            move |_h: usize, t: usize| -> Box<dyn workload::Workload> {
                let mcs = Arc::clone(&mcs);
                let queries = Arc::clone(&queries);
                let mut at = t; // stagger threads across the set
                let cred = workload::driver_credential(0, t);
                Box::new(move || {
                    let (i, preds) = &queries[at % queries.len()];
                    at += 1;
                    let r = if bypass {
                        mcs.with_planner_bypass(|m| m.query_by_attributes(&cred, preds))
                    } else {
                        mcs.query_by_attributes(&cred, preds)
                    };
                    matches!(r, Ok(hits) if hits == [(spec::file_name(*i), 1)])
                })
            }
        };

        let mut rates = [0.0f64; 4];
        for (s, (queries, bypass)) in
            [(&eq10, false), (&eq10, true), (&mixed, false), (&mixed, true)].iter().enumerate()
        {
            let m = run_closed_loop(&run, make_worker(queries, *bypass));
            eprintln!(
                "[fig17] {} files, {}: {:.1}/s ({} errors)",
                size_label(n),
                series[s].label,
                m.rate(),
                m.errors
            );
            rates[s] = m.rate();
            series[s].points.push(Point { x: n, rate: m.rate(), ops: m.ops, errors: m.errors });
        }
        if rates[1] > 0.0 {
            speedup_at_largest = rates[0] / rates[1];
            eprintln!(
                "[fig17] {} files: planned/naive = {:.1}x (eq), {:.1}x (range mix)",
                size_label(n),
                rates[0] / rates[1],
                if rates[3] > 0.0 { rates[2] / rates[3] } else { f64::INFINITY },
            );
        }
    }
    eprintln!(
        "[fig17] acceptance: {:.1}x planned-over-naive at the largest size (bar: >=5x)",
        speedup_at_largest
    );

    Figure {
        id: "fig17".into(),
        title: "Complex-Query Throughput: Cost-Based Planner vs Posting-Scan Evaluation \
                (value-indexed, uncached)"
            .into(),
        x_label: "database size (logical files)".into(),
        y_label: "queries/sec".into(),
        series,
    }
}

/// Figure 18 (beyond the paper): **binary wire protocol A/B** on the
/// paper-profile catalog, every transport hitting the same shared
/// dispatch (DESIGN.md §7.7).
///
/// Four simple-query series per database size, all at zero simulated
/// RTT so the comparison isolates per-request protocol overhead:
///
/// * **direct (ceiling)** — in-process calls, the no-wire upper bound;
/// * **soap keep-alive** — the HTTP/XML stack with connection reuse
///   (the strongest SOAP configuration);
/// * **binary** — one length-prefixed request/response per round trip
///   on a persistent connection;
/// * **binary pipelined ×128** — the same connection with 128 requests
///   kept in flight.
///
/// Then a bulk-ingest A/B: the same 2 048 fresh files created through
/// each transport one `createFile` at a time versus 64-spec
/// `createFiles` batches (one transaction per batch on the server).
///
/// The acceptance bar is binary ≥5× soap keep-alive simple-query
/// throughput at the largest size.
pub fn fig18(cfg: &Config, _deployments: &[Deployment]) -> Figure {
    use workload::{build_catalog_with, spec};

    const PIPELINE: usize = 128;
    const BULK_TOTAL: u64 = 2_048;
    const BATCH: usize = 64;

    let query_labels =
        ["direct (ceiling)", "soap keep-alive", "binary", "binary pipelined x128"];
    let bulk_labels = [
        "bulk add: soap createFile",
        "bulk add: binary createFile",
        "bulk add: soap createFiles x64",
        "bulk add: binary createFiles x64",
    ];
    let mut series: Vec<Series> = query_labels
        .iter()
        .chain(bulk_labels.iter())
        .map(|label| Series { label: label.to_string(), points: Vec::new() })
        .collect();

    let mut speedup_at_largest = 0.0;
    for &n in cfg.scale.sizes().iter() {
        eprintln!("[fig18] populating {} logical files (cached catalog)...", size_label(n));
        let t0 = std::time::Instant::now();
        // The read cache (DESIGN.md §7.3, fig14) is on and prewarmed:
        // the figure isolates *protocol* overhead, so the server runs
        // its read-optimized configuration for every transport alike.
        let cache = mcs::CacheConfig { capacity: (2 * n as usize).max(8192), shards: 64 };
        let built = build_catalog_with(n, IndexProfile::Paper2003, Some(cache));
        {
            let cred = workload::driver_credential(0, 0);
            for i in 0..n {
                built.mcs.get_file(&cred, &spec::file_name(i)).unwrap();
            }
        }
        let soap =
            McsServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", cfg.server_workers).unwrap();
        let bin =
            BinServer::start(Arc::clone(&built.mcs), "127.0.0.1:0", cfg.server_workers).unwrap();
        eprintln!("[fig18] {} ready in {:.1}s", size_label(n), t0.elapsed().as_secs_f64());
        let d = Deployment { n_files: n, built, server: soap };

        let accesses = [
            direct_access(&d, Duration::ZERO),
            Access::Soap { addr: d.server.addr().to_string(), rtt: Duration::ZERO, keep_alive: true },
            Access::Bin { addr: bin.addr().to_string(), rtt: Duration::ZERO, pipeline: 1 },
            Access::Bin { addr: bin.addr().to_string(), rtt: Duration::ZERO, pipeline: PIPELINE },
        ];
        // Longer points than the scale default: the A/B ratio is the
        // figure's product, so per-point noise matters more here than in
        // the shape-oriented paper figures.
        let run = RunConfig {
            hosts: 1,
            threads_per_host: 4,
            duration: cfg.scale.point_duration().max(Duration::from_secs(2)),
            warmup: cfg.scale.warmup().max(Duration::from_millis(400)),
            min_ops: cfg.scale.min_ops(),
            max_extension: cfg.scale.max_extension(),
        };
        let mut rates = [0.0f64; 4];
        for (s, access) in accesses.iter().enumerate() {
            let m = run_closed_loop(&run, |h, t| {
                make_worker(access, OpKind::SimpleQuery, d.n_files, h, t)
            });
            let mut p = Point { x: 0, rate: m.rate(), ops: m.ops, errors: m.errors };
            p.x = n;
            eprintln!(
                "[fig18] {} files, {}: {:.1}/s ({} errors)",
                size_label(n),
                query_labels[s],
                p.rate,
                p.errors
            );
            rates[s] = p.rate;
            series[s].points.push(p);
        }
        if rates[1] > 0.0 {
            // The protocol's rate is its pipelined mode — pipelining is
            // part of the wire design, not an optional extra.
            speedup_at_largest = rates[3] / rates[1];
            eprintln!(
                "[fig18] {} files: binary/soap-ka = {:.1}x sync, {:.1}x pipelined; \
                 pipelined/direct ceiling = {:.2}",
                size_label(n),
                rates[2] / rates[1],
                rates[3] / rates[1],
                rates[3] / rates[0].max(f64::MIN_POSITIVE),
            );
        }

        // Bulk ingest: the same fresh specs through each (transport,
        // batching) pair; rate is files landed per second. Distinct name
        // prefixes keep the four passes independent.
        let cred = workload::driver_credential(9, 0);
        let specs = |pass: usize| -> Vec<mcs::FileSpec> {
            (0..BULK_TOTAL)
                .map(|i| {
                    let mut s =
                        mcs::FileSpec::named(format!("bulk.p{pass}.{i:08}.dat"));
                    s.attributes = spec::attributes_of(n.wrapping_add(i));
                    s
                })
                .collect()
        };
        for (s, label) in bulk_labels.iter().enumerate() {
            let batch = s >= 2; // first two passes are one-at-a-time
            let soap_side = s % 2 == 0;
            let specs = specs(s);
            let mut soap_client = mcs_net::McsClient::with_opts(
                d.server.addr().to_string(),
                cred.clone(),
                soapstack::TransportOpts { keep_alive: true, simulated_rtt: Duration::ZERO },
            );
            let mut bin_client =
                mcs_net::BinMcsClient::connect(bin.addr().to_string(), cred.clone());
            let t0 = std::time::Instant::now();
            let mut errors = 0u64;
            if batch {
                for chunk in specs.chunks(BATCH) {
                    let r = if soap_side {
                        soap_client.create_files(chunk).map(|_| ())
                    } else {
                        bin_client.create_files(chunk).map(|_| ())
                    };
                    if r.is_err() {
                        errors += chunk.len() as u64;
                    }
                }
            } else {
                for spec in &specs {
                    let r = if soap_side {
                        soap_client.create_file(spec).map(|_| ())
                    } else {
                        bin_client.create_file(spec).map(|_| ())
                    };
                    if r.is_err() {
                        errors += 1;
                    }
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let rate = BULK_TOTAL as f64 / elapsed;
            eprintln!(
                "[fig18] {} files, {label}: {rate:.1} files/s ({errors} errors)",
                size_label(n)
            );
            series[4 + s].points.push(Point { x: n, rate, ops: BULK_TOTAL, errors });
        }
    }
    eprintln!(
        "[fig18] acceptance: {:.1}x binary-over-soap-keep-alive at the largest size (bar: >=5x)",
        speedup_at_largest
    );

    Figure {
        id: "fig18".into(),
        title: "Simple-Query and Bulk-Ingest Throughput: Binary Wire Protocol vs SOAP \
                Keep-Alive vs Direct Calls"
            .into(),
        x_label: "database size (logical files)".into(),
        y_label: "ops/sec".into(),
        series,
    }
}

/// Run one figure by number.
pub fn run_figure(n: u8, cfg: &Config, deployments: &[Deployment]) -> Figure {
    match n {
        5 => fig5(cfg, deployments),
        6 => fig6(cfg, deployments),
        7 => fig7(cfg, deployments),
        8 => fig8(cfg, deployments),
        9 => fig9(cfg, deployments),
        10 => fig10(cfg, deployments),
        11 => fig11(cfg, deployments),
        12 => fig12(cfg, deployments),
        13 => fig13(cfg, deployments),
        14 => fig14(cfg, deployments),
        15 => fig15(cfg, deployments),
        16 => fig16(cfg, deployments),
        17 => fig17(cfg, deployments),
        18 => fig18(cfg, deployments),
        other => panic!(
            "no figure {other}: 5–11 reproduce the paper, 12/13 the durability A/Bs, \
             14 the read-cache A/B, 15 the sharded-catalog scaling A/B, 16 the MVCC \
             snapshot-read A/B, 17 the cost-based planner A/B, 18 the binary wire \
             protocol A/B"
        ),
    }
}
