//! Harness configuration: database sizes, sweep axes, durations.

use std::time::Duration;

/// Scale of a repro run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds per figure; CI).
    Quick,
    /// Default: paper sizes ÷ 10 — every shape holds, minutes per figure.
    Default,
    /// The paper's sizes (100 k / 1 M / 5 M files; needs ~12 GB RAM and
    /// a long lunch).
    Full,
}

impl Scale {
    /// The three database sizes (paper §7 used 100 k, 1 M, 5 M).
    pub fn sizes(self) -> [u64; 3] {
        match self {
            Scale::Quick => [2_000, 10_000, 50_000],
            Scale::Default => [10_000, 100_000, 500_000],
            Scale::Full => [100_000, 1_000_000, 5_000_000],
        }
    }

    /// Measured seconds per data point.
    pub fn point_duration(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(500),
            Scale::Default => Duration::from_secs(2),
            Scale::Full => Duration::from_secs(5),
        }
    }

    /// Warm-up before each point.
    pub fn warmup(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(100),
            _ => Duration::from_millis(300),
        }
    }

    /// Minimum operations per point (measurement extends until reached).
    pub fn min_ops(self) -> u64 {
        match self {
            Scale::Quick => 4,
            _ => 12,
        }
    }

    /// Cap on the per-point measurement extension.
    pub fn max_extension(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(5),
            Scale::Default => Duration::from_secs(45),
            Scale::Full => Duration::from_secs(180),
        }
    }
}

/// Full harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run scale.
    pub scale: Scale,
    /// Thread counts for the single-host sweeps (paper Figures 5–7 swept
    /// 1..12 threads on one client host).
    pub threads: Vec<usize>,
    /// Host counts for the multi-host sweeps (Figures 8–10; 4 threads per
    /// host, like the paper).
    pub hosts: Vec<usize>,
    /// Simulated per-host LAN round-trip for the multi-host model and the
    /// database wire protocol (see DESIGN.md substitutions).
    pub host_rtt: Duration,
    /// Server worker threads (the paper's box was a dual-CPU Xeon running
    /// Tomcat with a worker pool).
    pub server_workers: usize,
    /// Directory for JSON results.
    pub out_dir: String,
}

impl Config {
    /// Configuration for a scale with the paper's sweep axes.
    pub fn new(scale: Scale) -> Config {
        Config {
            scale,
            threads: match scale {
                Scale::Quick => vec![1, 4, 12],
                _ => vec![1, 2, 4, 8, 12],
            },
            hosts: match scale {
                Scale::Quick => vec![1, 4, 10],
                _ => vec![1, 2, 4, 6, 8, 10],
            },
            host_rtt: Duration::from_millis(2),
            server_workers: 16,
            out_dir: "results".into(),
        }
    }
}
