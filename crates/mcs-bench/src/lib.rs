//! # mcs-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's §7 scalability study
//! (Figures 5–11): database sizes × {direct database, SOAP web service}
//! × {add, simple query, complex query} × {threads, hosts, attribute
//! count} sweeps, printed as the same series the paper plots and written
//! as JSON under `results/`.
//!
//! Run `cargo run --release -p mcs-bench --bin repro -- --help`.

#![warn(missing_docs)]

pub mod config;
pub mod figures;
pub mod report;

pub use config::{Config, Scale};
pub use figures::{deploy, run_figure, Deployment};
pub use report::{Figure, Point, Series};
