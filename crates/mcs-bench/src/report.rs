//! Result structures, table printing, and JSON output.
//!
//! JSON is written with a local serializer (the structures are flat and
//! fixed) to keep the dependency set to the approved crates.

/// One measured point of one series.
#[derive(Debug, Clone)]
pub struct Point {
    /// X value (threads, hosts, or attribute count).
    pub x: u64,
    /// Sustained successful-operation rate (ops/s).
    pub rate: f64,
    /// Successful operations counted.
    pub ops: u64,
    /// Failed operations counted.
    pub errors: u64,
}

/// One line of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, e.g. `100k direct` or `1M soap`.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

/// One reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `fig5`.
    pub id: String,
    /// Paper caption paraphrase.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Figure {
    /// Render as an aligned text table (rows = x, columns = series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        out.push_str(&format!("   ({} vs {})\n", self.y_label, self.x_label));
        let xs: Vec<u64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default();
        let mut header = format!("{:>10}", self.x_label);
        for s in &self.series {
            header.push_str(&format!("  {:>16}", s.label));
        }
        out.push_str(&header);
        out.push('\n');
        for (i, x) in xs.iter().enumerate() {
            let mut row = format!("{x:>10}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => row.push_str(&format!("  {:>16.1}", p.rate)),
                    None => row.push_str(&format!("  {:>16}", "-")),
                }
            }
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"id\": ");
        json_escape(&self.id, &mut out);
        out.push_str(",\n  \"title\": ");
        json_escape(&self.title, &mut out);
        out.push_str(",\n  \"x_label\": ");
        json_escape(&self.x_label, &mut out);
        out.push_str(",\n  \"y_label\": ");
        json_escape(&self.y_label, &mut out);
        out.push_str(",\n  \"series\": [\n");
        for (si, s) in self.series.iter().enumerate() {
            out.push_str("    {\"label\": ");
            json_escape(&s.label, &mut out);
            out.push_str(", \"points\": [");
            for (pi, p) in s.points.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"x\": {}, \"rate\": {:.3}, \"ops\": {}, \"errors\": {}}}",
                    p.x, p.rate, p.ops, p.errors
                ));
                if pi + 1 < s.points.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("]}");
            if si + 1 < self.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `{out_dir}/{id}.json`.
    pub fn write_json(&self, out_dir: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        std::fs::write(format!("{out_dir}/{}.json", self.id), self.to_json())
    }
}

/// Human label for a database size.
pub fn size_label(n: u64) -> String {
    if n >= 1_000_000 && n % 1_000_000 == 0 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "figX".into(),
            title: "demo \"quoted\"".into(),
            x_label: "threads".into(),
            y_label: "ops/s".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![Point { x: 1, rate: 10.0, ops: 10, errors: 0 }],
                },
                Series {
                    label: "b".into(),
                    points: vec![Point { x: 1, rate: 20.5, ops: 20, errors: 1 }],
                },
            ],
        }
    }

    #[test]
    fn table_renders_all_series() {
        let t = fig().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("10.0"));
        assert!(t.contains("20.5"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = fig().to_json();
        assert!(j.contains("\"id\": \"figX\""));
        assert!(j.contains("demo \\\"quoted\\\""));
        assert!(j.contains("\"rate\": 20.500"));
        // balanced braces/brackets
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(10_000), "10k");
        assert_eq!(size_label(1_000_000), "1M");
        assert_eq!(size_label(5_000_000), "5M");
        assert_eq!(size_label(500), "500");
    }
}
