//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! repro [--quick | --full] [--figure N]... [--out DIR]
//! ```
//!
//! With no `--figure`, all of Figures 5–11 run (deployments are built
//! once and shared). Tables go to stdout, JSON to `results/`.

use mcs_bench::{deploy, run_figure, Config, Scale};

fn main() {
    let mut scale = Scale::Default;
    let mut figures: Vec<u8> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--figure" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--figure needs a number 5..=18"));
                figures.push(n);
            }
            "--out" => out_dir = Some(args.next().unwrap_or_else(|| die("--out needs a path"))),
            "--help" | "-h" => {
                println!(
                    "repro — regenerate the SC'03 MCS evaluation figures\n\n\
                     USAGE: repro [--quick | --full] [--figure N]... [--out DIR]\n\n\
                     --quick    smoke-test sizes (2k/10k/50k files, 0.5s points)\n\
                     --full     the paper's sizes (100k/1M/5M files; ~12 GB RAM)\n\
                     --figure N run only figure N (may repeat; default: 5..=11;\n\
                                12 = group-commit vs per-txn-fsync A/B,\n\
                                13 = async epoch-ack commit latency A/B,\n\
                                14 = epoch-consistent read-cache A/B,\n\
                                15 = sharded scatter-gather scaling A/B,\n\
                                16 = MVCC snapshot-read mixed A/B,\n\
                                17 = cost-based planner A/B,\n\
                                18 = binary wire protocol vs SOAP A/B)\n\
                     --out DIR  JSON output directory (default: results)"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }
    if figures.is_empty() {
        figures = vec![5, 6, 7, 8, 9, 10, 11];
    }
    let mut cfg = Config::new(scale);
    if let Some(d) = out_dir {
        cfg.out_dir = d;
    }

    println!("MCS SC'03 evaluation reproduction — scale {scale:?}, sizes {:?}", cfg.scale.sizes());
    // Figures 12–18 build their own catalogs; don't populate the big
    // shared in-memory deployments unless a paper figure needs them.
    let deployments =
        if figures.iter().all(|&n| (12..=18).contains(&n)) { Vec::new() } else { deploy(&cfg) };
    for n in figures {
        let fig = run_figure(n, &cfg, &deployments);
        println!("\n{}", fig.to_table());
        if let Err(e) = fig.write_json(&cfg.out_dir) {
            eprintln!("warning: could not write {}/{}.json: {e}", cfg.out_dir, fig.id);
        } else {
            println!("   -> {}/{}.json", cfg.out_dir, fig.id);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
