//! Soft-state digests: Bloom-filter summaries of an LRC's logical-name
//! set, periodically pushed to index nodes (Giggle's "compressed state
//! updates" — the same mechanism the MCS paper's §9 proposes for
//! federating metadata catalogs).

/// A fixed-size Bloom filter over strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
}

impl BloomFilter {
    /// Filter sized for `expected` elements at roughly the given
    /// false-positive rate (standard m/k formulas).
    pub fn with_capacity(expected: usize, fp_rate: f64) -> BloomFilter {
        let expected = expected.max(1);
        let fp = fp_rate.clamp(1e-9, 0.5);
        let m = ((-(expected as f64) * fp.ln()) / (std::f64::consts::LN_2.powi(2))).ceil() as usize;
        let m = m.max(64);
        let k = (((m as f64 / expected as f64) * std::f64::consts::LN_2).round() as u32).max(1);
        BloomFilter { bits: vec![0u64; m.div_ceil(64)], m, k }
    }

    fn indexes(&self, item: &str) -> impl Iterator<Item = usize> + '_ {
        // double hashing: h_i = h1 + i*h2
        let h1 = fnv1a(item.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let h2 = fnv1a(item.as_bytes(), 0x9e37_79b9_7f4a_7c15) | 1;
        let m = self.m as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &str) {
        let idx: Vec<usize> = self.indexes(item).collect();
        for i in idx {
            self.bits[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Membership test (no false negatives; tunable false positives).
    pub fn contains(&self, item: &str) -> bool {
        self.indexes(item).collect::<Vec<_>>().iter().all(|&i| self.bits[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Size of the filter in bits.
    pub fn bit_len(&self) -> usize {
        self.m
    }

    /// Fraction of set bits (diagnostic; ~50% at design capacity).
    pub fn fill_ratio(&self) -> f64 {
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(ones) / self.m as f64
    }
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A digest pushed from an LRC to an index node.
#[derive(Debug, Clone)]
pub struct Digest {
    /// Originating LRC id.
    pub lrc_id: String,
    /// Bloom summary of the LRC's logical names.
    pub filter: BloomFilter,
    /// Logical time (seconds) at which the digest was produced.
    pub produced_at: u64,
}

impl Digest {
    /// Build a digest from a name list.
    pub fn build(lrc_id: &str, lfns: &[String], produced_at: u64, fp_rate: f64) -> Digest {
        let mut filter = BloomFilter::with_capacity(lfns.len(), fp_rate);
        for l in lfns {
            filter.insert(l);
        }
        Digest { lrc_id: lrc_id.to_owned(), filter, produced_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            f.insert(&format!("lfn-{i}"));
        }
        for i in 0..1000 {
            assert!(f.contains(&format!("lfn-{i}")));
        }
    }

    #[test]
    fn false_positive_rate_is_roughly_as_designed() {
        let n = 5000;
        let mut f = BloomFilter::with_capacity(n, 0.01);
        for i in 0..n {
            f.insert(&format!("member-{i}"));
        }
        let mut fp = 0;
        let probes = 20_000;
        for i in 0..probes {
            if f.contains(&format!("absent-{i}")) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / f64::from(probes);
        assert!(rate < 0.03, "false positive rate {rate} too high");
        // and the filter is actually doing something (not all-ones)
        assert!(f.fill_ratio() < 0.6);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_capacity(100, 0.01);
        assert!(!f.contains("anything"));
    }

    #[test]
    fn digest_builds_from_lfn_list() {
        let lfns: Vec<String> = (0..50).map(|i| format!("f{i}")).collect();
        let d = Digest::build("site-a", &lfns, 1234, 0.01);
        assert_eq!(d.lrc_id, "site-a");
        assert!(d.filter.contains("f17"));
        assert_eq!(d.produced_at, 1234);
    }
}
