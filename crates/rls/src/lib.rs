//! # rls — a Replica Location Service
//!
//! The Giggle-style RLS ([Chervenak et al., SC'02] — reference [4] of the
//! MCS paper) that the Metadata Catalog Service federates with: the MCS
//! maps descriptive attributes to *logical* names; the RLS maps logical
//! names to *physical* replicas (Figure 2, steps 3–4).
//!
//! Two components:
//! * [`LocalReplicaCatalog`] — authoritative LFN→PFN mappings for a site;
//! * [`ReplicaLocationIndex`] — an index node fed by soft-state
//!   Bloom-filter digests with TTL expiry, answering "which sites might
//!   hold this file?".
//!
//! The same soft-state machinery is what paper §9 proposes for federating
//! self-consistent metadata catalogs; the `federation` example reuses it.

#![warn(missing_docs)]

pub mod lrc;
pub mod rli;
pub mod softstate;

pub use lrc::{LocalReplicaCatalog, RlsError};
pub use rli::ReplicaLocationIndex;
pub use softstate::{BloomFilter, Digest};
