//! Replica Location Index: aggregates soft-state digests from many LRCs
//! and answers "which sites might hold this logical file?" (Giggle's RLI;
//! also the aggregation-node prototype for §9's federated-MCS sketch).

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::softstate::Digest;

/// One registered digest plus its freshness bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    digest: Digest,
    received_at: u64,
}

/// A Replica Location Index node.
#[derive(Debug)]
pub struct ReplicaLocationIndex {
    entries: RwLock<HashMap<String, Entry>>,
    /// Digests older than this many seconds are ignored and pruned —
    /// soft state: a crashed LRC silently ages out.
    ttl: u64,
}

impl ReplicaLocationIndex {
    /// Index node with the given digest time-to-live (seconds).
    pub fn new(ttl: u64) -> ReplicaLocationIndex {
        ReplicaLocationIndex { entries: RwLock::new(HashMap::new()), ttl }
    }

    /// Accept a digest push from an LRC (replaces any previous digest
    /// from the same site).
    pub fn update(&self, digest: Digest, now: u64) {
        self.entries
            .write()
            .insert(digest.lrc_id.clone(), Entry { digest, received_at: now });
    }

    /// Sites whose (fresh) digest claims the logical name. May contain
    /// false positives (Bloom), never false negatives for fresh digests.
    pub fn query(&self, lfn: &str, now: u64) -> Vec<String> {
        let entries = self.entries.read();
        let mut out: Vec<String> = entries
            .values()
            .filter(|e| now.saturating_sub(e.received_at) <= self.ttl)
            .filter(|e| e.digest.filter.contains(lfn))
            .map(|e| e.digest.lrc_id.clone())
            .collect();
        out.sort();
        out
    }

    /// Drop entries whose digest has aged beyond the TTL.
    pub fn expire(&self, now: u64) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|_, e| now.saturating_sub(e.received_at) <= self.ttl);
        before - entries.len()
    }

    /// Number of live site digests.
    pub fn site_count(&self) -> usize {
        self.entries.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(site: &str, lfns: &[&str], at: u64) -> Digest {
        let lfns: Vec<String> = lfns.iter().map(|s| (*s).to_owned()).collect();
        Digest::build(site, &lfns, at, 0.001)
    }

    #[test]
    fn query_routes_to_owning_sites() {
        let rli = ReplicaLocationIndex::new(300);
        rli.update(digest("isi", &["a", "b"], 0), 0);
        rli.update(digest("cern", &["b", "c"], 0), 0);
        assert_eq!(rli.query("a", 10), vec!["isi"]);
        assert_eq!(rli.query("b", 10), vec!["cern", "isi"]);
        assert!(rli.query("zzz-not-there", 10).is_empty());
    }

    #[test]
    fn stale_digests_ignored_and_expired() {
        let rli = ReplicaLocationIndex::new(60);
        rli.update(digest("isi", &["a"], 0), 0);
        assert_eq!(rli.query("a", 59), vec!["isi"]);
        assert!(rli.query("a", 61).is_empty()); // aged out
        assert_eq!(rli.site_count(), 1);
        assert_eq!(rli.expire(61), 1);
        assert_eq!(rli.site_count(), 0);
    }

    #[test]
    fn new_digest_replaces_old() {
        let rli = ReplicaLocationIndex::new(300);
        rli.update(digest("isi", &["old"], 0), 0);
        rli.update(digest("isi", &["new"], 100), 100);
        assert!(rli.query("old", 100).is_empty());
        assert_eq!(rli.query("new", 100), vec!["isi"]);
    }
}
