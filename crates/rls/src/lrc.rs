//! Local Replica Catalog: authoritative logical-name → physical-name
//! mappings for one site (Giggle's LRC component).

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::RwLock;

/// Errors from LRC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlsError {
    /// The mapping already exists.
    MappingExists {
        /// Logical file name.
        lfn: String,
        /// Physical file name.
        pfn: String,
    },
    /// No such mapping.
    NoSuchMapping {
        /// Logical file name.
        lfn: String,
        /// Physical file name (empty = any).
        pfn: String,
    },
}

impl std::fmt::Display for RlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RlsError::MappingExists { lfn, pfn } => {
                write!(f, "mapping {lfn} -> {pfn} already exists")
            }
            RlsError::NoSuchMapping { lfn, pfn } if pfn.is_empty() => {
                write!(f, "no mappings for {lfn}")
            }
            RlsError::NoSuchMapping { lfn, pfn } => write!(f, "no mapping {lfn} -> {pfn}"),
        }
    }
}

impl std::error::Error for RlsError {}

/// A Local Replica Catalog.
#[derive(Debug, Default)]
pub struct LocalReplicaCatalog {
    /// Site identifier advertised to RLIs.
    id: String,
    map: RwLock<BTreeMap<String, BTreeSet<String>>>,
}

impl LocalReplicaCatalog {
    /// New catalog for a site.
    pub fn new(id: impl Into<String>) -> LocalReplicaCatalog {
        LocalReplicaCatalog { id: id.into(), map: RwLock::default() }
    }

    /// This catalog's site id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Register a replica. Errors if the exact mapping already exists.
    pub fn add(&self, lfn: &str, pfn: &str) -> Result<(), RlsError> {
        let mut map = self.map.write();
        let set = map.entry(lfn.to_owned()).or_default();
        if !set.insert(pfn.to_owned()) {
            return Err(RlsError::MappingExists { lfn: lfn.to_owned(), pfn: pfn.to_owned() });
        }
        Ok(())
    }

    /// Remove one replica mapping. Removes the LFN entirely when its last
    /// replica goes.
    pub fn remove(&self, lfn: &str, pfn: &str) -> Result<(), RlsError> {
        let mut map = self.map.write();
        let Some(set) = map.get_mut(lfn) else {
            return Err(RlsError::NoSuchMapping { lfn: lfn.to_owned(), pfn: String::new() });
        };
        if !set.remove(pfn) {
            return Err(RlsError::NoSuchMapping { lfn: lfn.to_owned(), pfn: pfn.to_owned() });
        }
        if set.is_empty() {
            map.remove(lfn);
        }
        Ok(())
    }

    /// Physical locations of a logical file (paper Figure 2, steps 3–4).
    pub fn lookup(&self, lfn: &str) -> Vec<String> {
        self.map.read().get(lfn).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// Does this catalog know the logical file?
    pub fn contains(&self, lfn: &str) -> bool {
        self.map.read().contains_key(lfn)
    }

    /// Number of logical files with at least one replica.
    pub fn lfn_count(&self) -> usize {
        self.map.read().len()
    }

    /// Snapshot of all logical names (digest input for soft-state updates).
    pub fn lfns(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lookup_remove() {
        let lrc = LocalReplicaCatalog::new("isi");
        lrc.add("lfn1", "gsiftp://a/f1").unwrap();
        lrc.add("lfn1", "gsiftp://b/f1").unwrap();
        assert_eq!(lrc.lookup("lfn1").len(), 2);
        assert!(lrc.contains("lfn1"));
        lrc.remove("lfn1", "gsiftp://a/f1").unwrap();
        assert_eq!(lrc.lookup("lfn1"), vec!["gsiftp://b/f1"]);
        lrc.remove("lfn1", "gsiftp://b/f1").unwrap();
        assert!(!lrc.contains("lfn1"));
        assert_eq!(lrc.lfn_count(), 0);
    }

    #[test]
    fn duplicate_and_missing_errors() {
        let lrc = LocalReplicaCatalog::new("isi");
        lrc.add("l", "p").unwrap();
        assert!(matches!(lrc.add("l", "p"), Err(RlsError::MappingExists { .. })));
        assert!(matches!(lrc.remove("l", "q"), Err(RlsError::NoSuchMapping { .. })));
        assert!(matches!(lrc.remove("x", "p"), Err(RlsError::NoSuchMapping { .. })));
    }

    #[test]
    fn lookup_unknown_is_empty() {
        let lrc = LocalReplicaCatalog::new("isi");
        assert!(lrc.lookup("nope").is_empty());
    }
}
