//! End-to-end tests: real MCS behind the real SOAP/HTTP server, driven by
//! the client API over loopback TCP.

use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, Attribute, Credential, ExternalCatalog, FileSpec, FileUpdate,
    IndexProfile, ManualClock, Mcs, ObjectRef, Permission, UserRecord,
};
use mcs_net::{FaultKind, McsClient, McsServer};
use relstore::Value;
use soapstack::TransportOpts;

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn start_server() -> (McsServer, Arc<Mcs>) {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Arc::new(Mcs::with_options(&a, IndexProfile::Paper2003, clock).unwrap());
    let server = McsServer::start(Arc::clone(&m), "127.0.0.1:0", 4).unwrap();
    (server, m)
}

fn client(server: &McsServer) -> McsClient {
    McsClient::connect(server.addr().to_string(), admin())
}

#[test]
fn ping_and_wsdl() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.ping().unwrap();
    // GET returns the service description
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /mcs?wsdl HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert!(text.contains("MetadataCatalogService"));
    assert!(text.contains("queryByAttributes"));
}

#[test]
fn full_file_lifecycle_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.define_attribute("channel", AttrType::Str, "detector channel").unwrap();
    c.define_attribute("gps", AttrType::Int, "gps start").unwrap();

    let f = c
        .create_file(&FileSpec::named("run_0042.gwf").attr("channel", "H1").attr("gps", 714_000_000i64))
        .unwrap();
    assert_eq!(f.version, 1);

    let got = c.get_file("run_0042.gwf").unwrap();
    assert_eq!(got, f);

    let attrs = c.get_attributes(&ObjectRef::File("run_0042.gwf".into())).unwrap();
    assert_eq!(attrs.len(), 2);

    let hits = c
        .query_by_attributes(&[
            AttrPredicate::eq("channel", "H1"),
            AttrPredicate { name: "gps".into(), op: mcs::AttrOp::Ge, value: 714_000_000i64.into() },
        ])
        .unwrap();
    assert_eq!(hits, vec![("run_0042.gwf".to_string(), 1)]);

    let f2 = c
        .update_file("run_0042.gwf", &FileUpdate { data_type: Some("gwf".into()), ..Default::default() })
        .unwrap();
    assert_eq!(f2.data_type.as_deref(), Some("gwf"));

    c.invalidate_file("run_0042.gwf").unwrap();
    assert!(c.query_by_attributes(&[AttrPredicate::eq("channel", "H1")]).unwrap().is_empty());

    c.delete_file("run_0042.gwf").unwrap();
    let err = c.get_file("run_0042.gwf").unwrap_err();
    assert!(err.is(FaultKind::NotFound), "{err}");
}

#[test]
fn collections_views_annotations_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.create_collection("ligo", None, "top").unwrap();
    c.create_collection("ligo/s2", Some("ligo"), "run 2").unwrap();
    c.create_file(&FileSpec::named("a").in_collection("ligo/s2")).unwrap();
    c.create_file(&FileSpec::named("b").in_collection("ligo/s2")).unwrap();
    let contents = c.list_collection("ligo/s2").unwrap();
    assert_eq!(contents.files.len(), 2);
    let top = c.list_collection("ligo").unwrap();
    assert_eq!(top.subcollections, vec!["ligo/s2"]);

    c.create_view("favorites", "my picks").unwrap();
    c.add_to_view("favorites", &ObjectRef::File("a".into())).unwrap();
    c.add_to_view("favorites", &ObjectRef::Collection("ligo/s2".into())).unwrap();
    let v = c.list_view("favorites").unwrap();
    assert_eq!(v.files, vec![("a".to_string(), 1)]);
    assert_eq!(v.collections, vec!["ligo/s2"]);
    assert!(c.remove_from_view("favorites", &ObjectRef::File("a".into())).unwrap());

    c.annotate(&ObjectRef::File("a".into()), "looks noisy <after> 40Hz & up").unwrap();
    let anns = c.get_annotations(&ObjectRef::File("a".into())).unwrap();
    assert_eq!(anns[0].text, "looks noisy <after> 40Hz & up");

    c.add_history("a", "produced by calibrate --v3").unwrap();
    assert_eq!(c.get_history("a").unwrap().len(), 1);
}

#[test]
fn faults_carry_structured_kinds() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    assert!(c.get_file("ghost").unwrap_err().is(FaultKind::NotFound));
    c.create_file(&FileSpec::named("f")).unwrap();
    assert!(c.create_file(&FileSpec::named("f")).unwrap_err().is(FaultKind::AlreadyExists));
    assert!(c
        .create_file(&FileSpec::named("g").attr("undefined", 1i64))
        .unwrap_err()
        .is(FaultKind::BadAttribute));
    assert!(c.create_file(&FileSpec::named("")).unwrap_err().is(FaultKind::InvalidName));
    // permission fault for a stranger
    let mut stranger =
        McsClient::connect(server.addr().to_string(), Credential::new("/CN=stranger"));
    assert!(stranger.get_file("f").unwrap_err().is(FaultKind::PermissionDenied));
}

#[test]
fn grants_work_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.create_file(&FileSpec::named("f")).unwrap();
    c.grant(&ObjectRef::File("f".into()), "/CN=reader", Permission::Read).unwrap();
    let mut reader =
        McsClient::connect(server.addr().to_string(), Credential::new("/CN=reader"));
    assert!(reader.get_file("f").is_ok());
    c.revoke(&ObjectRef::File("f".into()), "/CN=reader", Permission::Read).unwrap();
    assert!(reader.get_file("f").unwrap_err().is(FaultKind::PermissionDenied));
}

#[test]
fn audit_trail_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.create_file(&FileSpec { audit: true, ..FileSpec::named("f") }).unwrap();
    c.get_file("f").unwrap();
    let trail = c.get_audit_trail(&ObjectRef::File("f".into())).unwrap();
    let actions: Vec<&str> = trail.iter().map(|r| r.action.as_str()).collect();
    assert_eq!(actions, vec!["create", "query"]);
    c.set_audit(&ObjectRef::File("f".into()), false).unwrap();
    c.get_file("f").unwrap();
    assert_eq!(c.get_audit_trail(&ObjectRef::File("f".into())).unwrap().len(), 2);
}

#[test]
fn registries_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.register_user(&UserRecord {
        dn: "/CN=ewa".into(),
        description: "planner".into(),
        institution: "ISI".into(),
        email: "e@isi.edu".into(),
        phone: "".into(),
    })
    .unwrap();
    assert_eq!(c.get_user("/CN=ewa").unwrap().institution, "ISI");
    assert_eq!(c.list_users().unwrap().len(), 1);

    c.register_external_catalog(&ExternalCatalog {
        name: "repmec".into(),
        catalog_type: "Spitfire".into(),
        host: "edg.cern.ch".into(),
        ip: "".into(),
        description: "EDG replica metadata".into(),
    })
    .unwrap();
    assert_eq!(c.list_external_catalogs().unwrap().len(), 1);
}

#[test]
fn special_characters_survive_the_envelope() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.define_attribute("desc", AttrType::Str, "").unwrap();
    let nasty = "a <b> & 'c' \"d\" — ümlaut 数据";
    c.create_file(&FileSpec::named("f").attr("desc", nasty)).unwrap();
    let attrs = c.get_attributes(&ObjectRef::File("f".into())).unwrap();
    assert_eq!(attrs[0].value, Value::from(nasty));
}

#[test]
fn versions_over_the_wire() {
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.create_file(&FileSpec::named("f")).unwrap();
    c.create_file(&FileSpec { version: Some(2), ..FileSpec::named("f") }).unwrap();
    assert!(c.get_file("f").unwrap_err().is(FaultKind::VersionConflict));
    assert_eq!(c.get_file_version("f", 2).unwrap().version, 2);
    assert_eq!(c.get_file_versions("f").unwrap().len(), 2);
    c.delete_file_version("f", 1).unwrap();
    assert_eq!(c.get_file("f").unwrap().version, 2);
}

#[test]
fn keep_alive_transport_works() {
    let (server, _m) = start_server();
    let opts = TransportOpts { keep_alive: true, simulated_rtt: std::time::Duration::ZERO };
    let mut c = McsClient::with_opts(server.addr().to_string(), admin(), opts);
    for i in 0..10 {
        c.create_file(&FileSpec::named(format!("f{i}"))).unwrap();
    }
    assert_eq!(c.get_file("f7").unwrap().name, "f7");
    // one TCP connection for all 11+ calls
    assert_eq!(server.stats().connections.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn concurrent_clients() {
    let (server, _m) = start_server();
    let addr = server.addr().to_string();
    let mut c = client(&server);
    c.define_attribute("x", AttrType::Int, "").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = McsClient::connect(addr, admin());
                for i in 0..25 {
                    c.create_file(&FileSpec::named(format!("t{t}_f{i}")).attr("x", i as i64))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let hits = c.query_by_attributes(&[AttrPredicate::eq("x", 3i64)]).unwrap();
    assert_eq!(hits.len(), 4);
    let attribute = Attribute { name: "x".into(), value: Value::Int(99) };
    c.set_attribute(&ObjectRef::File("t0_f0".into()), &attribute).unwrap();
    assert_eq!(
        c.get_attributes(&ObjectRef::File("t0_f0".into())).unwrap()[0].value,
        Value::Int(99)
    );
}

#[test]
fn explain_query_over_the_wire() {
    // Paper2003 profile: every predicate reports its posting scan.
    let (server, _m) = start_server();
    let mut c = client(&server);
    c.define_attribute("channel", AttrType::Str, "").unwrap();
    let plan = c.explain_query(&[AttrPredicate::eq("channel", "H1")]).unwrap();
    assert_eq!(plan, vec!["posting scan: channel = via ua_name".to_string()]);

    // ValueIndexed profile: the cost-based plan comes back line by line.
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Arc::new(Mcs::with_options(&a, IndexProfile::ValueIndexed, clock).unwrap());
    let server = McsServer::start(m, "127.0.0.1:0", 2).unwrap();
    let mut c = client(&server);
    c.define_attribute("channel", AttrType::Str, "").unwrap();
    c.define_attribute("gps", AttrType::Int, "").unwrap();
    for i in 0..8 {
        c.create_file(
            &FileSpec::named(format!("f{i}")).attr("channel", "H1").attr("gps", i as i64),
        )
        .unwrap();
    }
    let plan = c
        .explain_query(&[
            AttrPredicate::eq("channel", "H1"),
            AttrPredicate { name: "gps".into(), op: mcs::AttrOp::Ge, value: 5i64.into() },
        ])
        .unwrap();
    assert_eq!(plan.len(), 2);
    // gps >= 5 keeps 3 of 8 rows and seeds; channel = H1 matches all 8,
    // so walking its index would cost more than probing the 3 survivors.
    assert!(plan[0].starts_with("seed: gps >= via index ua_name_int range"), "{plan:?}");
    assert!(plan[1].starts_with("residual: channel = via ua_object probes"), "{plan:?}");

    // Empty predicate lists fault, like the query itself.
    assert!(c.explain_query(&[]).is_err());
}
