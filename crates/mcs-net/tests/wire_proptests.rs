//! Property tests: the SOAP wire encoding is the identity on every MCS
//! type that crosses it.

use mcs::{AttrOp, AttrPredicate, Attribute, Credential, FileSpec, LogicalFile, ObjectRef};
use mcs_net::wire;
use proptest::prelude::*;
use relstore::{Date, DateTime, Time, Value};
use soapstack::xml::parse;

fn text() -> impl Strategy<Value = String> {
    // printable including XML-hostile characters
    "[ -~]{0,32}"
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()).prop_map(Value::Float),
        text().prop_map(Value::from),
        any::<bool>().prop_map(Value::Bool),
        (-100_000i64..100_000).prop_map(|z| Value::Date(Date::from_days_from_epoch(z))),
        (0u32..86_400).prop_map(|s| {
            Value::Time(Time::new((s / 3600) as u8, ((s % 3600) / 60) as u8, (s % 60) as u8).unwrap())
        }),
        (-10_000_000_000i64..10_000_000_000)
            .prop_map(|s| Value::DateTime(DateTime::from_seconds_from_epoch(s))),
    ]
}

fn roundtrip_el(e: soapstack::xml::Element) -> soapstack::xml::Element {
    parse(&e.to_xml()).expect("wire xml parses")
}

proptest! {
    #[test]
    fn values_roundtrip(v in arb_value()) {
        let got = wire::value_from(&roundtrip_el(wire::value_el("value", &v))).unwrap();
        prop_assert_eq!(got, v);
    }

    #[test]
    fn attributes_roundtrip(name in "[a-zA-Z][a-zA-Z0-9_/@.#]{0,24}", v in arb_value()) {
        prop_assume!(!v.is_null()); // attributes are never NULL-valued
        let a = Attribute { name, value: v };
        let got = wire::attribute_from(&roundtrip_el(wire::attribute_el(&a))).unwrap();
        prop_assert_eq!(got, a);
    }

    #[test]
    fn predicates_roundtrip(
        name in "[a-z_]{1,16}",
        op_i in 0usize..7,
        v in arb_value(),
    ) {
        prop_assume!(!v.is_null());
        let op = [AttrOp::Eq, AttrOp::Ne, AttrOp::Lt, AttrOp::Le, AttrOp::Gt, AttrOp::Ge, AttrOp::Like][op_i];
        let p = AttrPredicate { name, op, value: v };
        let got = wire::predicate_from(&roundtrip_el(wire::predicate_el(&p))).unwrap();
        prop_assert_eq!(got, p);
    }

    #[test]
    fn filespecs_roundtrip(
        name in "[a-zA-Z0-9._-]{1,32}",
        version in proptest::option::of(1i64..100),
        data_type in proptest::option::of(text()),
        collection in proptest::option::of("[a-z]{1,12}"),
        master in proptest::option::of(text()),
        audit in any::<bool>(),
        attrs in prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..5),
    ) {
        let mut spec = FileSpec {
            name,
            version,
            data_type,
            collection,
            container_id: None,
            container_service: None,
            master_copy: master,
            audit,
            attributes: attrs
                .into_iter()
                .filter(|(_, v)| !v.is_null())
                .map(|(name, value)| Attribute { name, value })
                .collect(),
        };
        // empty-string optionals don't survive (absent vs empty) — the
        // MCS rejects empty strings anyway, so normalize like the server
        for f in [&mut spec.data_type, &mut spec.master_copy] {
            if f.as_deref() == Some("") {
                *f = None;
            }
        }
        let got = wire::filespec_from(&roundtrip_el(wire::filespec_el(&spec))).unwrap();
        prop_assert_eq!(got.name, spec.name);
        prop_assert_eq!(got.version, spec.version);
        prop_assert_eq!(got.data_type, spec.data_type);
        prop_assert_eq!(got.collection, spec.collection);
        prop_assert_eq!(got.master_copy, spec.master_copy);
        prop_assert_eq!(got.audit, spec.audit);
        prop_assert_eq!(got.attributes, spec.attributes);
    }

    #[test]
    fn files_roundtrip(
        id in 1i64..1_000_000,
        name in "[a-zA-Z0-9._-]{1,32}",
        version in 1i64..50,
        valid in any::<bool>(),
        coll in proptest::option::of(1i64..1000),
        creator in "[ -~]{1,24}",
        secs in 0i64..2_000_000_000,
        audit in any::<bool>(),
    ) {
        let f = LogicalFile {
            id,
            name,
            version,
            data_type: None,
            valid,
            collection_id: coll,
            container_id: None,
            container_service: None,
            creator,
            created: DateTime::from_seconds_from_epoch(secs),
            last_modifier: None,
            last_modified: None,
            master_copy: None,
            audit_enabled: audit,
        };
        let got = wire::file_from(&roundtrip_el(wire::file_el(&f))).unwrap();
        prop_assert_eq!(got, f);
    }

    #[test]
    fn credentials_roundtrip(dn in "[ -~]{1,40}", groups in prop::collection::vec("[a-z-]{1,16}", 0..4)) {
        let c = Credential { dn, groups };
        let call = soapstack::xml::Element::new("call").child(wire::credential_el(&c));
        let got = wire::credential_from(&roundtrip_el(call)).unwrap();
        prop_assert_eq!(got, c);
    }

    #[test]
    fn objrefs_roundtrip(kind in 0usize..5, name in "[a-zA-Z0-9._-]{1,24}", v in 1i64..50) {
        let r = match kind {
            0 => ObjectRef::File(name),
            1 => ObjectRef::FileVersion(name, v),
            2 => ObjectRef::Collection(name),
            3 => ObjectRef::View(name),
            _ => ObjectRef::Service,
        };
        let call = soapstack::xml::Element::new("call").child(wire::objref_el(&r));
        let got = wire::objref_from(&roundtrip_el(call)).unwrap();
        prop_assert_eq!(got, r);
    }
}
