//! Pipelining stress: 8 concurrent clients, each keeping a window of
//! pipelined requests in flight on one persistent connection against a
//! 4-shard catalog, 200 requests per client, mixed reads and writes.
//!
//! The assertions are the pipelining contract:
//! * responses come back strictly in send order per connection (every
//!   `recv_*` checks the payload matches what that queue slot asked for,
//!   and the client itself faults on any tag mismatch);
//! * no commit is lost or duplicated — the multiset of epoch echoes
//!   collected across all clients is exactly the dense range the
//!   per-shard commit counters advanced through, and every written row
//!   is readable afterwards;
//! * each client held exactly one TCP connection for all its traffic.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mcs::{
    AttrType, Attribute, Credential, FileSpec, IndexProfile, ManualClock, ObjectRef,
    ShardedCatalog,
};
use mcs_net::{BinMcsClient, BinServer};
use relstore::Value;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 200;
const WINDOW: usize = 25;

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

/// What each queue slot of a pipelined window expects back.
enum Expect {
    File(String),
    Ok,
}

#[test]
fn pipelined_clients_stress() {
    let catalog = Arc::new(
        ShardedCatalog::in_memory_opts(
            4,
            &admin(),
            IndexProfile::Paper2003,
            Arc::new(ManualClock::default()),
            None,
            false,
        )
        .unwrap(),
    );
    let server = BinServer::start_sharded(Arc::clone(&catalog), "127.0.0.1:0", CLIENTS).unwrap();
    let addr = server.addr().to_string();

    // Schema setup through its own connection, *before* the commit
    // counters are snapshotted: during the stress phase only the
    // workers' writes commit, so the epoch echoes they collect must
    // tile the counters' advance exactly.
    let mut setup = BinMcsClient::connect(addr.clone(), admin());
    setup.define_attribute("run", AttrType::Int, "").unwrap();
    let base: Vec<u64> = catalog.commit_epochs();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = BinMcsClient::connect(addr, admin());
                // (shard, epoch) echo of every committing response.
                let mut commits: Vec<(usize, u64)> = Vec::new();
                // Names created in completed windows — safe to read.
                let mut created: Vec<String> = Vec::new();
                let mut issued = 0usize;
                let mut serial = 0usize;
                while issued < REQUESTS_PER_CLIENT {
                    let window = WINDOW.min(REQUESTS_PER_CLIENT - issued);
                    let mut expects = Vec::with_capacity(window);
                    for j in 0..window {
                        match j % 4 {
                            // A write: unique name per client, so every
                            // create must succeed.
                            0 | 2 => {
                                let name = format!("t{t}-{serial:03}.dat");
                                serial += 1;
                                let spec =
                                    FileSpec::named(&name).attr("run", (t * 1000 + serial) as i64);
                                c.send_create_file(&spec).unwrap();
                                expects.push(Expect::File(name.clone()));
                                created.push(name);
                            }
                            // A read of an already-acknowledged file.
                            1 => {
                                let name = created[(issued + j) % created.len()].clone();
                                c.send_get_file(&name).unwrap();
                                expects.push(Expect::File(name));
                            }
                            // Another write shape: attribute upsert on an
                            // acknowledged file.
                            _ => {
                                let name = created[(issued + j) % created.len()].clone();
                                c.send_set_attribute(
                                    &ObjectRef::File(name),
                                    &Attribute {
                                        name: "run".into(),
                                        value: Value::Int(j as i64),
                                    },
                                )
                                .unwrap();
                                expects.push(Expect::Ok);
                            }
                        }
                    }
                    assert_eq!(c.inflight(), window);
                    // Drain in order; every payload must be the one this
                    // slot asked for.
                    for e in expects {
                        match e {
                            Expect::File(name) => {
                                let f = c.recv_file().unwrap_or_else(|err| {
                                    panic!("client {t}: lost response for {name}: {err}")
                                });
                                assert_eq!(f.name, name, "client {t}: out-of-order response");
                            }
                            Expect::Ok => c.recv_ok().unwrap(),
                        }
                        if c.last_epoch() > 0 {
                            commits.push((c.last_shard(), c.last_epoch()));
                        }
                    }
                    assert_eq!(c.inflight(), 0);
                    issued += window;
                }
                commits
            })
        })
        .collect();

    let mut all_commits: Vec<(usize, u64)> = Vec::new();
    for w in workers {
        all_commits.extend(w.join().expect("worker panicked"));
    }

    // No lost or duplicated commits: per shard, the epoch echoes
    // collected across every client are exactly the dense range
    // (base, final] the shard's commit counter advanced through.
    let fin: Vec<u64> = catalog.commit_epochs();
    for k in 0..catalog.shards() {
        let mut epochs: Vec<u64> =
            all_commits.iter().filter(|(s, _)| *s == k).map(|&(_, e)| e).collect();
        epochs.sort_unstable();
        let expected: Vec<u64> = (base[k] + 1..=fin[k]).collect();
        assert_eq!(
            epochs, expected,
            "shard {k}: epoch echoes must tile ({}, {}] densely",
            base[k], fin[k]
        );
    }

    // Every written row survived the concurrency: one file per create,
    // all readable with the last-written attribute present.
    let mut check = BinMcsClient::connect(addr, admin());
    let info = check.catalog_info().unwrap();
    // Replays the window loop: slot j of each window creates iff j % 4
    // is 0 or 2.
    let mut creates_per_client = 0;
    let mut issued = 0;
    while issued < REQUESTS_PER_CLIENT {
        let window = WINDOW.min(REQUESTS_PER_CLIENT - issued);
        creates_per_client += (0..window).filter(|j| j % 4 == 0 || j % 4 == 2).count();
        issued += window;
    }
    assert_eq!(info.files, (CLIENTS * creates_per_client) as u64);
    for t in 0..CLIENTS {
        let f = check.get_file(&format!("t{t}-000.dat")).unwrap();
        assert!(f.valid);
        let attrs = check.get_attributes(&ObjectRef::File(f.name)).unwrap();
        assert_eq!(attrs.len(), 1);
    }

    // One TCP connection per pipelined client (plus setup and the final
    // checker): persistent connections are the whole game.
    assert_eq!(server.stats().connections.load(Ordering::Relaxed), CLIENTS as u64 + 2);
    let expected_requests = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert!(
        server.stats().requests.load(Ordering::Relaxed) >= expected_requests,
        "server served fewer requests than the clients sent"
    );
}
