//! End-to-end tests for a hash-partitioned catalog behind the SOAP
//! surface (DESIGN.md §7.4): `catalogInfo`, routed writes with per-shard
//! epoch echoes, scatter-gather queries, and the single-shard wire
//! contract staying byte-compatible.

use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, CacheConfig, Credential, FileSpec, IndexProfile, ManualClock, Mcs,
    ShardedCatalog, StoreConfig,
};
use mcs_net::client::DurabilityMode;
use mcs_net::{McsClient, McsServer};
use relstore::Value;

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-net-shard-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_sharded_server(shards: usize) -> McsServer {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let catalog = Arc::new(
        ShardedCatalog::in_memory_cached(
            shards,
            &a,
            IndexProfile::Paper2003,
            clock,
            Some(CacheConfig::default()),
        )
        .unwrap(),
    );
    McsServer::start_sharded(catalog, "127.0.0.1:0", 4).unwrap()
}

fn eq(name: &str, v: impl Into<Value>) -> AttrPredicate {
    AttrPredicate { name: name.into(), op: mcs::AttrOp::Eq, value: v.into() }
}

#[test]
fn catalog_info_and_routed_ops_over_the_wire() {
    let server = start_sharded_server(4);
    let mut c = McsClient::connect(server.addr().to_string(), admin());

    let info = c.catalog_info().unwrap();
    assert_eq!(info.shards, 4);
    assert_eq!(info.profile, "Paper2003");
    assert_eq!(info.files, 0);
    assert!(info.cache_enabled);

    // Global state (collections, attribute definitions) and per-file
    // state (files, their attributes) land on different shards, but the
    // wire surface is unchanged: one endpoint, one answer.
    c.define_attribute("run", AttrType::Int, "run number").unwrap();
    c.create_collection("ligo", None, "LIGO runs").unwrap();
    for i in 0..12 {
        c.create_file(
            &FileSpec::named(format!("run.{i:03}.gwf"))
                .attr("run", i as i64)
                .in_collection("ligo"),
        )
        .unwrap();
    }
    assert_eq!(c.catalog_info().unwrap().files, 12);

    // A non-name predicate fans out to every shard; the merged answer is
    // complete and name-ordered.
    let hits = c.query_by_attributes(&[eq("run", 3i64)]).unwrap();
    assert_eq!(hits, vec![("run.003.gwf".to_owned(), 1)]);
    let all: Vec<String> = c
        .list_collection("ligo")
        .unwrap()
        .files
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert_eq!(all.len(), 12);
    let mut sorted = all.clone();
    sorted.sort();
    assert_eq!(all, sorted, "gathered listing must be name-ordered");
}

#[test]
fn async_writes_echo_their_shard_for_the_epoch_barrier() {
    // Epoch echoes need a WAL, so this one runs on a durable 4-shard
    // store rather than in memory.
    let dir = tmpdir("echo");
    let catalog = Arc::new(
        mcs::Mcs::open_sharded(
            &dir,
            &admin(),
            IndexProfile::Paper2003,
            Arc::new(ManualClock::default()),
            StoreConfig::default().sharded(4),
        )
        .unwrap(),
    );
    let server = McsServer::start_sharded(catalog, "127.0.0.1:0", 4).unwrap();
    let mut c = McsClient::connect(server.addr().to_string(), admin());
    c.set_durability(Some(DurabilityMode::Async));

    // Find two files that live on different shards so the echoed shard
    // id demonstrably varies with the routed name.
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..16 {
        c.create_file(&FileSpec::named(format!("epoch.{i:03}.dat"))).unwrap();
        assert!(c.last_epoch() > 0, "async write must echo its commit epoch");
        seen.insert(c.last_shard());
        // The echoed (shard, epoch) pair is the durability handle.
        let durable = c.wait_for_epoch_on(c.last_shard(), c.last_epoch()).unwrap();
        assert!(durable >= c.last_epoch());
    }
    assert!(seen.len() > 1, "16 names should spread over >1 of 4 shards: {seen:?}");

    // syncNow barriers every shard at once.
    c.set_durability(None);
    assert!(c.sync_now().is_ok());
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_shard_server_keeps_the_unsharded_wire_contract() {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let dir = tmpdir("single");
    let m = Arc::new(
        Mcs::open_durable(&dir, &a, IndexProfile::Paper2003, clock, StoreConfig::default())
            .unwrap(),
    );
    let server = McsServer::start(Arc::clone(&m), "127.0.0.1:0", 4).unwrap();
    let mut c = McsClient::connect(server.addr().to_string(), admin());

    let info = c.catalog_info().unwrap();
    assert_eq!(info.shards, 1);
    assert!(!info.cache_enabled);

    // No `mcs:shard` attribute on responses from a single-shard server.
    c.set_durability(Some(DurabilityMode::Async));
    c.create_file(&FileSpec::named("only.dat")).unwrap();
    assert!(c.last_epoch() > 0);
    assert_eq!(c.last_shard(), 0);
    assert!(c.wait_for_epoch(c.last_epoch()).unwrap() >= c.last_epoch());
    drop(server);
    drop(m);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn out_of_range_shard_is_a_client_fault() {
    let server = start_sharded_server(2);
    let mut soap = soapstack::SoapClient::new(server.addr().to_string(), "/mcs");
    let args = soapstack::Element::new("a")
        .child(mcs_net::wire::credential_el(&admin()))
        .child(mcs_net::wire::text_el("epoch", "1"))
        .child(mcs_net::wire::text_el("shard", "9"));
    match soap.call("waitForEpoch", args) {
        Err(soapstack::SoapError::Fault(f)) => {
            assert!(f.code.contains("BadArguments"), "fault code: {}", f.code);
        }
        other => panic!("expected a BadArguments fault, got {other:?}"),
    }
}
