//! End-to-end tests for the read cache over the wire (DESIGN.md §7.3):
//! the `cacheStats` op, the per-request `mcs:cache="bypass"` attribute,
//! and write-driven revalidation as seen by a SOAP client.

use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, Attribute, CacheConfig, Credential, FileSpec, IndexProfile,
    ManualClock, Mcs, ObjectRef,
};
use mcs_net::{McsClient, McsServer};
use relstore::Value;

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn start_cached_server() -> (McsServer, Arc<Mcs>) {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Arc::new(
        Mcs::with_options_cached(&a, IndexProfile::Paper2003, clock, CacheConfig::default())
            .unwrap(),
    );
    let server = McsServer::start(Arc::clone(&m), "127.0.0.1:0", 4).unwrap();
    (server, m)
}

fn eq(name: &str, v: impl Into<Value>) -> AttrPredicate {
    AttrPredicate { name: name.into(), op: mcs::AttrOp::Eq, value: v.into() }
}

#[test]
fn cache_stats_and_bypass_over_the_wire() {
    let (server, _m) = start_cached_server();
    let mut c = McsClient::connect(server.addr().to_string(), admin());

    c.define_attribute("run", AttrType::Int, "run number").unwrap();
    c.create_file(&FileSpec::named("a.dat").attr("run", 7i64)).unwrap();
    c.create_file(&FileSpec::named("b.dat").attr("run", 8i64)).unwrap();

    let preds = [eq("run", 7i64)];
    let first = c.query_by_attributes(&preds).unwrap();
    assert_eq!(first, vec![("a.dat".to_owned(), 1)]);
    let s0 = c.cache_stats().unwrap();
    assert!(s0.enabled);

    // Repeating the query is served from the cache.
    let again = c.query_by_attributes(&preds).unwrap();
    assert_eq!(again, first);
    let s1 = c.cache_stats().unwrap();
    assert!(s1.hits > s0.hits, "expected a cache hit: {s0:?} -> {s1:?}");

    // With the bypass attribute the cache is not consulted at all:
    // the result is identical and no counter moves.
    c.set_cache_bypass(true);
    let bypassed = c.query_by_attributes(&preds).unwrap();
    assert_eq!(bypassed, first);
    let s2 = c.cache_stats().unwrap();
    assert_eq!((s2.hits, s2.misses, s2.stale), (s1.hits, s1.misses, s1.stale));
    c.set_cache_bypass(false);

    // A write to the attribute table invalidates the cached answer; the
    // next query re-executes and sees the new state.
    c.set_attribute(
        &ObjectRef::File("b.dat".into()),
        &Attribute { name: "run".into(), value: 7i64.into() },
    )
    .unwrap();
    let after_write = c.query_by_attributes(&preds).unwrap();
    assert_eq!(after_write, vec![("a.dat".to_owned(), 1), ("b.dat".to_owned(), 1)]);
    let s3 = c.cache_stats().unwrap();
    assert!(s3.stale > s2.stale, "write must revalidate the entry: {s2:?} -> {s3:?}");
}

#[test]
fn cache_stats_reports_disabled_on_uncached_server() {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Arc::new(Mcs::with_options(&a, IndexProfile::Paper2003, clock).unwrap());
    let server = McsServer::start(Arc::clone(&m), "127.0.0.1:0", 4).unwrap();
    let mut c = McsClient::connect(server.addr().to_string(), admin());
    let s = c.cache_stats().unwrap();
    assert!(!s.enabled);
    assert_eq!((s.hits, s.misses, s.stale, s.evictions), (0, 0, 0, 0));
}

#[test]
fn unknown_cache_mode_is_a_client_fault() {
    let (server, _m) = start_cached_server();
    // Hand-rolled call: the typed client only sends "bypass".
    let mut soap = soapstack::SoapClient::new(server.addr().to_string(), "/mcs");
    let args = soapstack::Element::new("a")
        .attr("mcs:cache", "nope")
        .child(mcs_net::wire::credential_el(&admin()));
    match soap.call("ping", args) {
        Err(soapstack::SoapError::Fault(f)) => {
            assert!(f.code.contains("BadArguments"), "fault code: {}", f.code);
        }
        other => panic!("expected a BadArguments fault, got {other:?}"),
    }
}
