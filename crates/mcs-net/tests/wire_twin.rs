//! The cross-protocol twin suite: the binary wire protocol is only
//! allowed to exist because it is *provably* the same service as SOAP.
//! Two identical catalogs (same seed data, same deterministic clock)
//! are put behind the two front ends — a keep-alive SOAP server and a
//! binary-protocol server — and a seeded ~400-step mixed operation
//! stream is replayed through both typed clients in lockstep. After
//! every step the two results must be byte-identical (`{:?}` of the
//! full `Result`, so success payloads *and* errors), and the
//! epoch/shard echoes must match; at the end the audit trails, file
//! states and topology reports are swept and compared.
//!
//! The mix runs under the default barrier engine, the MVCC engine
//! (with mid-run vacuums) and a 4-shard catalog. Deliberately
//! hand-rolled xorshift PRNG — no test-only dependency may decide the
//! property. Reproduce a CI failure with
//! `MCS_WIRE_SEED=<seed> cargo test -p mcs-net --test wire_twin`.

use std::fmt::Debug;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mcs::{
    AttrOp, AttrPredicate, AttrType, Attribute, CacheConfig, Credential, FileSpec, FileUpdate,
    IndexProfile, ManualClock, ObjectRef, ShardedCatalog,
};
use mcs_net::client::DurabilityMode;
use mcs_net::{BinMcsClient, BinServer, McsClient, McsServer};
use relstore::Value;
use soapstack::TransportOpts;

/// xorshift64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn norm<T: Debug>(r: &mcs_net::client::Result<T>) -> String {
    format!("{r:?}")
}

fn file_name(i: u64) -> String {
    format!("f{i:02}.dat")
}

fn random_value(rng: &mut Rng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.below(6) as i64),
        AttrType::Str => Value::from(format!("s{}", rng.below(5)).as_str()),
        AttrType::Float => Value::Float(rng.below(5) as f64 / 2.0),
        _ => unreachable!("test uses int/str/float only"),
    }
}

fn random_pred(rng: &mut Rng) -> AttrPredicate {
    let (name, ty) = match rng.below(3) {
        0 => ("run", AttrType::Int),
        1 => ("site", AttrType::Str),
        _ => ("quality", AttrType::Float),
    };
    let op = match rng.below(6) {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Le,
        3 => AttrOp::Ge,
        4 => AttrOp::Lt,
        _ => AttrOp::Gt,
    };
    AttrPredicate { name: name.into(), op, value: random_value(rng, ty) }
}

fn random_spec(rng: &mut Rng) -> FileSpec {
    let mut spec = FileSpec::named(file_name(rng.below(40)));
    for _ in 0..rng.below(4) {
        let p = random_pred(rng);
        spec = spec.attr(p.name, p.value);
    }
    if rng.below(3) == 0 {
        spec = spec.in_collection(format!("c{}", rng.below(2)));
    }
    if rng.below(4) == 0 {
        spec.audit = true;
    }
    spec
}

struct Config {
    tag: &'static str,
    shards: usize,
    mvcc: bool,
    cache: bool,
}

const CONFIGS: [Config; 3] = [
    Config { tag: "default", shards: 1, mvcc: false, cache: true },
    Config { tag: "mvcc", shards: 1, mvcc: true, cache: false },
    Config { tag: "sharded4", shards: 4, mvcc: false, cache: false },
];

/// Build one of the two identical catalogs for a config.
fn build_catalog(cfg: &Config) -> Arc<ShardedCatalog> {
    Arc::new(
        ShardedCatalog::in_memory_opts(
            cfg.shards,
            &admin(),
            IndexProfile::Paper2003,
            Arc::new(ManualClock::default()),
            if cfg.cache { Some(CacheConfig::default()) } else { None },
            cfg.mvcc,
        )
        .unwrap(),
    )
}

/// Run the same operation against both clients and require
/// byte-identical outcomes and identical epoch/shard echoes. The op is
/// written once as `|c: &mut _| expr` and expanded twice, binding `c`
/// to each concrete client in turn — no closure, so each expansion
/// resolves methods on its own client type.
macro_rules! twin {
    ($cfg:expr, $seed:expr, $step:expr, $soap:expr, $bin:expr, $what:expr,
     |$c:ident: &mut _| $body:expr) => {{
        let a = {
            let $c = &mut *$soap;
            $body
        };
        let b = {
            let $c = &mut *$bin;
            $body
        };
        assert_eq!(
            norm(&a),
            norm(&b),
            "config {} seed {} step {}: SOAP and binary diverged on {}",
            $cfg.tag,
            $seed,
            $step,
            $what
        );
        assert_eq!(
            ($soap.last_epoch(), $soap.last_shard()),
            ($bin.last_epoch(), $bin.last_shard()),
            "config {} seed {} step {}: epoch/shard echo diverged on {}",
            $cfg.tag,
            $seed,
            $step,
            $what
        );
        a
    }};
}

fn check_case(cfg: &Config, seed: u64) {
    eprintln!("wire_twin: config = {}, seed = {seed}", cfg.tag);
    let cat_soap = build_catalog(cfg);
    let cat_bin = build_catalog(cfg);
    let soap_server = McsServer::start_sharded(Arc::clone(&cat_soap), "127.0.0.1:0", 4).unwrap();
    let bin_server = BinServer::start_sharded(Arc::clone(&cat_bin), "127.0.0.1:0", 4).unwrap();
    let opts = TransportOpts { keep_alive: true, simulated_rtt: Duration::ZERO };
    let mut soap = McsClient::with_opts(soap_server.addr().to_string(), admin(), opts);
    let mut bin = BinMcsClient::connect(bin_server.addr().to_string(), admin());

    // Identical seed schema through both front ends.
    for (name, ty) in [("run", AttrType::Int), ("site", AttrType::Str), ("quality", AttrType::Float)]
    {
        soap.define_attribute(name, ty, "").unwrap();
        bin.define_attribute(name, ty, "").unwrap();
    }
    for c in ["c0", "c1"] {
        soap.create_collection(c, None, "").unwrap();
        bin.create_collection(c, None, "").unwrap();
    }

    let mut rng = Rng::new(seed);
    for step in 0..400 {
        match rng.below(20) {
            // 0–3: create one file (AlreadyExists churn included).
            0..=3 => {
                let spec = random_spec(&mut rng);
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "createFile", |c: &mut _| c
                    .create_file(&spec));
            }
            // 4–5: the bulk mutation, 2–5 specs per batch. Duplicate
            // names inside a batch exercise the all-or-nothing abort.
            4..=5 => {
                let n = 2 + rng.below(4);
                let specs: Vec<FileSpec> = (0..n).map(|_| random_spec(&mut rng)).collect();
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "createFiles", |c: &mut _| c
                    .create_files(&specs));
            }
            // 6–8: simple queries.
            6..=8 => {
                let name = file_name(rng.below(40));
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "getFile", |c: &mut _| c
                    .get_file(&name));
            }
            9 => {
                let name = file_name(rng.below(40));
                let version = rng.below(3) as i64;
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "getFileVersion", |c: &mut _| c
                    .get_file_version(&name, version));
            }
            // 10: metadata update.
            10 => {
                let name = file_name(rng.below(40));
                let upd = FileUpdate { data_type: Some(format!("t{}", rng.below(3))), ..FileUpdate::default() };
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "updateFile", |c: &mut _| c
                    .update_file(&name, &upd));
            }
            // 11: attribute churn.
            11 => {
                let obj = ObjectRef::File(file_name(rng.below(40)));
                if rng.below(3) == 0 {
                    let name = ["run", "site", "quality"][rng.below(3) as usize].to_string();
                    let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "removeAttribute", |c: &mut _| c
                        .remove_attribute(&obj, &name));
                } else {
                    let p = random_pred(&mut rng);
                    let attr = Attribute { name: p.name, value: p.value };
                    let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "setAttribute", |c: &mut _| c
                        .set_attribute(&obj, &attr));
                }
            }
            // 12: deletes and invalidations.
            12 => {
                let name = file_name(rng.below(40));
                if rng.below(2) == 0 {
                    let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "deleteFile", |c: &mut _| c
                        .delete_file(&name));
                } else {
                    let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "invalidateFile", |c: &mut _| c
                        .invalidate_file(&name));
                }
            }
            // 13–14: discovery, planned and explained.
            13..=14 => {
                let n = 1 + rng.below(3);
                let preds: Vec<AttrPredicate> = (0..n).map(|_| random_pred(&mut rng)).collect();
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "queryByAttributes", |c: &mut _| c
                    .query_by_attributes(&preds));
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "explainQuery", |c: &mut _| c
                    .explain_query(&preds));
            }
            // 15: collection membership.
            15 => {
                let name = file_name(rng.below(40));
                let coll = if rng.below(3) == 0 {
                    None
                } else {
                    Some(format!("c{}", rng.below(2)))
                };
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "assignCollection", |c: &mut _| c
                    .assign_collection(&name, coll.as_deref()));
            }
            16 => {
                let coll = format!("c{}", rng.below(2));
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "listCollection", |c: &mut _| c
                    .list_collection(&coll));
            }
            // 17: annotations and audit toggles.
            17 => {
                let obj = ObjectRef::File(file_name(rng.below(40)));
                match rng.below(3) {
                    0 => {
                        let text = format!("note {}", rng.below(100));
                        let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "annotate", |c: &mut _| c
                            .annotate(&obj, &text));
                    }
                    1 => {
                        let enabled = rng.below(2) == 0;
                        let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "setAudit", |c: &mut _| c
                            .set_audit(&obj, enabled));
                    }
                    _ => {
                        let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "getAnnotations", |c: &mut _| c
                            .get_annotations(&obj));
                    }
                }
            }
            // 18: per-request headers — durability override and cache
            // bypass must behave identically as SOAP attributes and as
            // binary flag bits. A sync_now barrier afterwards makes the
            // durable watermark deterministic again before comparing.
            18 => {
                let mode = match rng.below(3) {
                    0 => DurabilityMode::Always,
                    1 => DurabilityMode::Group,
                    _ => DurabilityMode::Async,
                };
                soap.set_durability(Some(mode));
                bin.set_durability(Some(mode));
                let spec = random_spec(&mut rng);
                let r = twin!(cfg, seed, step, &mut soap, &mut bin, "createFile@durability", |c: &mut _| c
                    .create_file(&spec));
                if r.is_ok() && soap.last_epoch() > 0 {
                    let (epoch, shard) = (soap.last_epoch(), soap.last_shard());
                    let ws = soap.wait_for_epoch_on(shard, epoch).unwrap();
                    let wb = bin.wait_for_epoch_on(shard, epoch).unwrap();
                    assert!(ws >= epoch && wb >= epoch, "durable watermark below epoch");
                }
                soap.set_durability(None);
                bin.set_durability(None);
                let bs = soap.sync_now().unwrap();
                let bb = bin.sync_now().unwrap();
                assert_eq!(bs, bb, "config {} seed {seed} step {step}: sync_now barrier", cfg.tag);
            }
            // 19: cache bypass on a read (a no-op flag on the uncached
            // configs — it must still be accepted identically).
            _ => {
                soap.set_cache_bypass(true);
                bin.set_cache_bypass(true);
                let name = file_name(rng.below(40));
                let _ = twin!(cfg, seed, step, &mut soap, &mut bin, "getFile@bypass", |c: &mut _| c
                    .get_file(&name));
                soap.set_cache_bypass(false);
                bin.set_cache_bypass(false);
            }
        }
        // MVCC reclamation mid-run, identically on both catalogs.
        if cfg.mvcc && step % 97 == 0 {
            for k in 0..cat_soap.shards() {
                cat_soap.shard(k).database().vacuum();
                cat_bin.shard(k).database().vacuum();
            }
        }
    }

    // Final sweep: every file's state, history and audit trail, plus
    // the topology report, must agree byte for byte.
    for i in 0..40 {
        let name = file_name(i);
        let obj = ObjectRef::File(name.clone());
        let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep getFile", |c: &mut _| c
            .get_file(&name));
        let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep getFileVersions", |c: &mut _| c
            .get_file_versions(&name));
        let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep getAttributes", |c: &mut _| c
            .get_attributes(&obj));
        let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep getAuditTrail", |c: &mut _| c
            .get_audit_trail(&obj));
        let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep getAnnotations", |c: &mut _| c
            .get_annotations(&obj));
    }
    let _ = twin!(cfg, seed, 400, &mut soap, &mut bin, "sweep catalogInfo", |c: &mut _| c
        .catalog_info());

    // Both persistent clients must have held exactly one connection for
    // the whole run — the twin suite doubles as the keep-alive witness
    // for the binary protocol.
    assert_eq!(
        soap_server.stats().connections.load(Ordering::Relaxed),
        1,
        "config {}: SOAP keep-alive client must reuse one connection",
        cfg.tag
    );
    assert_eq!(
        bin_server.stats().connections.load(Ordering::Relaxed),
        1,
        "config {}: binary client must reuse one connection",
        cfg.tag
    );
    // ... and must have issued exactly the same number of requests.
    assert_eq!(
        soap_server.stats().requests.load(Ordering::Relaxed),
        bin_server.stats().requests.load(Ordering::Relaxed),
        "config {}: request counts diverged",
        cfg.tag
    );
}

/// Random interleavings under fixed seeds (or one from `MCS_WIRE_SEED`,
/// for replaying a CI failure) across all three configurations.
#[test]
fn binary_protocol_equals_soap() {
    if let Some(seed) = std::env::var("MCS_WIRE_SEED").ok().and_then(|s| s.parse::<u64>().ok()) {
        for cfg in &CONFIGS {
            check_case(cfg, seed);
        }
        return;
    }
    for cfg in &CONFIGS {
        for seed in [42, 0xC0FFEE] {
            check_case(cfg, seed);
        }
    }
}
