//! Robustness harness for the binary frame decoder: a hostile or broken
//! peer — bad magic, truncated frames, oversized length prefixes,
//! garbage opcodes, malformed payloads, byte-at-a-time writes, random
//! frame bodies — must never panic the server, never hang a worker, and
//! must be answered with either a clean connection close or a
//! structured error frame on an intact connection. After every abuse
//! the server must still serve a well-behaved client.
//!
//! Seeded like the twin suite: `MCS_WIRE_SEED=<seed> cargo test -p
//! mcs-net --test bin_fuzz` replays a failing randomized round.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mcs::{Credential, FileSpec, IndexProfile, ManualClock, ShardedCatalog};
use mcs_net::binproto::frame::{
    self, read_frame, read_preamble, write_frame, write_preamble, Reader, MAGIC, STATUS_FAULT,
    VERSION,
};
use mcs_net::binproto::BinServer;
use mcs_net::BinMcsClient;

/// xorshift64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn seed() -> u64 {
    std::env::var("MCS_WIRE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF0_5EED)
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn start_server() -> BinServer {
    let catalog = Arc::new(
        ShardedCatalog::in_memory_opts(
            1,
            &admin(),
            IndexProfile::Paper2003,
            Arc::new(ManualClock::default()),
            None,
            false,
        )
        .unwrap(),
    );
    BinServer::start_sharded(catalog, "127.0.0.1:0", 2).unwrap()
}

/// Raw socket with the preamble handshake already done.
fn handshaken(server: &BinServer) -> TcpStream {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_preamble(&mut s).unwrap();
    read_preamble(&mut s).unwrap();
    s
}

/// The server must still serve a well-behaved client — the proof that
/// an abusive connection damaged nothing but itself.
fn assert_server_alive(server: &BinServer) {
    let mut c = BinMcsClient::connect(server.addr().to_string(), admin());
    c.ping().expect("server must survive hostile input");
}

/// Drain one response frame and assert it is a fault frame; returns the
/// fault code.
fn expect_fault_frame(s: &mut TcpStream) -> String {
    let body = read_frame(s).unwrap().expect("expected an error frame, got a close");
    let mut r = Reader::new(&body);
    let _tag = r.u32().unwrap();
    assert_eq!(r.u8().unwrap(), STATUS_FAULT, "expected a fault frame");
    r.str().unwrap()
}

/// Assert the peer closed the connection (EOF) instead of hanging.
fn expect_close(s: &mut TcpStream) {
    let mut buf = [0u8; 64];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue, // drain whatever was in flight
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
}

/// A well-formed ping request frame body for tag `tag`: header + the
/// admin credential, no arguments.
fn ping_body(tag: u32) -> Vec<u8> {
    let mut b = Vec::new();
    frame::put_u32(&mut b, tag);
    frame::put_u8(&mut b, 0x01); // Op::Ping
    frame::put_u8(&mut b, 0); // no flags
    frame::put_credential(&mut b, &admin());
    b
}

fn expect_ok_ping(s: &mut TcpStream, tag: u32) {
    let body = read_frame(s).unwrap().expect("connection must still be serving");
    let mut r = Reader::new(&body);
    assert_eq!(r.u32().unwrap(), tag);
    assert_eq!(r.u8().unwrap(), frame::STATUS_OK);
}

#[test]
fn bad_preamble_closes_the_connection() {
    let server = start_server();
    // Wrong magic entirely.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_close(&mut s);
    // Right magic, wrong version byte.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(&MAGIC).unwrap();
    s.write_all(&[VERSION + 1]).unwrap();
    expect_close(&mut s);
    assert_server_alive(&server);
}

#[test]
fn oversized_length_prefix_gets_error_frame_then_close() {
    let server = start_server();
    for len in [u32::MAX, frame::MAX_FRAME + 1, 0, frame::MIN_FRAME - 1] {
        let mut s = handshaken(&server);
        s.write_all(&len.to_le_bytes()).unwrap();
        // Follow with some bytes so a naive server would try to parse.
        s.write_all(&[0xAB; 16]).unwrap();
        let code = expect_fault_frame(&mut s);
        assert_eq!(code, "soap:Client.BadArguments", "length {len}");
        expect_close(&mut s);
        assert_server_alive(&server);
    }
}

#[test]
fn truncated_frame_closes_without_hanging() {
    let server = start_server();
    // Announce 100 bytes, send 10, close.
    let mut s = handshaken(&server);
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0x42; 10]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    expect_close(&mut s);
    // EOF exactly on the length prefix boundary is a clean close.
    let mut s = handshaken(&server);
    s.write_all(&100u32.to_le_bytes()[..2]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    expect_close(&mut s);
    assert_server_alive(&server);
}

#[test]
fn garbage_opcode_gets_fault_and_connection_survives() {
    let server = start_server();
    let mut s = handshaken(&server);
    let mut b = Vec::new();
    frame::put_u32(&mut b, 7);
    frame::put_u8(&mut b, 0xEE); // unassigned opcode
    frame::put_u8(&mut b, 0);
    frame::put_credential(&mut b, &admin());
    write_frame(&mut s, &b).unwrap();
    let code = expect_fault_frame(&mut s);
    assert_eq!(code, "soap:Client");
    // Same connection keeps serving.
    write_frame(&mut s, &ping_body(8)).unwrap();
    expect_ok_ping(&mut s, 8);
}

#[test]
fn malformed_payload_gets_fault_and_connection_survives() {
    let server = start_server();
    let mut s = handshaken(&server);

    // getFile whose string length points past the end of the frame.
    let mut b = Vec::new();
    frame::put_u32(&mut b, 1);
    frame::put_u8(&mut b, 0x12); // Op::GetFile
    frame::put_u8(&mut b, 0);
    frame::put_credential(&mut b, &admin());
    frame::put_u32(&mut b, 10_000); // claimed string length
    b.extend_from_slice(b"short");
    write_frame(&mut s, &b).unwrap();
    assert_eq!(expect_fault_frame(&mut s), "soap:Client.BadArguments");

    // Trailing bytes after a well-formed request must be rejected, not
    // silently ignored — they would mean client/server shape drift.
    let mut b = ping_body(2);
    b.push(0xFF);
    write_frame(&mut s, &b).unwrap();
    assert_eq!(expect_fault_frame(&mut s), "soap:Client.BadArguments");

    // Unknown flag bits are a decode error too.
    let mut b = Vec::new();
    frame::put_u32(&mut b, 3);
    frame::put_u8(&mut b, 0x01);
    frame::put_u8(&mut b, 0b1000_0000);
    frame::put_credential(&mut b, &admin());
    write_frame(&mut s, &b).unwrap();
    assert_eq!(expect_fault_frame(&mut s), "soap:Client.BadArguments");

    // Bad durability byte.
    let mut b = Vec::new();
    frame::put_u32(&mut b, 4);
    frame::put_u8(&mut b, 0x01);
    frame::put_u8(&mut b, frame::FLAG_DURABILITY);
    frame::put_u8(&mut b, 9);
    frame::put_credential(&mut b, &admin());
    write_frame(&mut s, &b).unwrap();
    assert_eq!(expect_fault_frame(&mut s), "soap:Client.BadArguments");

    // The connection is intact after four consecutive faults.
    write_frame(&mut s, &ping_body(5)).unwrap();
    expect_ok_ping(&mut s, 5);
}

#[test]
fn byte_at_a_time_writes_still_parse() {
    // A slow peer dribbling one byte per write (worst-case interleaved
    // partial writes) must be served exactly like a fast one.
    let server = start_server();
    let mut s = handshaken(&server);
    let body = ping_body(42);
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();
    for byte in framed {
        s.write_all(&[byte]).unwrap();
        s.flush().unwrap();
    }
    expect_ok_ping(&mut s, 42);
}

#[test]
fn random_frame_bodies_never_panic_or_hang_the_server() {
    let server = start_server();
    let mut rng = Rng::new(seed());
    for round in 0..200 {
        let mut s = handshaken(&server);
        let n = rng.below(64) as usize + 1;
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(rng.next() as u8);
        }
        // Bias half the rounds toward "almost valid": a correct header
        // with random argument bytes digs deeper into the decoders.
        if rng.below(2) == 0 {
            let mut b = Vec::new();
            frame::put_u32(&mut b, round);
            frame::put_u8(&mut b, [0x01, 0x10, 0x12, 0x44, 0x41][rng.below(5) as usize]);
            frame::put_u8(&mut b, 0);
            frame::put_credential(&mut b, &admin());
            b.extend_from_slice(&body);
            body = b;
        }
        write_frame(&mut s, &body).unwrap();
        // The response must come promptly and be either a fault frame, a
        // (fluke) success, or a clean close — anything but a hang or a
        // dead server.
        match read_frame(&mut s) {
            Ok(Some(resp)) => {
                let mut r = Reader::new(&resp);
                r.u32().unwrap();
                let status = r.u8().unwrap();
                assert!(
                    status == frame::STATUS_OK || status == STATUS_FAULT,
                    "round {round}: unknown status {status}"
                );
            }
            Ok(None) => {}
            Err(e) => panic!("round {round}: expected frame or close, got {e}"),
        }
    }
    assert_server_alive(&server);
}

#[test]
fn random_bytes_through_record_decoders_never_panic() {
    // Codec-level fuzz, no sockets: every record decoder over random
    // buffers must return Ok or Err, never panic, and never read past
    // the buffer (the Reader is bounds-checked; a panic here would be an
    // index bug in a decoder).
    let mut rng = Rng::new(seed() ^ 0xDEC0DE);
    for _ in 0..2000 {
        let n = rng.below(48) as usize;
        let mut buf = Vec::with_capacity(n);
        for _ in 0..n {
            buf.push(rng.next() as u8);
        }
        let _ = frame::get_filespec(&mut Reader::new(&buf));
        let _ = frame::get_fileupdate(&mut Reader::new(&buf));
        let _ = frame::get_file(&mut Reader::new(&buf));
        let _ = frame::get_credential(&mut Reader::new(&buf));
        let _ = frame::get_objref(&mut Reader::new(&buf));
        let _ = frame::get_predicate(&mut Reader::new(&buf));
        let _ = frame::get_attribute(&mut Reader::new(&buf));
        let _ = frame::get_value(&mut Reader::new(&buf));
        let _ = frame::get_collection(&mut Reader::new(&buf));
        let _ = frame::get_view(&mut Reader::new(&buf));
        let _ = frame::get_user(&mut Reader::new(&buf));
        let _ = frame::get_extcat(&mut Reader::new(&buf));
        let _ = frame::get_audit(&mut Reader::new(&buf));
        let _ = frame::get_annotation(&mut Reader::new(&buf));
        let _ = frame::get_history(&mut Reader::new(&buf));
        let _ = frame::get_hits(&mut Reader::new(&buf));
        let _ = frame::get_strs(&mut Reader::new(&buf));
        let _ = frame::get_u64s(&mut Reader::new(&buf));
    }
    // And every *valid* encoding must survive arbitrary truncation.
    let spec = FileSpec::named("fuzz.dat").attr("run", 7i64).in_collection("c0");
    let mut enc = Vec::new();
    frame::put_filespec(&mut enc, &spec);
    for cut in 0..enc.len() {
        assert!(
            frame::get_filespec(&mut Reader::new(&enc[..cut])).is_err(),
            "truncation at {cut} must error, not succeed"
        );
    }
}
