//! End-to-end tests for the per-request durability header and the epoch
//! ack protocol (DESIGN.md §7.2): a client asks for `async` commits on a
//! durable server, reads the echoed `mcs:epoch`, and barriers with
//! `waitForEpoch` / `syncNow` over real loopback SOAP.

use std::sync::Arc;

use mcs::{Credential, FileSpec, IndexProfile, ManualClock, Mcs, StoreConfig};
use mcs_net::{DurabilityMode, McsClient, McsServer};

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-net-async-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_durable_server(dir: &std::path::Path) -> (McsServer, Arc<Mcs>) {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Arc::new(
        Mcs::open_durable(dir, &a, IndexProfile::Paper2003, clock, StoreConfig::default())
            .unwrap(),
    );
    let server = McsServer::start(Arc::clone(&m), "127.0.0.1:0", 4).unwrap();
    (server, m)
}

#[test]
fn async_header_epoch_echo_and_barriers() {
    let dir = tmpdir("echo");
    {
        let (server, m) = start_durable_server(&dir);
        let mut c = McsClient::connect(server.addr().to_string(), admin());

        // Writes without the header still echo the epoch they logged.
        c.create_file(&FileSpec::named("always.dat")).unwrap();
        let e_always = c.last_epoch();
        assert!(e_always > 0, "durable write must echo an epoch");

        // Async header: ack carries a fresh (larger) epoch, and the
        // server-side watermark may lag it until we barrier.
        c.set_durability(Some(DurabilityMode::Async));
        c.create_file(&FileSpec::named("weak-1.dat")).unwrap();
        let e1 = c.last_epoch();
        c.create_file(&FileSpec::named("weak-2.dat")).unwrap();
        let e2 = c.last_epoch();
        assert!(e1 > e_always && e2 > e1, "epochs must increase: {e_always}, {e1}, {e2}");

        // waitForEpoch turns the weak ack into a durable one.
        let watermark = c.wait_for_epoch(e2).unwrap();
        assert!(watermark >= e2);
        assert!(m.durable_epoch() >= e2);

        // syncNow is the bulk-load final barrier.
        c.create_file(&FileSpec::named("weak-3.dat")).unwrap();
        let e3 = c.last_epoch();
        let covered = c.sync_now().unwrap();
        assert!(covered >= e3);
        assert!(m.durable_epoch() >= e3);

        // Reads don't log, so they echo no epoch.
        c.get_file("weak-3.dat").unwrap();
        assert_eq!(c.last_epoch(), 0);

        // waiting for a never-allocated epoch must fail, not hang
        let far = m.commit_epoch() + 1_000;
        assert!(c.wait_for_epoch(far).is_err());
    } // server drops; everything barriered must be on disk

    let (server, _m) = start_durable_server(&dir);
    let mut c = McsClient::connect(server.addr().to_string(), admin());
    for name in ["always.dat", "weak-1.dat", "weak-2.dat", "weak-3.dat"] {
        c.get_file(name)
            .unwrap_or_else(|e| panic!("{name} lost after restart despite barrier: {e}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_durability_mode_is_a_client_fault() {
    let dir = tmpdir("badmode");
    let (server, _m) = start_durable_server(&dir);
    // Hand-rolled call: the typed client can't send an invalid mode.
    let mut soap = soapstack::SoapClient::new(server.addr().to_string(), "/mcs");
    let args = soapstack::Element::new("a")
        .attr("mcs:durability", "bogus")
        .child(mcs_net::wire::credential_el(&admin()));
    match soap.call("ping", args) {
        Err(soapstack::SoapError::Fault(f)) => {
            assert!(f.code.contains("BadArguments"), "fault code: {}", f.code);
        }
        other => panic!("expected a BadArguments fault, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
