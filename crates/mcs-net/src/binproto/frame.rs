//! Binary frame codec: length-prefixed frames and the compact record
//! encoding both sides of the protocol share (DESIGN.md §7.7).
//!
//! Everything is little-endian. Strings are `u32` length + UTF-8 bytes;
//! options are a presence byte; sequences are a `u32` count. The decoder
//! is a bounds-checked cursor: every length read is validated against
//! the bytes actually remaining **before** any allocation, so a hostile
//! length prefix cannot make the server allocate or block — it just
//! produces a [`FrameError`] (fuzz-tested in `bin_fuzz.rs`).

use std::io::{self, Read, Write};

use mcs::{
    Annotation, AttrOp, AttrPredicate, AttrType, Attribute, AuditRecord, Collection,
    CollectionContents, Credential, ExternalCatalog, FileSpec, FileUpdate, HistoryRecord,
    LogicalFile, ObjectRef, ObjectType, Permission, UserRecord, View, ViewContents,
};
use relstore::{Date, DateTime, Time, Value};

/// Connection preamble: magic + protocol version, echoed by the server.
pub const MAGIC: [u8; 4] = *b"MCSB";
/// Protocol version byte sent (and required) in the preamble.
pub const VERSION: u8 = 1;
/// Hard cap on one frame's length prefix; anything larger is rejected
/// before allocation (the binary twin of soapstack's `MAX_BODY_BYTES`).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Smallest meaningful frame body: a request needs tag(4)+op(1)+flags(1),
/// a response tag(4)+status(1); 5 is the shared floor.
pub const MIN_FRAME: u32 = 5;

/// Request-flags bit: a durability-override byte follows the flags.
pub const FLAG_DURABILITY: u8 = 0b0000_0001;
/// Request-flags bit: run the call with the read cache bypassed.
pub const FLAG_CACHE_BYPASS: u8 = 0b0000_0010;

/// Response status byte: the payload is the op's result.
pub const STATUS_OK: u8 = 0;
/// Response status byte: the payload is `str code` + `str message` — the
/// same structured fault the SOAP front end would have sent.
pub const STATUS_FAULT: u8 = 1;

/// A malformed frame body (bad length, bad tag byte, truncated field…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

fn bad(msg: impl Into<String>) -> FrameError {
    FrameError(msg.into())
}

/// Decode result alias.
pub type Result<T> = std::result::Result<T, FrameError>;

// ---------- frame transport ----------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME as usize);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one length-prefixed frame. `Ok(None)` is a clean close (EOF on a
/// frame boundary); EOF mid-frame or a length prefix outside
/// `[MIN_FRAME, MAX_FRAME]` is an error — the caller must drop the
/// connection, because the stream offset is no longer trustworthy.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len4 = [0u8; 4];
    // Read the first prefix byte separately so EOF *between* frames is a
    // clean close while EOF *inside* a frame stays an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    len4[0] = first[0];
    r.read_exact(&mut len4[1..])?;
    let len = u32::from_le_bytes(len4);
    if !(MIN_FRAME..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range [{MIN_FRAME}, {MAX_FRAME}]"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Send the `MCSB` + version preamble.
pub fn write_preamble(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION])
}

/// Read and validate the peer's preamble.
pub fn read_preamble(r: &mut impl Read) -> io::Result<()> {
    let mut buf = [0u8; 5];
    r.read_exact(&mut buf)?;
    if buf[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad protocol magic"));
    }
    if buf[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol version {}", buf[4]),
        ));
    }
    Ok(())
}

// ---------- encoder primitives ----------

/// Append a `u8`.
pub fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i32`.
pub fn put_i32(b: &mut Vec<u8>, v: i32) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(b: &mut Vec<u8>, v: i64) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a bool as one byte.
pub fn put_bool(b: &mut Vec<u8>, v: bool) {
    b.push(v as u8);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

/// Append an optional string (presence byte + string).
pub fn put_opt_str(b: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => put_u8(b, 0),
        Some(s) => {
            put_u8(b, 1);
            put_str(b, s);
        }
    }
}

/// Append an optional `i64`.
pub fn put_opt_i64(b: &mut Vec<u8>, v: Option<i64>) {
    match v {
        None => put_u8(b, 0),
        Some(v) => {
            put_u8(b, 1);
            put_i64(b, v);
        }
    }
}

/// Append a datetime as seconds since the Unix epoch.
pub fn put_datetime(b: &mut Vec<u8>, dt: &DateTime) {
    put_i64(b, dt.seconds_from_epoch());
}

/// Append an optional datetime.
pub fn put_opt_datetime(b: &mut Vec<u8>, dt: &Option<DateTime>) {
    match dt {
        None => put_u8(b, 0),
        Some(dt) => {
            put_u8(b, 1);
            put_datetime(b, dt);
        }
    }
}

// ---------- bounds-checked decoder ----------

/// A bounds-checked cursor over one frame body. Every accessor validates
/// the remaining length first; none panics or over-allocates on hostile
/// input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole frame has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!("truncated: needed {n} bytes, have {}", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bad bool byte {other}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string. The length is validated
    /// against the remaining bytes before anything is copied.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(bad(format!("string length {len} exceeds {} remaining", self.remaining())));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    /// Read an optional string.
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(bad(format!("bad option byte {other}"))),
        }
    }

    /// Read an optional `i64`.
    pub fn opt_i64(&mut self) -> Result<Option<i64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            other => Err(bad(format!("bad option byte {other}"))),
        }
    }

    /// Read a datetime (seconds since the Unix epoch).
    pub fn datetime(&mut self) -> Result<DateTime> {
        Ok(DateTime::from_seconds_from_epoch(self.i64()?))
    }

    /// Read an optional datetime.
    pub fn opt_datetime(&mut self) -> Result<Option<DateTime>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.datetime()?)),
            other => Err(bad(format!("bad option byte {other}"))),
        }
    }

    /// Read a sequence count, validated against the remaining bytes (a
    /// count can never exceed one byte per element).
    pub fn seq_len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(bad(format!("sequence count {n} exceeds {} remaining bytes", self.remaining())));
        }
        Ok(n)
    }

    /// Consume and return everything left in the frame.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Require the frame to be fully consumed (trailing garbage is an
    /// encoding bug or an attack, not padding).
    pub fn finish(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes", self.remaining())))
        }
    }
}

// ---------- typed values ----------

/// Append a typed [`Value`] (one tag byte + payload).
pub fn put_value(b: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(b, 0),
        Value::Int(i) => {
            put_u8(b, 1);
            put_i64(b, *i);
        }
        Value::Float(x) => {
            put_u8(b, 2);
            put_u64(b, x.to_bits());
        }
        Value::Str(s) => {
            put_u8(b, 3);
            put_str(b, s);
        }
        Value::Bool(x) => {
            put_u8(b, 4);
            put_bool(b, *x);
        }
        Value::Date(d) => {
            put_u8(b, 5);
            put_i32(b, d.year);
            put_u8(b, d.month);
            put_u8(b, d.day);
        }
        Value::Time(t) => {
            put_u8(b, 6);
            put_u8(b, t.hour);
            put_u8(b, t.minute);
            put_u8(b, t.second);
        }
        Value::DateTime(dt) => {
            put_u8(b, 7);
            put_datetime(b, dt);
        }
    }
}

/// Decode a typed [`Value`].
pub fn get_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(f64::from_bits(r.u64()?)),
        3 => Value::Str(r.str()?.into()),
        4 => Value::Bool(r.bool()?),
        5 => {
            let (y, m, d) = (r.i32()?, r.u8()?, r.u8()?);
            Value::Date(Date::new(y, m, d).map_err(|e| bad(e.to_string()))?)
        }
        6 => {
            let (h, m, s) = (r.u8()?, r.u8()?, r.u8()?);
            Value::Time(Time::new(h, m, s).map_err(|e| bad(e.to_string()))?)
        }
        7 => Value::DateTime(r.datetime()?),
        other => return Err(bad(format!("unknown value tag {other}"))),
    })
}

// ---------- enums ----------

/// Encode an [`AttrType`] as one byte.
pub fn put_attr_type(b: &mut Vec<u8>, t: AttrType) {
    put_u8(
        b,
        match t {
            AttrType::Str => 0,
            AttrType::Int => 1,
            AttrType::Float => 2,
            AttrType::Date => 3,
            AttrType::Time => 4,
            AttrType::DateTime => 5,
        },
    );
}

/// Decode an [`AttrType`].
pub fn get_attr_type(r: &mut Reader) -> Result<AttrType> {
    Ok(match r.u8()? {
        0 => AttrType::Str,
        1 => AttrType::Int,
        2 => AttrType::Float,
        3 => AttrType::Date,
        4 => AttrType::Time,
        5 => AttrType::DateTime,
        other => return Err(bad(format!("unknown attr type {other}"))),
    })
}

/// Encode a [`Permission`] as one byte.
pub fn put_permission(b: &mut Vec<u8>, p: Permission) {
    put_u8(
        b,
        match p {
            Permission::Read => 0,
            Permission::Write => 1,
            Permission::Delete => 2,
            Permission::Admin => 3,
        },
    );
}

/// Decode a [`Permission`].
pub fn get_permission(r: &mut Reader) -> Result<Permission> {
    Ok(match r.u8()? {
        0 => Permission::Read,
        1 => Permission::Write,
        2 => Permission::Delete,
        3 => Permission::Admin,
        other => return Err(bad(format!("unknown permission {other}"))),
    })
}

/// Encode an [`ObjectType`] as one byte.
pub fn put_object_type(b: &mut Vec<u8>, t: ObjectType) {
    put_u8(
        b,
        match t {
            ObjectType::File => 0,
            ObjectType::Collection => 1,
            ObjectType::View => 2,
            ObjectType::Service => 3,
        },
    );
}

/// Decode an [`ObjectType`].
pub fn get_object_type(r: &mut Reader) -> Result<ObjectType> {
    Ok(match r.u8()? {
        0 => ObjectType::File,
        1 => ObjectType::Collection,
        2 => ObjectType::View,
        3 => ObjectType::Service,
        other => return Err(bad(format!("unknown object type {other}"))),
    })
}

/// Encode an [`AttrOp`] as one byte.
pub fn put_attr_op(b: &mut Vec<u8>, op: AttrOp) {
    put_u8(
        b,
        match op {
            AttrOp::Eq => 0,
            AttrOp::Ne => 1,
            AttrOp::Lt => 2,
            AttrOp::Le => 3,
            AttrOp::Gt => 4,
            AttrOp::Ge => 5,
            AttrOp::Like => 6,
        },
    );
}

/// Decode an [`AttrOp`].
pub fn get_attr_op(r: &mut Reader) -> Result<AttrOp> {
    Ok(match r.u8()? {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Lt,
        3 => AttrOp::Le,
        4 => AttrOp::Gt,
        5 => AttrOp::Ge,
        6 => AttrOp::Like,
        other => return Err(bad(format!("unknown attr op {other}"))),
    })
}

// ---------- records ----------

/// Encode a [`Credential`].
pub fn put_credential(b: &mut Vec<u8>, c: &Credential) {
    put_str(b, &c.dn);
    put_u32(b, c.groups.len() as u32);
    for g in &c.groups {
        put_str(b, g);
    }
}

/// Decode a [`Credential`].
pub fn get_credential(r: &mut Reader) -> Result<Credential> {
    let dn = r.str()?;
    let n = r.seq_len()?;
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        groups.push(r.str()?);
    }
    Ok(Credential { dn, groups })
}

/// Encode an [`ObjectRef`].
pub fn put_objref(b: &mut Vec<u8>, o: &ObjectRef) {
    match o {
        ObjectRef::File(n) => {
            put_u8(b, 0);
            put_str(b, n);
        }
        ObjectRef::FileVersion(n, v) => {
            put_u8(b, 1);
            put_str(b, n);
            put_i64(b, *v);
        }
        ObjectRef::Collection(n) => {
            put_u8(b, 2);
            put_str(b, n);
        }
        ObjectRef::View(n) => {
            put_u8(b, 3);
            put_str(b, n);
        }
        ObjectRef::Service => put_u8(b, 4),
    }
}

/// Decode an [`ObjectRef`].
pub fn get_objref(r: &mut Reader) -> Result<ObjectRef> {
    Ok(match r.u8()? {
        0 => ObjectRef::File(r.str()?),
        1 => {
            let n = r.str()?;
            ObjectRef::FileVersion(n, r.i64()?)
        }
        2 => ObjectRef::Collection(r.str()?),
        3 => ObjectRef::View(r.str()?),
        4 => ObjectRef::Service,
        other => return Err(bad(format!("unknown object kind {other}"))),
    })
}

/// Encode an [`Attribute`].
pub fn put_attribute(b: &mut Vec<u8>, a: &Attribute) {
    put_str(b, &a.name);
    put_value(b, &a.value);
}

/// Decode an [`Attribute`].
pub fn get_attribute(r: &mut Reader) -> Result<Attribute> {
    Ok(Attribute { name: r.str()?, value: get_value(r)? })
}

/// Encode an [`AttrPredicate`].
pub fn put_predicate(b: &mut Vec<u8>, p: &AttrPredicate) {
    put_str(b, &p.name);
    put_attr_op(b, p.op);
    put_value(b, &p.value);
}

/// Decode an [`AttrPredicate`].
pub fn get_predicate(r: &mut Reader) -> Result<AttrPredicate> {
    Ok(AttrPredicate { name: r.str()?, op: get_attr_op(r)?, value: get_value(r)? })
}

/// Encode a [`FileSpec`].
pub fn put_filespec(b: &mut Vec<u8>, s: &FileSpec) {
    put_str(b, &s.name);
    put_opt_i64(b, s.version);
    put_opt_str(b, &s.data_type);
    put_opt_str(b, &s.collection);
    put_opt_str(b, &s.container_id);
    put_opt_str(b, &s.container_service);
    put_opt_str(b, &s.master_copy);
    put_bool(b, s.audit);
    put_u32(b, s.attributes.len() as u32);
    for a in &s.attributes {
        put_attribute(b, a);
    }
}

/// Decode a [`FileSpec`].
pub fn get_filespec(r: &mut Reader) -> Result<FileSpec> {
    let name = r.str()?;
    let version = r.opt_i64()?;
    let data_type = r.opt_str()?;
    let collection = r.opt_str()?;
    let container_id = r.opt_str()?;
    let container_service = r.opt_str()?;
    let master_copy = r.opt_str()?;
    let audit = r.bool()?;
    let n = r.seq_len()?;
    let mut attributes = Vec::with_capacity(n);
    for _ in 0..n {
        attributes.push(get_attribute(r)?);
    }
    Ok(FileSpec {
        name,
        version,
        data_type,
        collection,
        container_id,
        container_service,
        master_copy,
        audit,
        attributes,
    })
}

/// Encode a [`FileUpdate`].
pub fn put_fileupdate(b: &mut Vec<u8>, u: &FileUpdate) {
    put_opt_str(b, &u.data_type);
    match u.valid {
        None => put_u8(b, 0),
        Some(v) => {
            put_u8(b, 1);
            put_bool(b, v);
        }
    }
    put_opt_str(b, &u.master_copy);
    put_opt_str(b, &u.container_id);
    put_opt_str(b, &u.container_service);
}

/// Decode a [`FileUpdate`].
pub fn get_fileupdate(r: &mut Reader) -> Result<FileUpdate> {
    let data_type = r.opt_str()?;
    let valid = match r.u8()? {
        0 => None,
        1 => Some(r.bool()?),
        other => return Err(bad(format!("bad option byte {other}"))),
    };
    Ok(FileUpdate {
        data_type,
        valid,
        master_copy: r.opt_str()?,
        container_id: r.opt_str()?,
        container_service: r.opt_str()?,
    })
}

/// Encode a [`LogicalFile`].
pub fn put_file(b: &mut Vec<u8>, f: &LogicalFile) {
    put_i64(b, f.id);
    put_str(b, &f.name);
    put_i64(b, f.version);
    put_opt_str(b, &f.data_type);
    put_bool(b, f.valid);
    put_opt_i64(b, f.collection_id);
    put_opt_str(b, &f.container_id);
    put_opt_str(b, &f.container_service);
    put_str(b, &f.creator);
    put_datetime(b, &f.created);
    put_opt_str(b, &f.last_modifier);
    put_opt_datetime(b, &f.last_modified);
    put_opt_str(b, &f.master_copy);
    put_bool(b, f.audit_enabled);
}

/// Decode a [`LogicalFile`].
pub fn get_file(r: &mut Reader) -> Result<LogicalFile> {
    Ok(LogicalFile {
        id: r.i64()?,
        name: r.str()?,
        version: r.i64()?,
        data_type: r.opt_str()?,
        valid: r.bool()?,
        collection_id: r.opt_i64()?,
        container_id: r.opt_str()?,
        container_service: r.opt_str()?,
        creator: r.str()?,
        created: r.datetime()?,
        last_modifier: r.opt_str()?,
        last_modified: r.opt_datetime()?,
        master_copy: r.opt_str()?,
        audit_enabled: r.bool()?,
    })
}

/// Encode a [`Collection`].
pub fn put_collection(b: &mut Vec<u8>, c: &Collection) {
    put_i64(b, c.id);
    put_str(b, &c.name);
    put_str(b, &c.description);
    put_opt_i64(b, c.parent_id);
    put_str(b, &c.creator);
    put_datetime(b, &c.created);
    put_opt_str(b, &c.last_modifier);
    put_opt_datetime(b, &c.last_modified);
    put_bool(b, c.audit_enabled);
}

/// Decode a [`Collection`].
pub fn get_collection(r: &mut Reader) -> Result<Collection> {
    Ok(Collection {
        id: r.i64()?,
        name: r.str()?,
        description: r.str()?,
        parent_id: r.opt_i64()?,
        creator: r.str()?,
        created: r.datetime()?,
        last_modifier: r.opt_str()?,
        last_modified: r.opt_datetime()?,
        audit_enabled: r.bool()?,
    })
}

/// Encode a [`View`].
pub fn put_view(b: &mut Vec<u8>, v: &View) {
    put_i64(b, v.id);
    put_str(b, &v.name);
    put_str(b, &v.description);
    put_str(b, &v.creator);
    put_datetime(b, &v.created);
    put_opt_str(b, &v.last_modifier);
    put_opt_datetime(b, &v.last_modified);
    put_bool(b, v.audit_enabled);
}

/// Decode a [`View`].
pub fn get_view(r: &mut Reader) -> Result<View> {
    Ok(View {
        id: r.i64()?,
        name: r.str()?,
        description: r.str()?,
        creator: r.str()?,
        created: r.datetime()?,
        last_modifier: r.opt_str()?,
        last_modified: r.opt_datetime()?,
        audit_enabled: r.bool()?,
    })
}

/// Encode (name, version) hit lists — query results and contents files.
pub fn put_hits(b: &mut Vec<u8>, hits: &[(String, i64)]) {
    put_u32(b, hits.len() as u32);
    for (n, v) in hits {
        put_str(b, n);
        put_i64(b, *v);
    }
}

/// Decode a (name, version) hit list.
pub fn get_hits(r: &mut Reader) -> Result<Vec<(String, i64)>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        out.push((name, r.i64()?));
    }
    Ok(out)
}

/// Encode a string list.
pub fn put_strs(b: &mut Vec<u8>, ss: &[String]) {
    put_u32(b, ss.len() as u32);
    for s in ss {
        put_str(b, s);
    }
}

/// Decode a string list.
pub fn get_strs(r: &mut Reader) -> Result<Vec<String>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

/// Encode a `u64` list (epoch vectors).
pub fn put_u64s(b: &mut Vec<u8>, vs: &[u64]) {
    put_u32(b, vs.len() as u32);
    for v in vs {
        put_u64(b, *v);
    }
}

/// Decode a `u64` list.
pub fn get_u64s(r: &mut Reader) -> Result<Vec<u64>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

/// Encode [`CollectionContents`].
pub fn put_collection_contents(b: &mut Vec<u8>, c: &CollectionContents) {
    put_hits(b, &c.files);
    put_strs(b, &c.subcollections);
}

/// Decode [`CollectionContents`].
pub fn get_collection_contents(r: &mut Reader) -> Result<CollectionContents> {
    Ok(CollectionContents { files: get_hits(r)?, subcollections: get_strs(r)? })
}

/// Encode [`ViewContents`].
pub fn put_view_contents(b: &mut Vec<u8>, c: &ViewContents) {
    put_hits(b, &c.files);
    put_strs(b, &c.collections);
    put_strs(b, &c.views);
}

/// Decode [`ViewContents`].
pub fn get_view_contents(r: &mut Reader) -> Result<ViewContents> {
    Ok(ViewContents { files: get_hits(r)?, collections: get_strs(r)?, views: get_strs(r)? })
}

/// Encode an [`Annotation`].
pub fn put_annotation(b: &mut Vec<u8>, a: &Annotation) {
    put_object_type(b, a.object_type);
    put_i64(b, a.object_id);
    put_str(b, &a.text);
    put_str(b, &a.creator);
    put_datetime(b, &a.created);
}

/// Decode an [`Annotation`].
pub fn get_annotation(r: &mut Reader) -> Result<Annotation> {
    Ok(Annotation {
        object_type: get_object_type(r)?,
        object_id: r.i64()?,
        text: r.str()?,
        creator: r.str()?,
        created: r.datetime()?,
    })
}

/// Encode an [`AuditRecord`].
pub fn put_audit(b: &mut Vec<u8>, a: &AuditRecord) {
    put_object_type(b, a.object_type);
    put_i64(b, a.object_id);
    put_str(b, &a.action);
    put_str(b, &a.actor);
    put_datetime(b, &a.at);
    put_str(b, &a.details);
}

/// Decode an [`AuditRecord`].
pub fn get_audit(r: &mut Reader) -> Result<AuditRecord> {
    Ok(AuditRecord {
        object_type: get_object_type(r)?,
        object_id: r.i64()?,
        action: r.str()?,
        actor: r.str()?,
        at: r.datetime()?,
        details: r.str()?,
    })
}

/// Encode a [`HistoryRecord`].
pub fn put_history(b: &mut Vec<u8>, h: &HistoryRecord) {
    put_i64(b, h.file_id);
    put_str(b, &h.description);
    put_str(b, &h.actor);
    put_datetime(b, &h.at);
}

/// Decode a [`HistoryRecord`].
pub fn get_history(r: &mut Reader) -> Result<HistoryRecord> {
    Ok(HistoryRecord {
        file_id: r.i64()?,
        description: r.str()?,
        actor: r.str()?,
        at: r.datetime()?,
    })
}

/// Encode a [`UserRecord`].
pub fn put_user(b: &mut Vec<u8>, u: &UserRecord) {
    put_str(b, &u.dn);
    put_str(b, &u.description);
    put_str(b, &u.institution);
    put_str(b, &u.email);
    put_str(b, &u.phone);
}

/// Decode a [`UserRecord`].
pub fn get_user(r: &mut Reader) -> Result<UserRecord> {
    Ok(UserRecord {
        dn: r.str()?,
        description: r.str()?,
        institution: r.str()?,
        email: r.str()?,
        phone: r.str()?,
    })
}

/// Encode an [`ExternalCatalog`].
pub fn put_extcat(b: &mut Vec<u8>, c: &ExternalCatalog) {
    put_str(b, &c.name);
    put_str(b, &c.catalog_type);
    put_str(b, &c.host);
    put_str(b, &c.ip);
    put_str(b, &c.description);
}

/// Decode an [`ExternalCatalog`].
pub fn get_extcat(r: &mut Reader) -> Result<ExternalCatalog> {
    Ok(ExternalCatalog {
        name: r.str()?,
        catalog_type: r.str()?,
        host: r.str()?,
        ip: r.str()?,
        description: r.str()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_all_types() {
        let dt = DateTime::from_seconds_from_epoch(1_068_854_400);
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::from("hi <&> there"),
            Value::Bool(true),
            Value::Date(Date::new(2003, 11, 15).unwrap()),
            Value::Time(Time::new(8, 30, 0).unwrap()),
            Value::DateTime(dt),
        ] {
            let mut b = Vec::new();
            put_value(&mut b, &v);
            let mut r = Reader::new(&b);
            let back = get_value(&mut r).unwrap();
            r.finish().unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(x)) if a.is_nan() => assert!(x.is_nan()),
                _ => assert_eq!(back, v),
            }
        }
    }

    #[test]
    fn decoder_never_overreads() {
        // Every prefix of a valid record decodes to an error, not a panic.
        let mut b = Vec::new();
        let f = FileSpec::named("file-x").attr("a", 1i64).attr("b", "y");
        put_filespec(&mut b, &f);
        for cut in 0..b.len() {
            let mut r = Reader::new(&b[..cut]);
            assert!(get_filespec(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
        let mut r = Reader::new(&b);
        assert_eq!(get_filespec(&mut r).unwrap().attributes, f.attributes);
        r.finish().unwrap();
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        // A string claiming u32::MAX bytes in a 10-byte frame.
        let mut b = Vec::new();
        put_u32(&mut b, u32::MAX);
        b.extend_from_slice(b"abcdef");
        assert!(Reader::new(&b).str().is_err());
        // A sequence claiming 2^31 elements.
        let mut b = Vec::new();
        put_u32(&mut b, 1 << 31);
        assert!(Reader::new(&b).seq_len().is_err());
    }
}
