//! # binproto — the pipelined binary wire protocol beside SOAP
//!
//! The paper's §6.3 analysis (and our `encoding`/`keepalive` ablations)
//! blame the web-service stack for most of the client-observed gap to
//! direct calls: SOAP envelope encode/decode is ~20× a compact binary
//! framing and TCP setup is ~57% of per-call cost. This module is the
//! escape the AliEn/ALICE catalogue built when it outgrew its WS stack:
//! the **same operations, same auth, same per-request durability/cache
//! semantics** (shared dispatch scope, [`crate::dispatch`]) over
//! length-prefixed binary frames on a persistent connection, with
//! request pipelining and a batched `createFiles` bulk mutation.
//!
//! Frame layout, tagging, error frames and the version byte are
//! specified in DESIGN.md §7.7; the codec itself lives in [`frame`].
//! Equivalence with the SOAP front end is enforced by the seeded
//! cross-protocol twin suite (`tests/wire_twin.rs`), robustness of the
//! decoder by `tests/bin_fuzz.rs`, and in-order pipelining by
//! `tests/bin_pipeline_stress.rs`.

pub mod frame;

mod client;
mod server;

pub use client::BinMcsClient;
pub use server::BinServer;

/// Operation codes — one per catalog op the SOAP front end registers,
/// plus the batched `createFiles` bulk mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness probe.
    Ping = 0x01,
    /// Service topology and vitals.
    CatalogInfo = 0x02,
    /// Park until a shard's durable watermark covers an epoch.
    WaitForEpoch = 0x03,
    /// Make every acknowledged write durable now.
    SyncNow = 0x04,
    /// Read-cache counters.
    CacheStats = 0x05,
    /// Create one logical file.
    CreateFile = 0x10,
    /// Create a batch of logical files in one transaction.
    CreateFiles = 0x11,
    /// Fetch a file (the paper's "simple query").
    GetFile = 0x12,
    /// Fetch one version of a file.
    GetFileVersion = 0x13,
    /// All versions of a logical name.
    GetFileVersions = 0x14,
    /// Update predefined attributes.
    UpdateFile = 0x15,
    /// Mark a file invalid.
    InvalidateFile = 0x16,
    /// Delete a file.
    DeleteFile = 0x17,
    /// Delete one version of a file.
    DeleteFileVersion = 0x18,
    /// Create a collection.
    CreateCollection = 0x20,
    /// Fetch a collection record.
    GetCollection = 0x21,
    /// Delete an empty collection.
    DeleteCollection = 0x22,
    /// List a collection's direct contents.
    ListCollection = 0x23,
    /// Move a file into (or out of) a collection.
    AssignCollection = 0x24,
    /// Create a logical view.
    CreateView = 0x30,
    /// Fetch a view record.
    GetView = 0x31,
    /// Delete a view.
    DeleteView = 0x32,
    /// Add a member to a view.
    AddToView = 0x33,
    /// Remove a member from a view.
    RemoveFromView = 0x34,
    /// List a view's members.
    ListView = 0x35,
    /// Register a user-defined attribute.
    DefineAttribute = 0x40,
    /// Set (upsert) an attribute on an object.
    SetAttribute = 0x41,
    /// Remove an attribute.
    RemoveAttribute = 0x42,
    /// Fetch an object's user-defined attributes.
    GetAttributes = 0x43,
    /// Attribute-based discovery (the paper's "complex query").
    QueryByAttributes = 0x44,
    /// EXPLAIN for queryByAttributes.
    ExplainQuery = 0x45,
    /// Attach an annotation.
    Annotate = 0x50,
    /// Fetch annotations.
    GetAnnotations = 0x51,
    /// Fetch the audit trail.
    GetAuditTrail = 0x52,
    /// Enable or disable per-access auditing.
    SetAudit = 0x53,
    /// Append a transformation-history record.
    AddHistory = 0x54,
    /// Fetch a file's transformation history.
    GetHistory = 0x55,
    /// Grant a permission.
    Grant = 0x60,
    /// Revoke a permission.
    Revoke = 0x61,
    /// Register a metadata writer.
    RegisterUser = 0x70,
    /// Fetch a metadata writer by DN.
    GetUser = 0x71,
    /// List all metadata writers.
    ListUsers = 0x72,
    /// Register an external catalog pointer.
    RegisterExternalCatalog = 0x73,
    /// List external catalogs.
    ListExternalCatalogs = 0x74,
}

impl Op {
    /// Decode an opcode byte; `None` for anything unassigned.
    pub fn from_u8(b: u8) -> Option<Op> {
        use Op::*;
        Some(match b {
            0x01 => Ping,
            0x02 => CatalogInfo,
            0x03 => WaitForEpoch,
            0x04 => SyncNow,
            0x05 => CacheStats,
            0x10 => CreateFile,
            0x11 => CreateFiles,
            0x12 => GetFile,
            0x13 => GetFileVersion,
            0x14 => GetFileVersions,
            0x15 => UpdateFile,
            0x16 => InvalidateFile,
            0x17 => DeleteFile,
            0x18 => DeleteFileVersion,
            0x20 => CreateCollection,
            0x21 => GetCollection,
            0x22 => DeleteCollection,
            0x23 => ListCollection,
            0x24 => AssignCollection,
            0x30 => CreateView,
            0x31 => GetView,
            0x32 => DeleteView,
            0x33 => AddToView,
            0x34 => RemoveFromView,
            0x35 => ListView,
            0x40 => DefineAttribute,
            0x41 => SetAttribute,
            0x42 => RemoveAttribute,
            0x43 => GetAttributes,
            0x44 => QueryByAttributes,
            0x45 => ExplainQuery,
            0x50 => Annotate,
            0x51 => GetAnnotations,
            0x52 => GetAuditTrail,
            0x53 => SetAudit,
            0x54 => AddHistory,
            0x55 => GetHistory,
            0x60 => Grant,
            0x61 => Revoke,
            0x70 => RegisterUser,
            0x71 => GetUser,
            0x72 => ListUsers,
            0x73 => RegisterExternalCatalog,
            0x74 => ListExternalCatalogs,
            _ => return None,
        })
    }

    /// The op's SOAP method name (used in fault messages so errors read
    /// the same across protocols).
    pub fn name(self) -> &'static str {
        use Op::*;
        match self {
            Ping => "ping",
            CatalogInfo => "catalogInfo",
            WaitForEpoch => "waitForEpoch",
            SyncNow => "syncNow",
            CacheStats => "cacheStats",
            CreateFile => "createFile",
            CreateFiles => "createFiles",
            GetFile => "getFile",
            GetFileVersion => "getFileVersion",
            GetFileVersions => "getFileVersions",
            UpdateFile => "updateFile",
            InvalidateFile => "invalidateFile",
            DeleteFile => "deleteFile",
            DeleteFileVersion => "deleteFileVersion",
            CreateCollection => "createCollection",
            GetCollection => "getCollection",
            DeleteCollection => "deleteCollection",
            ListCollection => "listCollection",
            AssignCollection => "assignCollection",
            CreateView => "createView",
            GetView => "getView",
            DeleteView => "deleteView",
            AddToView => "addToView",
            RemoveFromView => "removeFromView",
            ListView => "listView",
            DefineAttribute => "defineAttribute",
            SetAttribute => "setAttribute",
            RemoveAttribute => "removeAttribute",
            GetAttributes => "getAttributes",
            QueryByAttributes => "queryByAttributes",
            ExplainQuery => "explainQuery",
            Annotate => "annotate",
            GetAnnotations => "getAnnotations",
            GetAuditTrail => "getAuditTrail",
            SetAudit => "setAudit",
            AddHistory => "addHistory",
            GetHistory => "getHistory",
            Grant => "grant",
            Revoke => "revoke",
            RegisterUser => "registerUser",
            GetUser => "getUser",
            ListUsers => "listUsers",
            RegisterExternalCatalog => "registerExternalCatalog",
            ListExternalCatalogs => "listExternalCatalogs",
        }
    }
}
