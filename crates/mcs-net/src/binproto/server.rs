//! The binary-protocol server: a TCP accept loop feeding per-connection
//! request loops on a worker pool, dispatching the same catalog ops as
//! the SOAP front end through the shared [`crate::dispatch`] scope.
//!
//! One connection is served by one worker at a time and requests are
//! processed strictly in arrival order, which is what makes pipelining
//! safe: a client may have any number of tagged requests in flight and
//! the matching responses come back in exactly that order. Responses are
//! buffered and only flushed when the connection has no further request
//! already readable — so a pipelined burst of N requests costs far fewer
//! syscalls than N request/response round-trips.
//!
//! Error policy (fuzz-tested in `tests/bin_fuzz.rs`):
//! * a malformed **stream** — bad preamble, length prefix outside
//!   `[MIN_FRAME, MAX_FRAME]`, EOF mid-frame — kills the connection
//!   (after an explanatory error frame when the stream position still
//!   allows one), because the frame boundary can no longer be trusted;
//! * a malformed **frame body** — unknown opcode, bad tag bytes,
//!   truncated or trailing payload — answers with a structured fault
//!   frame and the connection keeps serving, exactly like a SOAP fault.

use std::io::{self, BufReader, BufWriter, Write};
// `frame::*` exports its own `Result` alias; these handlers fail with
// `Fault`, so pull std's back in.
use std::result::Result;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mcs::{Mcs, ShardedCatalog};
use soapstack::server::ServerStats;
use soapstack::threadpool::ThreadPool;
use soapstack::Fault;

use crate::client::DurabilityMode;
use crate::dispatch::{run_scoped, CallScope};
use crate::server::{fault_of, fault_of_xml};
use crate::wire::shape;

use super::frame::*;
use super::Op;

/// How long a worker will wait on a half-sent frame before giving up on
/// the connection — the backstop that keeps a stalled or hostile peer
/// from pinning a pool thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A running binary-protocol MCS server; dropping it shuts it down.
pub struct BinServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Service counters (same shape as the HTTP server's, so the shared
    /// `assert_single_connection` test helper applies to both).
    pub stats: Arc<ServerStats>,
}

impl BinServer {
    /// Expose `mcs` over the binary protocol at `bind_addr` with
    /// `workers` pool threads.
    pub fn start(mcs: Arc<Mcs>, bind_addr: &str, workers: usize) -> io::Result<BinServer> {
        Self::start_sharded(Arc::new(ShardedCatalog::from_single(mcs)), bind_addr, workers)
    }

    /// Expose a hash-partitioned catalog over the binary protocol. With
    /// one shard this is identical to [`BinServer::start`].
    pub fn start_sharded(
        catalog: Arc<ShardedCatalog>,
        bind_addr: &str,
        workers: usize,
    ) -> io::Result<BinServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::Builder::new()
            .name("binproto-accept".into())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                for conn in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                    let catalog = Arc::clone(&catalog);
                    let stats = Arc::clone(&accept_stats);
                    pool.execute(move || serve_connection(stream, &catalog, &stats));
                }
            })?;
        Ok(BinServer { addr, shutdown, accept_thread: Some(accept_thread), stats })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Request shutdown and join the accept thread.
    pub fn stop(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for BinServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(stream: TcpStream, catalog: &ShardedCatalog, stats: &ServerStats) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    // Buffers sized for a full pipeline window of requests/responses, so
    // a deep window drains with one read and one write syscall.
    let mut reader = BufReader::with_capacity(
        64 * 1024,
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    );
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
    // Preamble handshake: anything but `MCSB` + our version closes the
    // connection before a single frame is parsed.
    if read_preamble(&mut reader).is_err() {
        return;
    }
    if write_preamble(&mut writer).is_err() || writer.flush().is_err() {
        return;
    }
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) => return, // clean close on a frame boundary
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Hostile length prefix: say why (tag 0 — the request's
                // tag is inside the frame we refused to read), then drop
                // the connection; the stream offset is garbage now.
                let _ = write_frame(
                    &mut writer,
                    &fault_frame(
                        0,
                        &Fault {
                            code: "soap:Client.BadArguments".into(),
                            message: e.to_string(),
                        },
                    ),
                );
                let _ = writer.flush();
                return;
            }
            Err(_) => return, // EOF mid-frame or a read timeout
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let resp = handle_frame(catalog, &body);
        if write_frame(&mut writer, &resp).is_err() {
            return;
        }
        // Pipelining: pay the flush only when no further request is
        // already buffered — a burst of N requests gets its N responses
        // in (usually) one write.
        if reader.buffer().is_empty() && writer.flush().is_err() {
            return;
        }
    }
}

/// One request frame in, one response frame body out. Never panics on
/// hostile input: every decode error becomes a structured fault frame.
pub fn handle_frame(catalog: &ShardedCatalog, body: &[u8]) -> Vec<u8> {
    let mut r = Reader::new(body);
    // MIN_FRAME guarantees the tag is present.
    let tag = r.u32().unwrap_or(0);
    match run_request(catalog, &mut r) {
        // A call that logged nothing echoes (0, 0), matching the SOAP
        // front end where the epoch/shard attributes are simply absent.
        Ok((payload, 0, _)) => ok_frame(tag, 0, 0, &payload),
        Ok((payload, epoch, shard)) => ok_frame(tag, epoch, shard, &payload),
        Err(fault) => fault_frame(tag, &fault),
    }
}

fn ok_frame(tag: u32, epoch: u64, shard: usize, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(15 + payload.len());
    put_u32(&mut b, tag);
    put_u8(&mut b, STATUS_OK);
    put_u64(&mut b, epoch);
    put_u16(&mut b, shard as u16);
    b.extend_from_slice(payload);
    b
}

fn fault_frame(tag: u32, fault: &Fault) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, tag);
    put_u8(&mut b, STATUS_FAULT);
    put_str(&mut b, &fault.code);
    put_str(&mut b, &fault.message);
    b
}

/// A frame-decode failure maps to the same fault a malformed SOAP body
/// gets, so the client-side error kind is `BadArguments` either way.
fn fault_of_frame(e: FrameError) -> Fault {
    fault_of_xml(shape(e.to_string()))
}

fn run_request(
    catalog: &ShardedCatalog,
    r: &mut Reader,
) -> Result<(Vec<u8>, u64, usize), Fault> {
    let opcode = r.u8().map_err(fault_of_frame)?;
    let flags = r.u8().map_err(fault_of_frame)?;
    if flags & !(FLAG_DURABILITY | FLAG_CACHE_BYPASS) != 0 {
        return Err(fault_of_xml(shape(format!("unknown request flags {flags:#04x}"))));
    }
    let durability = if flags & FLAG_DURABILITY != 0 {
        Some(match r.u8().map_err(fault_of_frame)? {
            0 => DurabilityMode::Always,
            1 => DurabilityMode::Group,
            2 => DurabilityMode::Async,
            other => {
                return Err(fault_of_xml(shape(format!(
                    "unknown durability mode byte {other} (expected 0|1|2)"
                ))))
            }
        })
    } else {
        None
    };
    let scope = CallScope { durability, cache_bypass: flags & FLAG_CACHE_BYPASS != 0 };
    let op = Op::from_u8(opcode).ok_or_else(|| Fault {
        code: "soap:Client".into(),
        message: format!("no such method `{opcode:#04x}`"),
    })?;
    let cred = get_credential(r).map_err(fault_of_frame)?;
    let (result, epoch, shard) = run_scoped(catalog, scope, |c| exec_op(c, op, &cred, r));
    result.map(|payload| (payload, epoch, shard))
}

/// Decode the op's arguments, require the frame fully consumed, run the
/// catalog operation, encode the result payload. Argument decoding
/// happens entirely *before* the operation executes, so a malformed
/// request can never half-execute.
fn exec_op(
    mcs: &ShardedCatalog,
    op: Op,
    cred: &mcs::Credential,
    r: &mut Reader,
) -> Result<Vec<u8>, Fault> {
    let fin = |r: &mut Reader| r.finish().map_err(fault_of_frame);
    let mut b = Vec::new();
    match op {
        Op::Ping => {
            fin(r)?;
        }
        Op::CatalogInfo => {
            fin(r)?;
            put_u32(&mut b, mcs.shards() as u32);
            put_str(&mut b, &format!("{:?}", mcs.index_profile()));
            put_u64(&mut b, mcs.file_count().map_err(fault_of)? as u64);
            put_bool(&mut b, mcs.cache_enabled());
            put_u64s(&mut b, &mcs.commit_epochs());
            put_u64s(&mut b, &mcs.durable_epochs());
        }
        Op::WaitForEpoch => {
            let epoch = r.i64().map_err(fault_of_frame)?;
            let shard = r.u32().map_err(fault_of_frame)? as usize;
            fin(r)?;
            if epoch < 0 {
                return Err(fault_of_xml(shape("epoch must be >= 0")));
            }
            if shard >= mcs.shards() {
                return Err(fault_of_xml(shape(format!(
                    "shard {shard} out of range (catalog has {})",
                    mcs.shards()
                ))));
            }
            mcs.wait_for_epoch(shard, epoch as u64).map_err(fault_of)?;
            put_u64(&mut b, mcs.durable_epoch(shard).map_err(fault_of)?);
        }
        Op::SyncNow => {
            fin(r)?;
            put_u64s(&mut b, &mcs.sync_now().map_err(fault_of)?);
        }
        Op::CacheStats => {
            fin(r)?;
            let stats = mcs.cache_stats().unwrap_or_default();
            put_bool(&mut b, mcs.cache_enabled());
            put_u64(&mut b, stats.hits);
            put_u64(&mut b, stats.misses);
            put_u64(&mut b, stats.stale);
            put_u64(&mut b, stats.evictions);
        }
        Op::CreateFile => {
            let spec = get_filespec(r).map_err(fault_of_frame)?;
            fin(r)?;
            put_file(&mut b, &mcs.create_file(cred, &spec).map_err(fault_of)?);
        }
        Op::CreateFiles => {
            let n = r.seq_len().map_err(fault_of_frame)?;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                specs.push(get_filespec(r).map_err(fault_of_frame)?);
            }
            fin(r)?;
            let fs = mcs.create_files(cred, &specs).map_err(fault_of)?;
            put_u32(&mut b, fs.len() as u32);
            for f in &fs {
                put_file(&mut b, f);
            }
        }
        Op::GetFile => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_file(&mut b, &mcs.get_file(cred, &name).map_err(fault_of)?);
        }
        Op::GetFileVersion => {
            let name = r.str().map_err(fault_of_frame)?;
            let version = r.i64().map_err(fault_of_frame)?;
            fin(r)?;
            put_file(&mut b, &mcs.get_file_version(cred, &name, version).map_err(fault_of)?);
        }
        Op::GetFileVersions => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            let fs = mcs.get_file_versions(cred, &name).map_err(fault_of)?;
            put_u32(&mut b, fs.len() as u32);
            for f in &fs {
                put_file(&mut b, f);
            }
        }
        Op::UpdateFile => {
            let name = r.str().map_err(fault_of_frame)?;
            let upd = get_fileupdate(r).map_err(fault_of_frame)?;
            fin(r)?;
            put_file(&mut b, &mcs.update_file(cred, &name, &upd).map_err(fault_of)?);
        }
        Op::InvalidateFile => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.invalidate_file(cred, &name).map_err(fault_of)?;
        }
        Op::DeleteFile => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.delete_file(cred, &name).map_err(fault_of)?;
        }
        Op::DeleteFileVersion => {
            let name = r.str().map_err(fault_of_frame)?;
            let version = r.i64().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.delete_file_version(cred, &name, version).map_err(fault_of)?;
        }
        Op::CreateCollection => {
            let name = r.str().map_err(fault_of_frame)?;
            let parent = r.opt_str().map_err(fault_of_frame)?;
            let description = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            let c = mcs
                .create_collection(cred, &name, parent.as_deref(), &description)
                .map_err(fault_of)?;
            put_collection(&mut b, &c);
        }
        Op::GetCollection => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_collection(&mut b, &mcs.get_collection(cred, &name).map_err(fault_of)?);
        }
        Op::DeleteCollection => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.delete_collection(cred, &name).map_err(fault_of)?;
        }
        Op::ListCollection => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_collection_contents(&mut b, &mcs.list_collection(cred, &name).map_err(fault_of)?);
        }
        Op::AssignCollection => {
            let file = r.str().map_err(fault_of_frame)?;
            let collection = r.opt_str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.assign_collection(cred, &file, collection.as_deref()).map_err(fault_of)?;
        }
        Op::CreateView => {
            let name = r.str().map_err(fault_of_frame)?;
            let description = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_view(&mut b, &mcs.create_view(cred, &name, &description).map_err(fault_of)?);
        }
        Op::GetView => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_view(&mut b, &mcs.get_view(cred, &name).map_err(fault_of)?);
        }
        Op::DeleteView => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.delete_view(cred, &name).map_err(fault_of)?;
        }
        Op::AddToView => {
            let view = r.str().map_err(fault_of_frame)?;
            let member = get_objref(r).map_err(fault_of_frame)?;
            fin(r)?;
            mcs.add_to_view(cred, &view, &member).map_err(fault_of)?;
        }
        Op::RemoveFromView => {
            let view = r.str().map_err(fault_of_frame)?;
            let member = get_objref(r).map_err(fault_of_frame)?;
            fin(r)?;
            put_bool(&mut b, mcs.remove_from_view(cred, &view, &member).map_err(fault_of)?);
        }
        Op::ListView => {
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_view_contents(&mut b, &mcs.list_view(cred, &name).map_err(fault_of)?);
        }
        Op::DefineAttribute => {
            let name = r.str().map_err(fault_of_frame)?;
            let ty = get_attr_type(r).map_err(fault_of_frame)?;
            let description = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.define_attribute(cred, &name, ty, &description).map_err(fault_of)?;
        }
        Op::SetAttribute => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            let attr = get_attribute(r).map_err(fault_of_frame)?;
            fin(r)?;
            mcs.set_attribute(cred, &object, &attr).map_err(fault_of)?;
        }
        Op::RemoveAttribute => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            let name = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_bool(&mut b, mcs.remove_attribute(cred, &object, &name).map_err(fault_of)?);
        }
        Op::GetAttributes => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            fin(r)?;
            let attrs = mcs.get_attributes(cred, &object).map_err(fault_of)?;
            put_u32(&mut b, attrs.len() as u32);
            for a in &attrs {
                put_attribute(&mut b, a);
            }
        }
        Op::QueryByAttributes => {
            let preds = get_predicates(r)?;
            fin(r)?;
            put_hits(&mut b, &mcs.query_by_attributes(cred, &preds).map_err(fault_of)?);
        }
        Op::ExplainQuery => {
            let preds = get_predicates(r)?;
            fin(r)?;
            put_strs(&mut b, &mcs.explain_query(cred, &preds).map_err(fault_of)?);
        }
        Op::Annotate => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            let text = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.annotate(cred, &object, &text).map_err(fault_of)?;
        }
        Op::GetAnnotations => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            fin(r)?;
            let anns = mcs.get_annotations(cred, &object).map_err(fault_of)?;
            put_u32(&mut b, anns.len() as u32);
            for a in &anns {
                put_annotation(&mut b, a);
            }
        }
        Op::GetAuditTrail => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            fin(r)?;
            let recs = mcs.get_audit_trail(cred, &object).map_err(fault_of)?;
            put_u32(&mut b, recs.len() as u32);
            for a in &recs {
                put_audit(&mut b, a);
            }
        }
        Op::SetAudit => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            let enabled = r.bool().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.set_audit(cred, &object, enabled).map_err(fault_of)?;
        }
        Op::AddHistory => {
            let file = r.str().map_err(fault_of_frame)?;
            let description = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            mcs.add_history(cred, &file, &description).map_err(fault_of)?;
        }
        Op::GetHistory => {
            let file = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            let recs = mcs.get_history(cred, &file).map_err(fault_of)?;
            put_u32(&mut b, recs.len() as u32);
            for h in &recs {
                put_history(&mut b, h);
            }
        }
        Op::Grant | Op::Revoke => {
            let object = get_objref(r).map_err(fault_of_frame)?;
            let principal = r.str().map_err(fault_of_frame)?;
            let perm = get_permission(r).map_err(fault_of_frame)?;
            fin(r)?;
            match op {
                Op::Grant => mcs.grant(cred, &object, &principal, perm).map_err(fault_of)?,
                _ => mcs.revoke(cred, &object, &principal, perm).map_err(fault_of)?,
            }
        }
        Op::RegisterUser => {
            let user = get_user(r).map_err(fault_of_frame)?;
            fin(r)?;
            mcs.register_user(cred, &user).map_err(fault_of)?;
        }
        Op::GetUser => {
            let dn = r.str().map_err(fault_of_frame)?;
            fin(r)?;
            put_user(&mut b, &mcs.get_user(cred, &dn).map_err(fault_of)?);
        }
        Op::ListUsers => {
            fin(r)?;
            let us = mcs.list_users(cred).map_err(fault_of)?;
            put_u32(&mut b, us.len() as u32);
            for u in &us {
                put_user(&mut b, u);
            }
        }
        Op::RegisterExternalCatalog => {
            let cat = get_extcat(r).map_err(fault_of_frame)?;
            fin(r)?;
            mcs.register_external_catalog(cred, &cat).map_err(fault_of)?;
        }
        Op::ListExternalCatalogs => {
            fin(r)?;
            let cats = mcs.list_external_catalogs(cred).map_err(fault_of)?;
            put_u32(&mut b, cats.len() as u32);
            for c in &cats {
                put_extcat(&mut b, c);
            }
        }
    }
    Ok(b)
}

fn get_predicates(r: &mut Reader) -> Result<Vec<mcs::AttrPredicate>, Fault> {
    let n = r.seq_len().map_err(fault_of_frame)?;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        preds.push(get_predicate(r).map_err(fault_of_frame)?);
    }
    Ok(preds)
}
