//! The binary-protocol client: the same typed surface as
//! [`crate::McsClient`] — same methods, same [`NetError`] shapes, same
//! `last_epoch`/`last_shard` echo — over one persistent length-prefixed
//! connection, plus an explicit pipelining API (`send_*`/`recv_*`) that
//! keeps many tagged requests in flight on that connection.
//!
//! Equivalence with the SOAP client is not aspirational: the seeded
//! cross-protocol twin suite (`tests/wire_twin.rs`) drives both clients
//! through identical operation streams and requires byte-identical
//! results, errors and audit trails.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use mcs::{
    Annotation, AttrPredicate, AttrType, Attribute, AuditRecord, Collection,
    CollectionContents, Credential, ExternalCatalog, FileSpec, FileUpdate, HistoryRecord,
    LogicalFile, ObjectRef, Permission, UserRecord, View, ViewContents,
};

use crate::client::{
    CacheStatsReport, CatalogInfoReport, DurabilityMode, FaultKind, NetError, Result,
};

use super::frame::*;
use super::Op;

/// One established connection: buffered halves of the same socket.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A synchronous binary-protocol client bound to one MCS endpoint and
/// one credential. The connection is established lazily on the first
/// call and then kept for the client's lifetime.
pub struct BinMcsClient {
    addr: String,
    cred: Credential,
    durability: Option<DurabilityMode>,
    cache_bypass: bool,
    last_epoch: u64,
    last_shard: usize,
    simulated_rtt: Duration,
    conn: Option<Conn>,
    next_tag: u32,
    /// Tags of pipelined requests sent but not yet answered, in send
    /// order — the server answers strictly in this order.
    inflight: VecDeque<u32>,
    /// True when sent frames are sitting in the write buffer, i.e. the
    /// next receive must flush (and pay the simulated RTT) first.
    pending_flush: bool,
}

impl BinMcsClient {
    /// Bind a client to an endpoint (`host:port`) and credential. No I/O
    /// happens until the first call.
    pub fn connect(addr: impl Into<String>, cred: Credential) -> BinMcsClient {
        BinMcsClient {
            addr: addr.into(),
            cred,
            durability: None,
            cache_bypass: false,
            last_epoch: 0,
            last_shard: 0,
            simulated_rtt: Duration::ZERO,
            conn: None,
            next_tag: 1,
            inflight: VecDeque::new(),
            pending_flush: false,
        }
    }

    /// Like [`BinMcsClient::connect`], with an artificial per-round-trip
    /// latency for WAN experiments. The sleep is paid once per *wire*
    /// round trip, not per request — a pipelined burst of N requests
    /// costs one RTT, which is precisely the effect pipelining exists to
    /// produce.
    pub fn with_rtt(addr: impl Into<String>, cred: Credential, rtt: Duration) -> BinMcsClient {
        let mut c = Self::connect(addr, cred);
        c.simulated_rtt = rtt;
        c
    }

    /// The credential this client presents.
    pub fn credential(&self) -> &Credential {
        &self.cred
    }

    /// Ask the server for a per-request commit durability (`None`
    /// reverts to the server's store-wide policy) — the flag-bit
    /// equivalent of the SOAP `mcs:durability` header.
    pub fn set_durability(&mut self, mode: Option<DurabilityMode>) {
        self.durability = mode;
    }

    /// Skip the server's read cache for this client's requests — the
    /// flag-bit equivalent of `mcs:cache="bypass"`.
    pub fn set_cache_bypass(&mut self, bypass: bool) {
        self.cache_bypass = bypass;
    }

    /// The commit epoch the server echoed on the most recent response
    /// (0 if that call logged nothing).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The shard [`BinMcsClient::last_epoch`] belongs to; always 0
    /// against a single-shard catalog.
    pub fn last_shard(&self) -> usize {
        self.last_shard
    }

    /// Number of pipelined requests sent but not yet received.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    // --- connection plumbing ---

    fn ensure_conn(&mut self) -> Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(frame_err)?;
            let _ = stream.set_nodelay(true);
            // Sized for a full pipeline window in both directions.
            let reader =
                BufReader::with_capacity(64 * 1024, stream.try_clone().map_err(frame_err)?);
            let mut writer = BufWriter::with_capacity(64 * 1024, stream);
            // Preamble handshake before any frames, both directions.
            write_preamble(&mut writer).map_err(frame_err)?;
            writer.flush().map_err(frame_err)?;
            let mut conn = Conn { reader, writer };
            read_preamble(&mut conn.reader).map_err(frame_err)?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Encode one request frame body: tag, opcode, flags, the optional
    /// durability byte, the credential, then the op's arguments.
    fn encode_request(&self, tag: u32, op: Op, args: &[u8]) -> Vec<u8> {
        let mut b = Vec::with_capacity(32 + args.len());
        put_u32(&mut b, tag);
        put_u8(&mut b, op as u8);
        let mut flags = 0u8;
        if self.durability.is_some() {
            flags |= FLAG_DURABILITY;
        }
        if self.cache_bypass {
            flags |= FLAG_CACHE_BYPASS;
        }
        put_u8(&mut b, flags);
        if let Some(mode) = self.durability {
            put_u8(
                &mut b,
                match mode {
                    DurabilityMode::Always => 0,
                    DurabilityMode::Group => 1,
                    DurabilityMode::Async => 2,
                },
            );
        }
        put_credential(&mut b, &self.cred);
        b.extend_from_slice(args);
        b
    }

    /// Read the response frame for `tag` and split it into the OK
    /// payload (updating the epoch/shard echo) or a fault.
    fn read_response(&mut self, tag: u32) -> Result<Vec<u8>> {
        let conn = self.conn.as_mut().expect("connected before reading");
        let body = match read_frame(&mut conn.reader) {
            Ok(Some(b)) => b,
            Ok(None) => {
                self.conn = None;
                return Err(NetError::Frame("server closed the connection".into()));
            }
            Err(e) => {
                self.conn = None;
                return Err(frame_err(e));
            }
        };
        let mut r = Reader::new(&body);
        let got_tag = r.u32().map_err(decode_err)?;
        if got_tag != tag {
            // A tag mismatch means the stream is desynchronized; the
            // connection is useless from here on.
            self.conn = None;
            return Err(NetError::Frame(format!(
                "response tag {got_tag} does not match request tag {tag}"
            )));
        }
        match r.u8().map_err(decode_err)? {
            STATUS_OK => {
                let epoch = r.u64().map_err(decode_err)?;
                let shard = r.u16().map_err(decode_err)? as usize;
                self.last_epoch = epoch;
                self.last_shard = shard;
                Ok(r.rest().to_vec())
            }
            STATUS_FAULT => {
                let code = r.str().map_err(decode_err)?;
                let message = r.str().map_err(decode_err)?;
                r.finish().map_err(decode_err)?;
                // Same code strings as SOAP faults, so the reconstructed
                // kind is identical across protocols.
                Err(NetError::Fault { kind: FaultKind::from_code(&code), message })
            }
            other => {
                self.conn = None;
                Err(NetError::Frame(format!("unknown response status byte {other}")))
            }
        }
    }

    /// One synchronous round trip. Retries once on a fresh connection if
    /// the kept-alive socket turned out stale — but never with pipelined
    /// requests in flight, where a blind resend could duplicate work.
    fn request(&mut self, op: Op, args: &[u8]) -> Result<Vec<u8>> {
        if !self.inflight.is_empty() {
            return Err(NetError::Frame(format!(
                "cannot issue a synchronous call with {} pipelined request(s) in flight; \
                 drain them with recv_* first",
                self.inflight.len()
            )));
        }
        let had_conn = self.conn.is_some();
        match self.request_once(op, args) {
            Err(NetError::Frame(_)) if had_conn => {
                // The idle connection may have been reaped; one retry on
                // a fresh one, like the SOAP client's stale-retry.
                self.conn = None;
                self.request_once(op, args)
            }
            other => other,
        }
    }

    fn request_once(&mut self, op: Op, args: &[u8]) -> Result<Vec<u8>> {
        let tag = self.next_tag;
        let body = self.encode_request(tag, op, args);
        let rtt = self.simulated_rtt;
        let conn = self.ensure_conn()?;
        if let Err(e) = write_frame(&mut conn.writer, &body).and_then(|_| conn.writer.flush()) {
            self.conn = None;
            return Err(frame_err(e));
        }
        if !rtt.is_zero() {
            std::thread::sleep(rtt);
        }
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        self.pending_flush = false;
        self.read_response(tag)
    }

    // --- pipelining ---

    /// Queue one request without flushing; its tag joins the in-flight
    /// queue. Responses must be drained in the same order with the
    /// matching `recv_*` methods.
    fn send_op(&mut self, op: Op, args: &[u8]) -> Result<u32> {
        let tag = self.next_tag;
        let body = self.encode_request(tag, op, args);
        let conn = self.ensure_conn()?;
        if let Err(e) = write_frame(&mut conn.writer, &body) {
            self.conn = None;
            return Err(frame_err(e));
        }
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        self.inflight.push_back(tag);
        self.pending_flush = true;
        Ok(tag)
    }

    /// Take the next in-order pipelined response's payload, flushing the
    /// send buffer first if needed.
    fn recv_payload(&mut self) -> Result<Vec<u8>> {
        let tag = self.inflight.pop_front().ok_or_else(|| {
            NetError::Frame("recv with no pipelined request in flight".into())
        })?;
        if self.pending_flush {
            let rtt = self.simulated_rtt;
            let conn = self.conn.as_mut().expect("in-flight requests imply a connection");
            if let Err(e) = conn.writer.flush() {
                self.conn = None;
                self.inflight.clear();
                return Err(frame_err(e));
            }
            if !rtt.is_zero() {
                std::thread::sleep(rtt);
            }
            self.pending_flush = false;
        }
        let r = self.read_response(tag);
        if self.conn.is_none() {
            // A transport/desync failure invalidates every later
            // response on this connection too.
            self.inflight.clear();
        }
        r
    }

    /// Pipeline a `getFile` request (the paper's "simple query").
    pub fn send_get_file(&mut self, name: &str) -> Result<u32> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        self.send_op(Op::GetFile, &a)
    }

    /// Pipeline a `createFile` request.
    pub fn send_create_file(&mut self, spec: &FileSpec) -> Result<u32> {
        let mut a = Vec::new();
        put_filespec(&mut a, spec);
        self.send_op(Op::CreateFile, &a)
    }

    /// Pipeline an `updateFile` request.
    pub fn send_update_file(&mut self, name: &str, update: &FileUpdate) -> Result<u32> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_fileupdate(&mut a, update);
        self.send_op(Op::UpdateFile, &a)
    }

    /// Pipeline a `setAttribute` request.
    pub fn send_set_attribute(&mut self, object: &ObjectRef, attr: &Attribute) -> Result<u32> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_attribute(&mut a, attr);
        self.send_op(Op::SetAttribute, &a)
    }

    /// Pipeline a `queryByAttributes` request.
    pub fn send_query_by_attributes(&mut self, preds: &[AttrPredicate]) -> Result<u32> {
        let mut a = Vec::new();
        put_u32(&mut a, preds.len() as u32);
        for p in preds {
            put_predicate(&mut a, p);
        }
        self.send_op(Op::QueryByAttributes, &a)
    }

    /// Pipeline a `ping` request.
    pub fn send_ping(&mut self) -> Result<u32> {
        self.send_op(Op::Ping, &[])
    }

    /// Receive the next pipelined response as a file record (for
    /// `send_get_file` / `send_create_file` / `send_update_file`).
    pub fn recv_file(&mut self) -> Result<LogicalFile> {
        let p = self.recv_payload()?;
        parse(&p, get_file)
    }

    /// Receive the next pipelined response that carries no payload (for
    /// `send_ping` / `send_set_attribute`).
    pub fn recv_ok(&mut self) -> Result<()> {
        let p = self.recv_payload()?;
        parse(&p, |r| {
            r.finish()?;
            Ok(())
        })
    }

    /// Receive the next pipelined response as query hits (for
    /// `send_query_by_attributes`).
    pub fn recv_hits(&mut self) -> Result<Vec<(String, i64)>> {
        let p = self.recv_payload()?;
        parse(&p, get_hits)
    }

    // --- service topology and durability barriers ---

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.request(Op::Ping, &[]).map(drop)
    }

    /// Server topology and vitals (the `catalogInfo` op).
    pub fn catalog_info(&mut self) -> Result<CatalogInfoReport> {
        let p = self.request(Op::CatalogInfo, &[])?;
        parse(&p, |r| {
            let shards = r.u32()? as usize;
            let profile = r.str()?;
            let files = r.u64()?;
            let cache_enabled = r.bool()?;
            let _commit_epochs = get_u64s(r)?;
            let _durable_epochs = get_u64s(r)?;
            Ok(CatalogInfoReport { shards, profile, files, cache_enabled })
        })
    }

    /// Park on the server until shard 0's durable watermark covers
    /// `epoch`; returns the watermark.
    pub fn wait_for_epoch(&mut self, epoch: u64) -> Result<u64> {
        self.wait_for_epoch_on(0, epoch)
    }

    /// [`BinMcsClient::wait_for_epoch`] against one shard of a
    /// partitioned server.
    pub fn wait_for_epoch_on(&mut self, shard: usize, epoch: u64) -> Result<u64> {
        let mut a = Vec::new();
        put_i64(&mut a, epoch as i64);
        put_u32(&mut a, shard as u32);
        let p = self.request(Op::WaitForEpoch, &a)?;
        parse(&p, |r| r.u64())
    }

    /// Make every acknowledged write durable now; returns the epoch the
    /// barrier covered (shard 0's on a partitioned server).
    pub fn sync_now(&mut self) -> Result<u64> {
        let p = self.request(Op::SyncNow, &[])?;
        parse(&p, |r| {
            let epochs = get_u64s(r)?;
            Ok(epochs.first().copied().unwrap_or(0))
        })
    }

    /// Fetch the server's read-cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStatsReport> {
        let p = self.request(Op::CacheStats, &[])?;
        parse(&p, |r| {
            Ok(CacheStatsReport {
                enabled: r.bool()?,
                hits: r.u64()?,
                misses: r.u64()?,
                stale: r.u64()?,
                evictions: r.u64()?,
            })
        })
    }

    // --- files ---

    /// Create a logical file with creation-time attributes.
    pub fn create_file(&mut self, spec: &FileSpec) -> Result<LogicalFile> {
        let mut a = Vec::new();
        put_filespec(&mut a, spec);
        let p = self.request(Op::CreateFile, &a)?;
        parse(&p, get_file)
    }

    /// Create a batch of logical files in one server-side transaction
    /// (the `createFiles` bulk op): all-or-nothing per shard, results in
    /// input order. One round-trip and one commit replace N of each.
    pub fn create_files(&mut self, specs: &[FileSpec]) -> Result<Vec<LogicalFile>> {
        let mut a = Vec::new();
        put_u32(&mut a, specs.len() as u32);
        for s in specs {
            put_filespec(&mut a, s);
        }
        let p = self.request(Op::CreateFiles, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_file(r)).collect()
        })
    }

    /// Fetch a file (the paper's "simple query").
    pub fn get_file(&mut self, name: &str) -> Result<LogicalFile> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::GetFile, &a)?;
        parse(&p, get_file)
    }

    /// Fetch one version of a file.
    pub fn get_file_version(&mut self, name: &str, version: i64) -> Result<LogicalFile> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_i64(&mut a, version);
        let p = self.request(Op::GetFileVersion, &a)?;
        parse(&p, get_file)
    }

    /// All versions of a logical name.
    pub fn get_file_versions(&mut self, name: &str) -> Result<Vec<LogicalFile>> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::GetFileVersions, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_file(r)).collect()
        })
    }

    /// Update predefined attributes of a file.
    pub fn update_file(&mut self, name: &str, update: &FileUpdate) -> Result<LogicalFile> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_fileupdate(&mut a, update);
        let p = self.request(Op::UpdateFile, &a)?;
        parse(&p, get_file)
    }

    /// Mark a file invalid without deleting it.
    pub fn invalidate_file(&mut self, name: &str) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        self.request(Op::InvalidateFile, &a).map(drop)
    }

    /// Delete a file.
    pub fn delete_file(&mut self, name: &str) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        self.request(Op::DeleteFile, &a).map(drop)
    }

    /// Delete one version of a file.
    pub fn delete_file_version(&mut self, name: &str, version: i64) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_i64(&mut a, version);
        self.request(Op::DeleteFileVersion, &a).map(drop)
    }

    // --- collections ---

    /// Create a collection (optionally nested).
    pub fn create_collection(
        &mut self,
        name: &str,
        parent: Option<&str>,
        description: &str,
    ) -> Result<Collection> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_opt_str(&mut a, &parent.map(str::to_string));
        put_str(&mut a, description);
        let p = self.request(Op::CreateCollection, &a)?;
        parse(&p, get_collection)
    }

    /// Fetch a collection record.
    pub fn get_collection(&mut self, name: &str) -> Result<Collection> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::GetCollection, &a)?;
        parse(&p, get_collection)
    }

    /// Delete an empty collection.
    pub fn delete_collection(&mut self, name: &str) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        self.request(Op::DeleteCollection, &a).map(drop)
    }

    /// List a collection's direct contents.
    pub fn list_collection(&mut self, name: &str) -> Result<CollectionContents> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::ListCollection, &a)?;
        parse(&p, get_collection_contents)
    }

    /// Move a file into (or out of) a collection.
    pub fn assign_collection(&mut self, file: &str, collection: Option<&str>) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, file);
        put_opt_str(&mut a, &collection.map(str::to_string));
        self.request(Op::AssignCollection, &a).map(drop)
    }

    // --- views ---

    /// Create a logical view.
    pub fn create_view(&mut self, name: &str, description: &str) -> Result<View> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_str(&mut a, description);
        let p = self.request(Op::CreateView, &a)?;
        parse(&p, get_view)
    }

    /// Fetch a view record.
    pub fn get_view(&mut self, name: &str) -> Result<View> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::GetView, &a)?;
        parse(&p, get_view)
    }

    /// Delete a view.
    pub fn delete_view(&mut self, name: &str) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        self.request(Op::DeleteView, &a).map(drop)
    }

    /// Add a member to a view.
    pub fn add_to_view(&mut self, view: &str, member: &ObjectRef) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, view);
        put_objref(&mut a, member);
        self.request(Op::AddToView, &a).map(drop)
    }

    /// Remove a member from a view; returns whether it was present.
    pub fn remove_from_view(&mut self, view: &str, member: &ObjectRef) -> Result<bool> {
        let mut a = Vec::new();
        put_str(&mut a, view);
        put_objref(&mut a, member);
        let p = self.request(Op::RemoveFromView, &a)?;
        parse(&p, |r| r.bool())
    }

    /// List a view's members.
    pub fn list_view(&mut self, name: &str) -> Result<ViewContents> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        let p = self.request(Op::ListView, &a)?;
        parse(&p, get_view_contents)
    }

    // --- user-defined attributes and discovery ---

    /// Register a user-defined attribute.
    pub fn define_attribute(
        &mut self,
        name: &str,
        ty: AttrType,
        description: &str,
    ) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, name);
        put_attr_type(&mut a, ty);
        put_str(&mut a, description);
        self.request(Op::DefineAttribute, &a).map(drop)
    }

    /// Set (upsert) an attribute on an object.
    pub fn set_attribute(&mut self, object: &ObjectRef, attr: &Attribute) -> Result<()> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_attribute(&mut a, attr);
        self.request(Op::SetAttribute, &a).map(drop)
    }

    /// Remove an attribute; returns whether it was present.
    pub fn remove_attribute(&mut self, object: &ObjectRef, name: &str) -> Result<bool> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_str(&mut a, name);
        let p = self.request(Op::RemoveAttribute, &a)?;
        parse(&p, |r| r.bool())
    }

    /// Fetch an object's user-defined attributes.
    pub fn get_attributes(&mut self, object: &ObjectRef) -> Result<Vec<Attribute>> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        let p = self.request(Op::GetAttributes, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_attribute(r)).collect()
        })
    }

    /// Attribute-based discovery (the paper's "complex query").
    pub fn query_by_attributes(&mut self, preds: &[AttrPredicate]) -> Result<Vec<(String, i64)>> {
        let mut a = Vec::new();
        put_u32(&mut a, preds.len() as u32);
        for pr in preds {
            put_predicate(&mut a, pr);
        }
        let p = self.request(Op::QueryByAttributes, &a)?;
        parse(&p, get_hits)
    }

    /// EXPLAIN for [`BinMcsClient::query_by_attributes`]: the planner's
    /// chosen strategy, one line per predicate step.
    pub fn explain_query(&mut self, preds: &[AttrPredicate]) -> Result<Vec<String>> {
        let mut a = Vec::new();
        put_u32(&mut a, preds.len() as u32);
        for pr in preds {
            put_predicate(&mut a, pr);
        }
        let p = self.request(Op::ExplainQuery, &a)?;
        parse(&p, get_strs)
    }

    // --- annotations, audit, history ---

    /// Attach a free-text annotation to an object.
    pub fn annotate(&mut self, object: &ObjectRef, text: &str) -> Result<()> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_str(&mut a, text);
        self.request(Op::Annotate, &a).map(drop)
    }

    /// Fetch annotations on an object.
    pub fn get_annotations(&mut self, object: &ObjectRef) -> Result<Vec<Annotation>> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        let p = self.request(Op::GetAnnotations, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_annotation(r)).collect()
        })
    }

    /// Fetch the audit trail of an object.
    pub fn get_audit_trail(&mut self, object: &ObjectRef) -> Result<Vec<AuditRecord>> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        let p = self.request(Op::GetAuditTrail, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_audit(r)).collect()
        })
    }

    /// Enable or disable per-access auditing on an object.
    pub fn set_audit(&mut self, object: &ObjectRef, enabled: bool) -> Result<()> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_bool(&mut a, enabled);
        self.request(Op::SetAudit, &a).map(drop)
    }

    /// Append a transformation-history record to a file.
    pub fn add_history(&mut self, file: &str, description: &str) -> Result<()> {
        let mut a = Vec::new();
        put_str(&mut a, file);
        put_str(&mut a, description);
        self.request(Op::AddHistory, &a).map(drop)
    }

    /// Fetch a file's transformation history.
    pub fn get_history(&mut self, file: &str) -> Result<Vec<HistoryRecord>> {
        let mut a = Vec::new();
        put_str(&mut a, file);
        let p = self.request(Op::GetHistory, &a)?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_history(r)).collect()
        })
    }

    // --- policy ---

    /// Grant a permission on an object.
    pub fn grant(
        &mut self,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_str(&mut a, principal);
        put_permission(&mut a, perm);
        self.request(Op::Grant, &a).map(drop)
    }

    /// Revoke a permission.
    pub fn revoke(
        &mut self,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        let mut a = Vec::new();
        put_objref(&mut a, object);
        put_str(&mut a, principal);
        put_permission(&mut a, perm);
        self.request(Op::Revoke, &a).map(drop)
    }

    // --- registries ---

    /// Register a metadata writer.
    pub fn register_user(&mut self, user: &UserRecord) -> Result<()> {
        let mut a = Vec::new();
        put_user(&mut a, user);
        self.request(Op::RegisterUser, &a).map(drop)
    }

    /// Fetch a metadata writer by DN.
    pub fn get_user(&mut self, dn: &str) -> Result<UserRecord> {
        let mut a = Vec::new();
        put_str(&mut a, dn);
        let p = self.request(Op::GetUser, &a)?;
        parse(&p, get_user)
    }

    /// List all metadata writers.
    pub fn list_users(&mut self) -> Result<Vec<UserRecord>> {
        let p = self.request(Op::ListUsers, &[])?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_user(r)).collect()
        })
    }

    /// Register an external catalog pointer.
    pub fn register_external_catalog(&mut self, cat: &ExternalCatalog) -> Result<()> {
        let mut a = Vec::new();
        put_extcat(&mut a, cat);
        self.request(Op::RegisterExternalCatalog, &a).map(drop)
    }

    /// List external catalogs.
    pub fn list_external_catalogs(&mut self) -> Result<Vec<ExternalCatalog>> {
        let p = self.request(Op::ListExternalCatalogs, &[])?;
        parse(&p, |r| {
            let n = r.seq_len()?;
            (0..n).map(|_| get_extcat(r)).collect()
        })
    }
}

/// Decode a full response payload with `f`, requiring every byte
/// consumed — trailing bytes mean client and server disagree about the
/// payload shape, which must surface, not be ignored.
fn parse<T>(payload: &[u8], f: impl FnOnce(&mut Reader) -> FrameResult<T>) -> Result<T> {
    let mut r = Reader::new(payload);
    let v = f(&mut r).map_err(decode_err)?;
    r.finish().map_err(decode_err)?;
    Ok(v)
}

/// Alias for the codec's result type (used by `parse` closures).
type FrameResult<T> = std::result::Result<T, FrameError>;

fn frame_err(e: std::io::Error) -> NetError {
    NetError::Frame(e.to_string())
}

fn decode_err(e: FrameError) -> NetError {
    NetError::Frame(e.to_string())
}
