//! The MCS web service: every catalog operation exposed as a SOAP method
//! (the Tomcat/Axis deployment of the paper, Figure 4).

use std::sync::Arc;

use mcs::{McsError, Mcs, ShardedCatalog};
use soapstack::server::{Handler, HttpServer, SoapDispatcher};
use soapstack::xml::{Element, XmlError};
use soapstack::{Fault, Request, Response};

use crate::wire::*;

/// Structured fault-code suffix for each [`McsError`] variant, so the
/// client can reconstruct the error kind.
pub fn fault_kind(e: &McsError) -> &'static str {
    match e {
        McsError::NotFound(_) => "NotFound",
        McsError::AlreadyExists(_) => "AlreadyExists",
        McsError::PermissionDenied { .. } => "PermissionDenied",
        McsError::InvalidName(_) => "InvalidName",
        McsError::CycleDetected(_) => "CycleDetected",
        McsError::AlreadyInCollection { .. } => "AlreadyInCollection",
        McsError::CollectionNotEmpty(_) => "CollectionNotEmpty",
        McsError::BadAttribute(_) => "BadAttribute",
        McsError::VersionConflict(_) => "VersionConflict",
        McsError::DurabilityLost(_) => "DurabilityLost",
        McsError::Db(_) => "Db",
        McsError::Internal(_) => "Internal",
    }
}

pub(crate) fn fault_of(e: McsError) -> Fault {
    Fault { code: format!("soap:Server.{}", fault_kind(&e)), message: e.to_string() }
}

pub(crate) fn fault_of_xml(e: XmlError) -> Fault {
    Fault { code: "soap:Client.BadArguments".into(), message: e.to_string() }
}

type MethodResult = std::result::Result<Element, Fault>;

fn ok() -> Element {
    Element::new("r").child(Element::new("ok"))
}

fn wrap(children: Vec<Element>) -> Element {
    let mut r = Element::new("r");
    for c in children {
        r = r.child(c);
    }
    r
}

/// Parse the per-request `mcs:durability` attribute on the method element
/// (the SOAP header clients use to relax or harden one call's commit
/// policy — see DESIGN.md §7.2). `group`/`async` use the server's
/// default batching window.
fn durability_override(
    call: &Element,
) -> std::result::Result<Option<crate::client::DurabilityMode>, Fault> {
    let Some(v) = call.attr_value("mcs:durability") else { return Ok(None) };
    match v {
        "always" => Ok(Some(crate::client::DurabilityMode::Always)),
        "group" => Ok(Some(crate::client::DurabilityMode::Group)),
        "async" => Ok(Some(crate::client::DurabilityMode::Async)),
        other => Err(Fault {
            code: "soap:Client.BadArguments".into(),
            message: format!(
                "unknown mcs:durability mode `{other}` (expected always|group|async)"
            ),
        }),
    }
}

/// Parse the per-request `mcs:cache` attribute on the method element.
/// `bypass` makes every read in this call execute the uncached path — the
/// escape hatch for clients that must observe the raw tables (or measure
/// them, as the fig14 A/B does). Anything else is rejected.
fn cache_bypass(call: &Element) -> std::result::Result<bool, Fault> {
    match call.attr_value("mcs:cache") {
        None => Ok(false),
        Some("bypass") => Ok(true),
        Some(other) => Err(Fault {
            code: "soap:Client.BadArguments".into(),
            message: format!("unknown mcs:cache mode `{other}` (expected bypass)"),
        }),
    }
}

fn reg<F>(d: &mut SoapDispatcher, catalog: &Arc<ShardedCatalog>, name: &str, f: F)
where
    F: Fn(&ShardedCatalog, &Element) -> MethodResult + Send + Sync + 'static,
{
    let catalog = Arc::clone(catalog);
    d.register(name, move |call| {
        // Every method passes through here: decode the per-request
        // headers into the CallScope both wire front ends share, then
        // run under it — the scope applies the durability override (if
        // any) and the cache bypass, and reports the commit epoch of
        // whatever the operation logged, so an async-acknowledged client
        // has the handle it needs for waitForEpoch. Epochs are per shard,
        // so a sharded catalog also echoes which shard the commit landed
        // on.
        let scope = crate::dispatch::CallScope {
            durability: durability_override(call)?,
            cache_bypass: cache_bypass(call)?,
        };
        let (result, epoch, shard) =
            crate::dispatch::run_scoped(&catalog, scope, |c| f(c, call));
        let mut el = result?;
        if epoch > 0 {
            el.attrs.push(("xmlns:mcs".into(), soapstack::soap::MCS_NS.into()));
            el.attrs.push(("mcs:epoch".into(), epoch.to_string()));
            if catalog.shards() > 1 {
                el.attrs.push(("mcs:shard".into(), shard.to_string()));
            }
        }
        Ok(el)
    });
}

fn epoch_list(epochs: &[u64]) -> String {
    epochs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
}

/// Register every MCS operation on a dispatcher.
pub fn register_methods(d: &mut SoapDispatcher, catalog: Arc<ShardedCatalog>) {
    let d = d;
    let mcs = &catalog;

    // --- service topology ---
    reg(d, mcs, "catalogInfo", |mcs, call| {
        let _cred = credential_from(call).map_err(fault_of_xml)?;
        Ok(wrap(vec![
            text_el("shards", mcs.shards().to_string()),
            text_el("profile", format!("{:?}", mcs.index_profile())),
            text_el("files", mcs.file_count().map_err(fault_of)?.to_string()),
            text_el("cacheEnabled", mcs.cache_enabled().to_string()),
            text_el("commitEpochs", epoch_list(&mcs.commit_epochs())),
            text_el("durableEpochs", epoch_list(&mcs.durable_epochs())),
        ]))
    });

    // --- durability (DESIGN.md §7.2, per shard §7.4) ---
    reg(d, mcs, "waitForEpoch", |mcs, call| {
        let _cred = credential_from(call).map_err(fault_of_xml)?;
        let epoch = req_i64(call, "epoch").map_err(fault_of_xml)?;
        if epoch < 0 {
            return Err(fault_of_xml(XmlError::Shape("epoch must be >= 0".into())));
        }
        // Epochs are per shard: an async write's echoed `mcs:shard` comes
        // back here. Absent (a single-shard catalog, or a legacy client)
        // it defaults to shard 0.
        let shard = match opt_text(call, "shard") {
            None => 0,
            Some(s) => s.parse::<usize>().map_err(|_| {
                fault_of_xml(XmlError::Shape("shard must be a non-negative integer".into()))
            })?,
        };
        if shard >= mcs.shards() {
            return Err(fault_of_xml(XmlError::Shape(format!(
                "shard {shard} out of range (catalog has {})",
                mcs.shards()
            ))));
        }
        mcs.wait_for_epoch(shard, epoch as u64).map_err(fault_of)?;
        let durable = mcs.durable_epoch(shard).map_err(fault_of)?;
        Ok(wrap(vec![text_el("durableEpoch", durable.to_string())]))
    });
    reg(d, mcs, "syncNow", |mcs, call| {
        let _cred = credential_from(call).map_err(fault_of_xml)?;
        let epochs = mcs.sync_now().map_err(fault_of)?;
        let mut children = vec![text_el("durableEpoch", epochs[0].to_string())];
        if mcs.shards() > 1 {
            children.push(text_el("shards", mcs.shards().to_string()));
            children.push(text_el("shardEpochs", epoch_list(&epochs)));
        }
        Ok(wrap(children))
    });

    // --- read cache (DESIGN.md §7.3; aggregated across shards) ---
    reg(d, mcs, "cacheStats", |mcs, call| {
        let _cred = credential_from(call).map_err(fault_of_xml)?;
        let stats = mcs.cache_stats().unwrap_or_default();
        let mut children = vec![
            text_el("enabled", mcs.cache_enabled().to_string()),
            text_el("hits", stats.hits.to_string()),
            text_el("misses", stats.misses.to_string()),
            text_el("stale", stats.stale.to_string()),
            text_el("evictions", stats.evictions.to_string()),
        ];
        if mcs.shards() > 1 {
            children.push(text_el("shards", mcs.shards().to_string()));
        }
        Ok(wrap(children))
    });

    // --- files ---
    reg(d, mcs, "ping", |_mcs, _call| Ok(ok()));
    reg(d, mcs, "createFile", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let spec =
            filespec_from(call.expect("fileSpec").map_err(fault_of_xml)?).map_err(fault_of_xml)?;
        let f = mcs.create_file(&cred, &spec).map_err(fault_of)?;
        Ok(wrap(vec![file_el(&f)]))
    });
    reg(d, mcs, "createFiles", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let specs: Vec<_> = call
            .find_all("fileSpec")
            .map(filespec_from)
            .collect::<crate::wire::Result<_>>()
            .map_err(fault_of_xml)?;
        let fs = mcs.create_files(&cred, &specs).map_err(fault_of)?;
        Ok(wrap(fs.iter().map(file_el).collect()))
    });
    reg(d, mcs, "getFile", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let f = mcs.get_file(&cred, &name).map_err(fault_of)?;
        Ok(wrap(vec![file_el(&f)]))
    });
    reg(d, mcs, "getFileVersion", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let version = req_i64(call, "version").map_err(fault_of_xml)?;
        let f = mcs.get_file_version(&cred, &name, version).map_err(fault_of)?;
        Ok(wrap(vec![file_el(&f)]))
    });
    reg(d, mcs, "getFileVersions", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let fs = mcs.get_file_versions(&cred, &name).map_err(fault_of)?;
        Ok(wrap(fs.iter().map(file_el).collect()))
    });
    reg(d, mcs, "updateFile", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let upd = fileupdate_from(call.expect("fileUpdate").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        let f = mcs.update_file(&cred, &name, &upd).map_err(fault_of)?;
        Ok(wrap(vec![file_el(&f)]))
    });
    reg(d, mcs, "invalidateFile", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        mcs.invalidate_file(&cred, &name).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "deleteFile", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        mcs.delete_file(&cred, &name).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "deleteFileVersion", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let version = req_i64(call, "version").map_err(fault_of_xml)?;
        mcs.delete_file_version(&cred, &name, version).map_err(fault_of)?;
        Ok(ok())
    });

    // --- collections ---
    reg(d, mcs, "createCollection", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let parent = opt_text(call, "parent");
        let description = opt_text(call, "description").unwrap_or_default();
        let c = mcs
            .create_collection(&cred, &name, parent.as_deref(), &description)
            .map_err(fault_of)?;
        Ok(wrap(vec![collection_el(&c)]))
    });
    reg(d, mcs, "getCollection", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let c = mcs.get_collection(&cred, &name).map_err(fault_of)?;
        Ok(wrap(vec![collection_el(&c)]))
    });
    reg(d, mcs, "deleteCollection", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        mcs.delete_collection(&cred, &name).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "listCollection", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let c = mcs.list_collection(&cred, &name).map_err(fault_of)?;
        Ok(wrap(vec![collection_contents_el(&c)]))
    });
    reg(d, mcs, "assignCollection", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let file = req_text(call, "file").map_err(fault_of_xml)?;
        let collection = opt_text(call, "collection");
        mcs.assign_collection(&cred, &file, collection.as_deref()).map_err(fault_of)?;
        Ok(ok())
    });

    // --- views ---
    reg(d, mcs, "createView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let description = opt_text(call, "description").unwrap_or_default();
        let v = mcs.create_view(&cred, &name, &description).map_err(fault_of)?;
        Ok(wrap(vec![view_el(&v)]))
    });
    reg(d, mcs, "getView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let v = mcs.get_view(&cred, &name).map_err(fault_of)?;
        Ok(wrap(vec![view_el(&v)]))
    });
    reg(d, mcs, "deleteView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        mcs.delete_view(&cred, &name).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "addToView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let view = req_text(call, "view").map_err(fault_of_xml)?;
        let member = objref_from(call).map_err(fault_of_xml)?;
        mcs.add_to_view(&cred, &view, &member).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "removeFromView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let view = req_text(call, "view").map_err(fault_of_xml)?;
        let member = objref_from(call).map_err(fault_of_xml)?;
        let was = mcs.remove_from_view(&cred, &view, &member).map_err(fault_of)?;
        Ok(wrap(vec![text_el("removed", was.to_string())]))
    });
    reg(d, mcs, "listView", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let c = mcs.list_view(&cred, &name).map_err(fault_of)?;
        Ok(wrap(vec![view_contents_el(&c)]))
    });

    // --- attributes & queries ---
    reg(d, mcs, "defineAttribute", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let ty = attr_type_from(&req_text(call, "attrType").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        let description = opt_text(call, "description").unwrap_or_default();
        mcs.define_attribute(&cred, &name, ty, &description).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "setAttribute", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let attr = attribute_from(call.expect("attribute").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        mcs.set_attribute(&cred, &object, &attr).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "removeAttribute", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let name = req_text(call, "name").map_err(fault_of_xml)?;
        let was = mcs.remove_attribute(&cred, &object, &name).map_err(fault_of)?;
        Ok(wrap(vec![text_el("removed", was.to_string())]))
    });
    reg(d, mcs, "getAttributes", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let attrs = mcs.get_attributes(&cred, &object).map_err(fault_of)?;
        Ok(wrap(attrs.iter().map(attribute_el).collect()))
    });
    reg(d, mcs, "queryByAttributes", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let preds: Vec<_> = call
            .find_all("predicate")
            .map(predicate_from)
            .collect::<crate::wire::Result<_>>()
            .map_err(fault_of_xml)?;
        let hits = mcs.query_by_attributes(&cred, &preds).map_err(fault_of)?;
        Ok(wrap(vec![hits_el(&hits)]))
    });
    reg(d, mcs, "explainQuery", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let preds: Vec<_> = call
            .find_all("predicate")
            .map(predicate_from)
            .collect::<crate::wire::Result<_>>()
            .map_err(fault_of_xml)?;
        let lines = mcs.explain_query(&cred, &preds).map_err(fault_of)?;
        let mut plan = Element::new("plan");
        for l in lines {
            plan = plan.child(text_el("step", l));
        }
        Ok(wrap(vec![plan]))
    });

    // --- annotations, audit, history ---
    reg(d, mcs, "annotate", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let text = req_text(call, "text").map_err(fault_of_xml)?;
        mcs.annotate(&cred, &object, &text).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "getAnnotations", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let anns = mcs.get_annotations(&cred, &object).map_err(fault_of)?;
        Ok(wrap(anns.iter().map(annotation_el).collect()))
    });
    reg(d, mcs, "getAuditTrail", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let recs = mcs.get_audit_trail(&cred, &object).map_err(fault_of)?;
        Ok(wrap(recs.iter().map(audit_el).collect()))
    });
    reg(d, mcs, "setAudit", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let enabled = req_bool(call, "enabled").map_err(fault_of_xml)?;
        mcs.set_audit(&cred, &object, enabled).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "addHistory", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let file = req_text(call, "file").map_err(fault_of_xml)?;
        let description = req_text(call, "description").map_err(fault_of_xml)?;
        mcs.add_history(&cred, &file, &description).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "getHistory", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let file = req_text(call, "file").map_err(fault_of_xml)?;
        let recs = mcs.get_history(&cred, &file).map_err(fault_of)?;
        Ok(wrap(recs.iter().map(history_el).collect()))
    });

    // --- policy ---
    reg(d, mcs, "grant", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let principal = req_text(call, "principal").map_err(fault_of_xml)?;
        let perm = permission_from(&req_text(call, "permission").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        mcs.grant(&cred, &object, &principal, perm).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "revoke", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let object = objref_from(call).map_err(fault_of_xml)?;
        let principal = req_text(call, "principal").map_err(fault_of_xml)?;
        let perm = permission_from(&req_text(call, "permission").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        mcs.revoke(&cred, &object, &principal, perm).map_err(fault_of)?;
        Ok(ok())
    });

    // --- registries ---
    reg(d, mcs, "registerUser", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let user =
            user_from(call.expect("user").map_err(fault_of_xml)?).map_err(fault_of_xml)?;
        mcs.register_user(&cred, &user).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "getUser", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let dn = req_text(call, "dn").map_err(fault_of_xml)?;
        let u = mcs.get_user(&cred, &dn).map_err(fault_of)?;
        Ok(wrap(vec![user_el(&u)]))
    });
    reg(d, mcs, "listUsers", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let us = mcs.list_users(&cred).map_err(fault_of)?;
        Ok(wrap(us.iter().map(user_el).collect()))
    });
    reg(d, mcs, "registerExternalCatalog", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let cat = extcat_from(call.expect("externalCatalog").map_err(fault_of_xml)?)
            .map_err(fault_of_xml)?;
        mcs.register_external_catalog(&cred, &cat).map_err(fault_of)?;
        Ok(ok())
    });
    reg(d, mcs, "listExternalCatalogs", |mcs, call| {
        let cred = credential_from(call).map_err(fault_of_xml)?;
        let cats = mcs.list_external_catalogs(&cred).map_err(fault_of)?;
        Ok(wrap(cats.iter().map(extcat_el).collect()))
    });
}

/// HTTP handler serving SOAP on POST and the service description on GET.
pub struct McsHandler {
    dispatcher: SoapDispatcher,
    wsdl: String,
}

impl Handler for McsHandler {
    fn handle(&self, req: &Request) -> Response {
        if req.method == "GET" {
            return Response::ok("text/xml; charset=utf-8", self.wsdl.clone().into_bytes());
        }
        self.dispatcher.handle(req)
    }
}

/// A running MCS web service.
pub struct McsServer {
    http: HttpServer,
}

impl McsServer {
    /// Expose `mcs` at `http://{bind_addr}/mcs` with `workers` pool
    /// threads (the paper's Tomcat deployment).
    pub fn start(mcs: Arc<Mcs>, bind_addr: &str, workers: usize) -> std::io::Result<McsServer> {
        Self::start_sharded(Arc::new(ShardedCatalog::from_single(mcs)), bind_addr, workers)
    }

    /// Expose a hash-partitioned catalog ([mcs::ShardedCatalog]) over the
    /// same wire surface. With one shard this is identical to [Self::start].
    pub fn start_sharded(
        catalog: Arc<ShardedCatalog>,
        bind_addr: &str,
        workers: usize,
    ) -> std::io::Result<McsServer> {
        let mut dispatcher = SoapDispatcher::new();
        register_methods(&mut dispatcher, catalog);
        let wsdl = crate::wsdl::describe(&dispatcher);
        let handler = Arc::new(McsHandler { dispatcher, wsdl });
        let http = HttpServer::start(bind_addr, handler, workers)?;
        Ok(McsServer { http })
    }

    /// The bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.addr()
    }

    /// HTTP-level statistics.
    pub fn stats(&self) -> &soapstack::server::ServerStats {
        &self.http.stats
    }

    /// Stop the server (also happens on drop).
    pub fn stop(&mut self) {
        self.http.stop();
    }
}
