//! WSDL-style service description. The original MCS generated its Java
//! client stubs from a WSDL document; we emit a compact equivalent listing
//! every operation (enough for discovery and for humans, not for stub
//! generation — our client is hand-written and tested against the server).

use soapstack::server::SoapDispatcher;
use soapstack::soap::MCS_NS;
use soapstack::xml::Element;

/// Produce the service-description XML for a dispatcher's methods.
pub fn describe(d: &SoapDispatcher) -> String {
    let mut port = Element::new("portType").attr("name", "MetadataCatalogService");
    for name in d.method_names() {
        port = port.child(
            Element::new("operation")
                .attr("name", name)
                .child(Element::new("input").attr("message", format!("m:{name}")))
                .child(Element::new("output").attr("message", format!("m:{name}Response"))),
        );
    }
    let defs = Element::new("definitions")
        .attr("targetNamespace", MCS_NS)
        .attr("xmlns:m", MCS_NS)
        .child(
            Element::new("documentation").text(
                "Metadata Catalog Service (MCS) — reproduction of Singh et al., SC'03. \
                 Stores and queries descriptive (logical) metadata for data-intensive \
                 applications. Write operations accept an mcs:durability attribute \
                 (always|group|async) on the method element and echo an mcs:epoch \
                 attribute on the response; waitForEpoch/syncNow turn asynchronous \
                 acknowledgements into durable ones.",
            ),
        )
        .child(port);
    format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>{}", defs.to_xml())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_registered_methods() {
        let mut d = SoapDispatcher::new();
        d.register("beta", |_| Ok(Element::new("r")));
        d.register("alpha", |_| Ok(Element::new("r")));
        let wsdl = describe(&d);
        let doc = soapstack::xml::parse(wsdl.trim_start_matches("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")).unwrap();
        let port = doc.expect("portType").unwrap();
        let names: Vec<&str> =
            port.find_all("operation").filter_map(|o| o.attr_value("name")).collect();
        assert_eq!(names, vec!["alpha", "beta"]); // sorted
    }
}
