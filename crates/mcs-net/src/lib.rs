//! # mcs-net — the MCS web service and client
//!
//! Exposes the Metadata Catalog Service over SOAP/HTTP (the Tomcat+Axis
//! deployment of the paper's Figure 4) and provides a synchronous client
//! mirroring the original Java client API. The measured gap between
//! calling [`mcs::Mcs`] directly and through this layer *is* the paper's
//! headline web-service overhead (≈4.8× on adds).

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;
pub mod wsdl;

pub use client::{CacheStatsReport, CatalogInfoReport, DurabilityMode, FaultKind, McsClient, NetError};
pub use server::{register_methods, McsServer};
