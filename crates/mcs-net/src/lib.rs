//! # mcs-net — the MCS web service and client
//!
//! Exposes the Metadata Catalog Service over SOAP/HTTP (the Tomcat+Axis
//! deployment of the paper's Figure 4) and provides a synchronous client
//! mirroring the original Java client API. The measured gap between
//! calling [`mcs::Mcs`] directly and through this layer *is* the paper's
//! headline web-service overhead (≈4.8× on adds).
//!
//! Beside SOAP sits [`binproto`], a pipelined length-prefixed binary
//! wire protocol serving the same operations through the same
//! per-request [`dispatch`] scope — the paper's §6.3 "the WS stack is
//! the bottleneck" finding, answered. The two front ends are proven
//! equivalent by a seeded cross-protocol twin suite.

#![warn(missing_docs)]

pub mod binproto;
pub mod client;
pub mod dispatch;
pub mod server;
pub mod wire;
pub mod wsdl;

pub use binproto::{BinMcsClient, BinServer};
pub use client::{CacheStatsReport, CatalogInfoReport, DurabilityMode, FaultKind, McsClient, NetError};
pub use server::{register_methods, McsServer};
