//! Synchronous MCS client — the counterpart of the paper's Java client
//! API, one method per catalog operation.

use std::fmt;

use mcs::{
    Annotation, AttrPredicate, AttrType, Attribute, AuditRecord, Collection,
    CollectionContents, Credential, ExternalCatalog, FileSpec, FileUpdate, HistoryRecord,
    LogicalFile, ObjectRef, Permission, UserRecord, View, ViewContents,
};
use soapstack::xml::{Element, XmlError};
use soapstack::{SoapClient, SoapError, TransportOpts};

use crate::wire::*;

/// Error kind reconstructed from a structured server fault code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Object not found.
    NotFound,
    /// Name collision.
    AlreadyExists,
    /// Authorization failure.
    PermissionDenied,
    /// Name validation failure.
    InvalidName,
    /// Cycle would be created.
    CycleDetected,
    /// File already in a collection.
    AlreadyInCollection,
    /// Collection not empty.
    CollectionNotEmpty,
    /// Attribute definition/type problem.
    BadAttribute,
    /// Ambiguous or missing version.
    VersionConflict,
    /// An async-acknowledged write can no longer become durable (server
    /// log failure after the ack); surfaced by `wait_for_epoch`/`sync_now`.
    DurabilityLost,
    /// Server-side database error.
    Db,
    /// Anything else server-side.
    Internal,
    /// Request was malformed (client-side fault).
    BadArguments,
    /// Unrecognized fault code.
    Unknown,
}

impl FaultKind {
    pub(crate) fn from_code(code: &str) -> FaultKind {
        match code.rsplit('.').next().unwrap_or("") {
            "NotFound" => FaultKind::NotFound,
            "AlreadyExists" => FaultKind::AlreadyExists,
            "PermissionDenied" => FaultKind::PermissionDenied,
            "InvalidName" => FaultKind::InvalidName,
            "CycleDetected" => FaultKind::CycleDetected,
            "AlreadyInCollection" => FaultKind::AlreadyInCollection,
            "CollectionNotEmpty" => FaultKind::CollectionNotEmpty,
            "BadAttribute" => FaultKind::BadAttribute,
            "VersionConflict" => FaultKind::VersionConflict,
            "DurabilityLost" => FaultKind::DurabilityLost,
            "Db" => FaultKind::Db,
            "Internal" => FaultKind::Internal,
            "BadArguments" => FaultKind::BadArguments,
            _ => FaultKind::Unknown,
        }
    }
}

/// Client-side errors.
#[derive(Debug)]
pub enum NetError {
    /// The server reported a fault.
    Fault {
        /// Reconstructed error kind.
        kind: FaultKind,
        /// Server message.
        message: String,
    },
    /// Transport or envelope failure.
    Soap(SoapError),
    /// The response did not have the expected shape.
    Shape(XmlError),
    /// Binary-protocol transport or framing failure
    /// ([`crate::BinMcsClient`]).
    Frame(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Fault { kind, message } => write!(f, "MCS fault ({kind:?}): {message}"),
            NetError::Soap(e) => write!(f, "{e}"),
            NetError::Shape(e) => write!(f, "bad response: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<SoapError> for NetError {
    fn from(e: SoapError) -> Self {
        match e {
            SoapError::Fault(fl) => NetError::Fault {
                kind: FaultKind::from_code(&fl.code),
                message: fl.message,
            },
            other => NetError::Soap(other),
        }
    }
}

impl From<XmlError> for NetError {
    fn from(e: XmlError) -> Self {
        NetError::Shape(e)
    }
}

impl NetError {
    /// Is this a fault of the given kind?
    pub fn is(&self, kind: FaultKind) -> bool {
        matches!(self, NetError::Fault { kind: k, .. } if *k == kind)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, NetError>;

/// Per-request commit durability a client can ask of the server (the
/// `mcs:durability` header; see DESIGN.md §7.2). `Async` trades bounded
/// durability lag for immediate acknowledgement — the server echoes a
/// commit epoch with each write, and [`McsClient::wait_for_epoch`] /
/// [`McsClient::sync_now`] turn the weak ack into a hard one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// One fsync per commit before the response (the default).
    Always,
    /// Commit parks until a group-commit leader has synced its batch.
    Group,
    /// Commit is acknowledged as soon as its log position is fixed; the
    /// response carries the commit epoch.
    Async,
}

impl DurabilityMode {
    fn header_value(self) -> &'static str {
        match self {
            DurabilityMode::Always => "always",
            DurabilityMode::Group => "group",
            DurabilityMode::Async => "async",
        }
    }
}

/// Server-side read-cache counters as reported by the `cacheStats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsReport {
    /// Whether the server has a read cache at all.
    pub enabled: bool,
    /// Entries served without re-executing the read.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries discarded because a table version moved (counted in
    /// `misses` too).
    pub stale: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

/// Server topology and vitals as reported by the `catalogInfo` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogInfoReport {
    /// Number of hash-partitioned backends behind the endpoint (1 for an
    /// unsharded catalog).
    pub shards: usize,
    /// The server's index profile, e.g. `Paper2003`.
    pub profile: String,
    /// Total logical files across all shards.
    pub files: u64,
    /// Whether the server has a read cache.
    pub cache_enabled: bool,
}

/// A synchronous client bound to one MCS endpoint and one credential.
pub struct McsClient {
    soap: SoapClient,
    cred: Credential,
    /// When set, every request carries `mcs:durability="<mode>"`.
    durability: Option<DurabilityMode>,
    /// When true, every request carries `mcs:cache="bypass"`.
    cache_bypass: bool,
    /// Commit epoch echoed by the last write response (0 if the last
    /// call logged nothing or predates this feature).
    last_epoch: u64,
    /// Shard the last echoed epoch belongs to (0 unless the server is
    /// sharded and said otherwise).
    last_shard: usize,
}

impl McsClient {
    /// Connect to `addr` (e.g. `127.0.0.1:8080`) as `cred`, with default
    /// transport options (connection per call, no simulated latency).
    pub fn connect(addr: impl Into<String>, cred: Credential) -> McsClient {
        McsClient::with_opts(addr, cred, TransportOpts::default())
    }

    /// Connect with explicit transport options.
    pub fn with_opts(
        addr: impl Into<String>,
        cred: Credential,
        opts: TransportOpts,
    ) -> McsClient {
        McsClient {
            soap: SoapClient::with_opts(addr, "/mcs", opts),
            cred,
            durability: None,
            cache_bypass: false,
            last_epoch: 0,
            last_shard: 0,
        }
    }

    /// The credential this client acts as.
    pub fn credential(&self) -> &Credential {
        &self.cred
    }

    /// Ask the server for a per-request commit durability (`None` reverts
    /// to the server's store-wide policy). With
    /// [`DurabilityMode::Async`], writes return as soon as their log
    /// position is fixed; read the echoed epoch with
    /// [`McsClient::last_epoch`] and barrier with
    /// [`McsClient::wait_for_epoch`] or [`McsClient::sync_now`].
    pub fn set_durability(&mut self, mode: Option<DurabilityMode>) {
        self.durability = mode;
    }

    /// The commit epoch the server echoed on the most recent response (0
    /// if that call logged nothing). Pass it to
    /// [`McsClient::wait_for_epoch`] to make the write durable.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The shard [`McsClient::last_epoch`] belongs to. Epochs are per
    /// shard on a partitioned server (`mcs:shard` response attribute);
    /// always 0 against a single-shard catalog.
    pub fn last_shard(&self) -> usize {
        self.last_shard
    }

    /// Ask the server to skip its read cache for this client's requests
    /// (the `mcs:cache="bypass"` attribute; see DESIGN.md §7.3). The
    /// bypass is per-request — other clients and the cache itself are
    /// unaffected — which makes it the tool for A/B measurements and
    /// for forcing a read straight from the store.
    pub fn set_cache_bypass(&mut self, bypass: bool) {
        self.cache_bypass = bypass;
    }

    /// Fetch the server's read-cache counters (the `cacheStats` op).
    pub fn cache_stats(&mut self) -> Result<CacheStatsReport> {
        let r = self.call("cacheStats", Element::new("a"))?;
        Ok(CacheStatsReport {
            enabled: req_text(&r, "enabled")? == "true",
            hits: req_text(&r, "hits")?.parse().unwrap_or(0),
            misses: req_text(&r, "misses")?.parse().unwrap_or(0),
            stale: req_text(&r, "stale")?.parse().unwrap_or(0),
            evictions: req_text(&r, "evictions")?.parse().unwrap_or(0),
        })
    }

    fn call(&mut self, method: &str, mut args: Element) -> Result<Element> {
        // Every call carries the credential (the GSI context of the
        // original would ride the TLS layer instead).
        args.children.insert(0, soapstack::xml::Node::Element(credential_el(&self.cred)));
        if self.durability.is_some() || self.cache_bypass {
            args = args.attr("xmlns:mcs", soapstack::soap::MCS_NS);
        }
        if let Some(mode) = self.durability {
            args = args.attr("mcs:durability", mode.header_value());
        }
        if self.cache_bypass {
            args = args.attr("mcs:cache", "bypass");
        }
        let r = self.soap.call(method, args)?;
        // writes echo the commit epoch of whatever they logged (and the
        // shard it landed on, when the server is partitioned)
        self.last_epoch = r
            .attr_value("mcs:epoch")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        self.last_shard = r
            .attr_value("mcs:shard")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        Ok(r)
    }

    // --- durability barriers (DESIGN.md §7.2) ---

    /// Park on the server until the durable-epoch watermark covers
    /// `epoch` (a value from [`McsClient::last_epoch`]); returns the
    /// watermark. Fails with [`FaultKind::DurabilityLost`] if the
    /// server's log writer broke while the epoch was pending.
    pub fn wait_for_epoch(&mut self, epoch: u64) -> Result<u64> {
        self.wait_for_epoch_on(0, epoch)
    }

    /// [`McsClient::wait_for_epoch`] against one shard of a partitioned
    /// server: epochs are per shard, so pair the epoch with the shard the
    /// write's response named ([`McsClient::last_shard`]).
    pub fn wait_for_epoch_on(&mut self, shard: usize, epoch: u64) -> Result<u64> {
        let mut args = Element::new("a").child(text_el("epoch", epoch.to_string()));
        if shard > 0 {
            args = args.child(text_el("shard", shard.to_string()));
        }
        let r = self.call("waitForEpoch", args)?;
        Ok(req_text(&r, "durableEpoch")?.parse().unwrap_or(0))
    }

    /// Server topology and vitals (the `catalogInfo` op).
    pub fn catalog_info(&mut self) -> Result<CatalogInfoReport> {
        let r = self.call("catalogInfo", Element::new("a"))?;
        Ok(CatalogInfoReport {
            shards: req_text(&r, "shards")?.parse().unwrap_or(1),
            profile: req_text(&r, "profile")?,
            files: req_text(&r, "files")?.parse().unwrap_or(0),
            cache_enabled: req_text(&r, "cacheEnabled")? == "true",
        })
    }

    /// Make every acknowledged write durable now (the bulk-load final
    /// barrier); returns the epoch the barrier covered.
    pub fn sync_now(&mut self) -> Result<u64> {
        let r = self.call("syncNow", Element::new("a"))?;
        Ok(req_text(&r, "durableEpoch")?.parse().unwrap_or(0))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.call("ping", Element::new("a")).map(drop)
    }

    // --- files ---

    /// Create a logical file with creation-time attributes.
    pub fn create_file(&mut self, spec: &FileSpec) -> Result<LogicalFile> {
        let r = self.call("createFile", Element::new("a").child(filespec_el(spec)))?;
        Ok(file_from(r.expect("file")?)?)
    }

    /// Create a batch of logical files in one server-side transaction
    /// (the `createFiles` bulk op): all-or-nothing per shard, results in
    /// input order. One round-trip and one commit replace N of each.
    pub fn create_files(&mut self, specs: &[FileSpec]) -> Result<Vec<LogicalFile>> {
        let mut a = Element::new("a");
        for s in specs {
            a = a.child(filespec_el(s));
        }
        let r = self.call("createFiles", a)?;
        r.find_all("file").map(|f| Ok(file_from(f)?)).collect()
    }

    /// Fetch a file's predefined metadata (the paper's "simple query").
    pub fn get_file(&mut self, name: &str) -> Result<LogicalFile> {
        let r = self.call("getFile", Element::new("a").child(text_el("name", name)))?;
        Ok(file_from(r.expect("file")?)?)
    }

    /// Fetch one version of a file.
    pub fn get_file_version(&mut self, name: &str, version: i64) -> Result<LogicalFile> {
        let r = self.call(
            "getFileVersion",
            Element::new("a")
                .child(text_el("name", name))
                .child(text_el("version", version.to_string())),
        )?;
        Ok(file_from(r.expect("file")?)?)
    }

    /// All versions of a logical name.
    pub fn get_file_versions(&mut self, name: &str) -> Result<Vec<LogicalFile>> {
        let r = self.call("getFileVersions", Element::new("a").child(text_el("name", name)))?;
        r.find_all("file").map(|f| Ok(file_from(f)?)).collect()
    }

    /// Update predefined attributes.
    pub fn update_file(&mut self, name: &str, update: &FileUpdate) -> Result<LogicalFile> {
        let r = self.call(
            "updateFile",
            Element::new("a").child(text_el("name", name)).child(fileupdate_el(update)),
        )?;
        Ok(file_from(r.expect("file")?)?)
    }

    /// Mark a file invalid.
    pub fn invalidate_file(&mut self, name: &str) -> Result<()> {
        self.call("invalidateFile", Element::new("a").child(text_el("name", name))).map(drop)
    }

    /// Delete a file and all its metadata.
    pub fn delete_file(&mut self, name: &str) -> Result<()> {
        self.call("deleteFile", Element::new("a").child(text_el("name", name))).map(drop)
    }

    /// Delete one version of a file.
    pub fn delete_file_version(&mut self, name: &str, version: i64) -> Result<()> {
        self.call(
            "deleteFileVersion",
            Element::new("a")
                .child(text_el("name", name))
                .child(text_el("version", version.to_string())),
        )
        .map(drop)
    }

    // --- collections ---

    /// Create a collection (optionally nested).
    pub fn create_collection(
        &mut self,
        name: &str,
        parent: Option<&str>,
        description: &str,
    ) -> Result<Collection> {
        let mut a = Element::new("a").child(text_el("name", name));
        if let Some(p) = parent {
            a = a.child(text_el("parent", p));
        }
        a = a.child(text_el("description", description));
        let r = self.call("createCollection", a)?;
        Ok(collection_from(r.expect("collection")?)?)
    }

    /// Fetch a collection record.
    pub fn get_collection(&mut self, name: &str) -> Result<Collection> {
        let r = self.call("getCollection", Element::new("a").child(text_el("name", name)))?;
        Ok(collection_from(r.expect("collection")?)?)
    }

    /// Delete an empty collection.
    pub fn delete_collection(&mut self, name: &str) -> Result<()> {
        self.call("deleteCollection", Element::new("a").child(text_el("name", name))).map(drop)
    }

    /// List a collection's direct contents.
    pub fn list_collection(&mut self, name: &str) -> Result<CollectionContents> {
        let r = self.call("listCollection", Element::new("a").child(text_el("name", name)))?;
        Ok(collection_contents_from(r.expect("contents")?)?)
    }

    /// Move a file into (or out of) a collection.
    pub fn assign_collection(&mut self, file: &str, collection: Option<&str>) -> Result<()> {
        let mut a = Element::new("a").child(text_el("file", file));
        if let Some(c) = collection {
            a = a.child(text_el("collection", c));
        }
        self.call("assignCollection", a).map(drop)
    }

    // --- views ---

    /// Create a logical view.
    pub fn create_view(&mut self, name: &str, description: &str) -> Result<View> {
        let r = self.call(
            "createView",
            Element::new("a")
                .child(text_el("name", name))
                .child(text_el("description", description)),
        )?;
        Ok(view_from(r.expect("view")?)?)
    }

    /// Fetch a view record.
    pub fn get_view(&mut self, name: &str) -> Result<View> {
        let r = self.call("getView", Element::new("a").child(text_el("name", name)))?;
        Ok(view_from(r.expect("view")?)?)
    }

    /// Delete a view.
    pub fn delete_view(&mut self, name: &str) -> Result<()> {
        self.call("deleteView", Element::new("a").child(text_el("name", name))).map(drop)
    }

    /// Add a member to a view.
    pub fn add_to_view(&mut self, view: &str, member: &ObjectRef) -> Result<()> {
        self.call(
            "addToView",
            Element::new("a").child(text_el("view", view)).child(objref_el(member)),
        )
        .map(drop)
    }

    /// Remove a member from a view; true if it was present.
    pub fn remove_from_view(&mut self, view: &str, member: &ObjectRef) -> Result<bool> {
        let r = self.call(
            "removeFromView",
            Element::new("a").child(text_el("view", view)).child(objref_el(member)),
        )?;
        Ok(req_text(&r, "removed")? == "true")
    }

    /// List a view's members.
    pub fn list_view(&mut self, name: &str) -> Result<ViewContents> {
        let r = self.call("listView", Element::new("a").child(text_el("name", name)))?;
        Ok(view_contents_from(r.expect("contents")?)?)
    }

    // --- attributes & queries ---

    /// Register a user-defined attribute.
    pub fn define_attribute(
        &mut self,
        name: &str,
        ty: AttrType,
        description: &str,
    ) -> Result<()> {
        self.call(
            "defineAttribute",
            Element::new("a")
                .child(text_el("name", name))
                .child(text_el("attrType", attr_type_code(ty)))
                .child(text_el("description", description)),
        )
        .map(drop)
    }

    /// Set (upsert) an attribute on an object.
    pub fn set_attribute(&mut self, object: &ObjectRef, attr: &Attribute) -> Result<()> {
        self.call(
            "setAttribute",
            Element::new("a").child(objref_el(object)).child(attribute_el(attr)),
        )
        .map(drop)
    }

    /// Remove an attribute; true if it was present.
    pub fn remove_attribute(&mut self, object: &ObjectRef, name: &str) -> Result<bool> {
        let r = self.call(
            "removeAttribute",
            Element::new("a").child(objref_el(object)).child(text_el("name", name)),
        )?;
        Ok(req_text(&r, "removed")? == "true")
    }

    /// Fetch an object's user-defined attributes.
    pub fn get_attributes(&mut self, object: &ObjectRef) -> Result<Vec<Attribute>> {
        let r = self.call("getAttributes", Element::new("a").child(objref_el(object)))?;
        r.find_all("attribute").map(|a| Ok(attribute_from(a)?)).collect()
    }

    /// Attribute-based discovery (the paper's "complex query"). Returns
    /// matching (logical name, version) pairs.
    pub fn query_by_attributes(&mut self, preds: &[AttrPredicate]) -> Result<Vec<(String, i64)>> {
        let mut a = Element::new("a");
        for p in preds {
            a = a.child(predicate_el(p));
        }
        let r = self.call("queryByAttributes", a)?;
        Ok(hits_from(r.expect("hits")?)?)
    }

    /// EXPLAIN for [`MetadataCatalogClient::query_by_attributes`]: the
    /// evaluation plan the server's cost-based planner would choose for
    /// this conjunction, one human-readable line per step, without
    /// executing the query.
    pub fn explain_query(&mut self, preds: &[AttrPredicate]) -> Result<Vec<String>> {
        let mut a = Element::new("a");
        for p in preds {
            a = a.child(predicate_el(p));
        }
        let r = self.call("explainQuery", a)?;
        r.expect("plan")?.find_all("step").map(|s| Ok(s.text_content())).collect()
    }

    // --- annotations, audit, history ---

    /// Attach an annotation.
    pub fn annotate(&mut self, object: &ObjectRef, text: &str) -> Result<()> {
        self.call(
            "annotate",
            Element::new("a").child(objref_el(object)).child(text_el("text", text)),
        )
        .map(drop)
    }

    /// Fetch annotations, oldest first.
    pub fn get_annotations(&mut self, object: &ObjectRef) -> Result<Vec<Annotation>> {
        let r = self.call("getAnnotations", Element::new("a").child(objref_el(object)))?;
        r.find_all("annotation").map(|a| Ok(annotation_from(a)?)).collect()
    }

    /// Fetch the audit trail, oldest first.
    pub fn get_audit_trail(&mut self, object: &ObjectRef) -> Result<Vec<AuditRecord>> {
        let r = self.call("getAuditTrail", Element::new("a").child(objref_el(object)))?;
        r.find_all("audit").map(|a| Ok(audit_from(a)?)).collect()
    }

    /// Enable or disable per-access auditing.
    pub fn set_audit(&mut self, object: &ObjectRef, enabled: bool) -> Result<()> {
        self.call(
            "setAudit",
            Element::new("a")
                .child(objref_el(object))
                .child(text_el("enabled", enabled.to_string())),
        )
        .map(drop)
    }

    /// Append a transformation-history record.
    pub fn add_history(&mut self, file: &str, description: &str) -> Result<()> {
        self.call(
            "addHistory",
            Element::new("a")
                .child(text_el("file", file))
                .child(text_el("description", description)),
        )
        .map(drop)
    }

    /// Fetch a file's transformation history.
    pub fn get_history(&mut self, file: &str) -> Result<Vec<HistoryRecord>> {
        let r = self.call("getHistory", Element::new("a").child(text_el("file", file)))?;
        r.find_all("history").map(|h| Ok(history_from(h)?)).collect()
    }

    // --- policy & registries ---

    /// Grant a permission.
    pub fn grant(
        &mut self,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        self.call(
            "grant",
            Element::new("a")
                .child(objref_el(object))
                .child(text_el("principal", principal))
                .child(text_el("permission", permission_code(perm))),
        )
        .map(drop)
    }

    /// Revoke a permission.
    pub fn revoke(
        &mut self,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        self.call(
            "revoke",
            Element::new("a")
                .child(objref_el(object))
                .child(text_el("principal", principal))
                .child(text_el("permission", permission_code(perm))),
        )
        .map(drop)
    }

    /// Register a metadata writer.
    pub fn register_user(&mut self, user: &UserRecord) -> Result<()> {
        self.call("registerUser", Element::new("a").child(user_el(user))).map(drop)
    }

    /// Fetch a metadata writer by DN.
    pub fn get_user(&mut self, dn: &str) -> Result<UserRecord> {
        let r = self.call("getUser", Element::new("a").child(text_el("dn", dn)))?;
        Ok(user_from(r.expect("user")?)?)
    }

    /// List all metadata writers.
    pub fn list_users(&mut self) -> Result<Vec<UserRecord>> {
        let r = self.call("listUsers", Element::new("a"))?;
        r.find_all("user").map(|u| Ok(user_from(u)?)).collect()
    }

    /// Register an external catalog pointer.
    pub fn register_external_catalog(&mut self, cat: &ExternalCatalog) -> Result<()> {
        self.call("registerExternalCatalog", Element::new("a").child(extcat_el(cat))).map(drop)
    }

    /// List external catalogs.
    pub fn list_external_catalogs(&mut self) -> Result<Vec<ExternalCatalog>> {
        let r = self.call("listExternalCatalogs", Element::new("a"))?;
        r.find_all("externalCatalog").map(|c| Ok(extcat_from(c)?)).collect()
    }
}
