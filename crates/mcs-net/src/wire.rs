//! Wire encoding of MCS types to and from SOAP body elements.
//!
//! The encoding is doc/literal-ish: every record becomes an element whose
//! children are named fields; typed values carry a `type` attribute.
//! Both the server and the client use these functions, so a round-trip
//! through them is the identity (property-tested).

use mcs::{
    Annotation, AttrOp, AttrPredicate, AttrType, Attribute, AuditRecord, Collection,
    CollectionContents, Credential, ExternalCatalog, FileSpec, FileUpdate, HistoryRecord,
    LogicalFile, ObjectRef, ObjectType, Permission, UserRecord, View, ViewContents,
};
use relstore::{Date, DateTime, Time, Value};
use soapstack::xml::{Element, XmlError};

/// Wire-decoding error.
pub fn shape(msg: impl Into<String>) -> XmlError {
    XmlError::Shape(msg.into())
}

/// Result alias for wire decoding.
pub type Result<T> = std::result::Result<T, XmlError>;

// ---------- scalar helpers ----------

/// Encode a typed value as `<{name} type="...">text</{name}>`.
pub fn value_el(name: &str, v: &Value) -> Element {
    let (ty, text) = match v {
        Value::Null => ("null", String::new()),
        Value::Int(i) => ("int", i.to_string()),
        Value::Float(x) => ("float", format_float(*x)),
        Value::Str(s) => ("string", s.to_string()),
        Value::Bool(b) => ("bool", b.to_string()),
        Value::Date(d) => ("date", d.to_string()),
        Value::Time(t) => ("time", t.to_string()),
        Value::DateTime(dt) => ("datetime", dt.to_string()),
    };
    let e = Element::new(name).attr("type", ty);
    if text.is_empty() {
        e
    } else {
        e.text(text)
    }
}

fn format_float(x: f64) -> String {
    if x.is_nan() {
        "NaN".into()
    } else if x.is_infinite() {
        if x > 0.0 { "inf".into() } else { "-inf".into() }
    } else {
        // Rust's shortest round-trip formatting
        format!("{x}")
    }
}

/// Decode a value element produced by [`value_el`].
pub fn value_from(e: &Element) -> Result<Value> {
    let ty = e.attr_value("type").ok_or_else(|| shape("value without type"))?;
    let text = e.text_content();
    Ok(match ty {
        "null" => Value::Null,
        "int" => Value::Int(text.parse().map_err(|_| shape(format!("bad int `{text}`")))?),
        "float" => Value::Float(match text.as_str() {
            "NaN" => f64::NAN,
            "inf" => f64::INFINITY,
            "-inf" => f64::NEG_INFINITY,
            t => t.parse().map_err(|_| shape(format!("bad float `{t}`")))?,
        }),
        "string" => Value::from(text),
        "bool" => Value::Bool(text == "true"),
        "date" => Value::Date(Date::parse(&text).map_err(|e| shape(e.to_string()))?),
        "time" => Value::Time(Time::parse(&text).map_err(|e| shape(e.to_string()))?),
        "datetime" => {
            Value::DateTime(DateTime::parse(&text).map_err(|e| shape(e.to_string()))?)
        }
        other => return Err(shape(format!("unknown value type `{other}`"))),
    })
}

/// `<{name}>text</{name}>`.
pub fn text_el(name: &str, text: impl Into<String>) -> Element {
    Element::new(name).text(text)
}

/// Required child element's text.
pub fn req_text(e: &Element, name: &str) -> Result<String> {
    Ok(e.expect(name)?.text_content())
}

/// Optional child element's text (absent element = None).
pub fn opt_text(e: &Element, name: &str) -> Option<String> {
    e.find(name).map(|c| c.text_content())
}

/// Required child parsed as i64.
pub fn req_i64(e: &Element, name: &str) -> Result<i64> {
    req_text(e, name)?.parse().map_err(|_| shape(format!("bad i64 in <{name}>")))
}

/// Required child parsed as bool.
pub fn req_bool(e: &Element, name: &str) -> Result<bool> {
    Ok(req_text(e, name)? == "true")
}

fn req_datetime(e: &Element, name: &str) -> Result<DateTime> {
    DateTime::parse(&req_text(e, name)?).map_err(|e| shape(e.to_string()))
}

fn opt_datetime(e: &Element, name: &str) -> Result<Option<DateTime>> {
    opt_text(e, name)
        .map(|t| DateTime::parse(&t).map_err(|e| shape(e.to_string())))
        .transpose()
}

// ---------- credential ----------

/// Encode a credential.
pub fn credential_el(c: &Credential) -> Element {
    let mut e = Element::new("credential").child(text_el("dn", &c.dn));
    for g in &c.groups {
        e = e.child(text_el("group", g));
    }
    e
}

/// Decode a credential from a method element.
pub fn credential_from(call: &Element) -> Result<Credential> {
    let e = call.expect("credential")?;
    Ok(Credential {
        dn: req_text(e, "dn")?,
        groups: e.find_all("group").map(|g| g.text_content()).collect(),
    })
}

// ---------- object references ----------

/// Encode an [`ObjectRef`].
pub fn objref_el(r: &ObjectRef) -> Element {
    match r {
        ObjectRef::File(n) => Element::new("object").attr("kind", "file").text(n),
        ObjectRef::FileVersion(n, v) => Element::new("object")
            .attr("kind", "fileVersion")
            .attr("version", v.to_string())
            .text(n),
        ObjectRef::Collection(n) => Element::new("object").attr("kind", "collection").text(n),
        ObjectRef::View(n) => Element::new("object").attr("kind", "view").text(n),
        ObjectRef::Service => Element::new("object").attr("kind", "service"),
    }
}

/// Decode an [`ObjectRef`] child of a method element.
pub fn objref_from(call: &Element) -> Result<ObjectRef> {
    let e = call.expect("object")?;
    let kind = e.attr_value("kind").ok_or_else(|| shape("object without kind"))?;
    let name = e.text_content();
    Ok(match kind {
        "file" => ObjectRef::File(name),
        "fileVersion" => {
            let v = e
                .attr_value("version")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| shape("fileVersion without version"))?;
            ObjectRef::FileVersion(name, v)
        }
        "collection" => ObjectRef::Collection(name),
        "view" => ObjectRef::View(name),
        "service" => ObjectRef::Service,
        other => return Err(shape(format!("unknown object kind `{other}`"))),
    })
}

// ---------- attributes & predicates ----------

/// Encode one attribute.
pub fn attribute_el(a: &Attribute) -> Element {
    Element::new("attribute").attr("name", a.name.as_str()).child(value_el("value", &a.value))
}

/// Decode one attribute element.
pub fn attribute_from(e: &Element) -> Result<Attribute> {
    Ok(Attribute {
        name: e.attr_value("name").ok_or_else(|| shape("attribute without name"))?.to_owned(),
        value: value_from(e.expect("value")?)?,
    })
}

fn op_code(op: AttrOp) -> &'static str {
    match op {
        AttrOp::Eq => "eq",
        AttrOp::Ne => "ne",
        AttrOp::Lt => "lt",
        AttrOp::Le => "le",
        AttrOp::Gt => "gt",
        AttrOp::Ge => "ge",
        AttrOp::Like => "like",
    }
}

fn op_from(s: &str) -> Result<AttrOp> {
    Ok(match s {
        "eq" => AttrOp::Eq,
        "ne" => AttrOp::Ne,
        "lt" => AttrOp::Lt,
        "le" => AttrOp::Le,
        "gt" => AttrOp::Gt,
        "ge" => AttrOp::Ge,
        "like" => AttrOp::Like,
        other => return Err(shape(format!("unknown op `{other}`"))),
    })
}

/// Encode a query predicate.
pub fn predicate_el(p: &AttrPredicate) -> Element {
    Element::new("predicate")
        .attr("name", p.name.as_str())
        .attr("op", op_code(p.op))
        .child(value_el("value", &p.value))
}

/// Decode a query predicate.
pub fn predicate_from(e: &Element) -> Result<AttrPredicate> {
    Ok(AttrPredicate {
        name: e.attr_value("name").ok_or_else(|| shape("predicate without name"))?.to_owned(),
        op: op_from(e.attr_value("op").ok_or_else(|| shape("predicate without op"))?)?,
        value: value_from(e.expect("value")?)?,
    })
}

/// Encode an [`AttrType`].
pub fn attr_type_code(t: AttrType) -> &'static str {
    match t {
        AttrType::Str => "string",
        AttrType::Int => "int",
        AttrType::Float => "float",
        AttrType::Date => "date",
        AttrType::Time => "time",
        AttrType::DateTime => "datetime",
    }
}

/// Decode an [`AttrType`].
pub fn attr_type_from(s: &str) -> Result<AttrType> {
    Ok(match s {
        "string" => AttrType::Str,
        "int" => AttrType::Int,
        "float" => AttrType::Float,
        "date" => AttrType::Date,
        "time" => AttrType::Time,
        "datetime" => AttrType::DateTime,
        other => return Err(shape(format!("unknown attr type `{other}`"))),
    })
}

/// Encode a [`Permission`].
pub fn permission_code(p: Permission) -> &'static str {
    match p {
        Permission::Read => "read",
        Permission::Write => "write",
        Permission::Delete => "delete",
        Permission::Admin => "admin",
    }
}

/// Decode a [`Permission`].
pub fn permission_from(s: &str) -> Result<Permission> {
    Ok(match s {
        "read" => Permission::Read,
        "write" => Permission::Write,
        "delete" => Permission::Delete,
        "admin" => Permission::Admin,
        other => return Err(shape(format!("unknown permission `{other}`"))),
    })
}

// ---------- records ----------

fn opt_child(mut e: Element, name: &str, v: &Option<String>) -> Element {
    if let Some(s) = v {
        e = e.child(text_el(name, s));
    }
    e
}

/// Encode a [`LogicalFile`].
pub fn file_el(f: &LogicalFile) -> Element {
    let mut e = Element::new("file")
        .child(text_el("id", f.id.to_string()))
        .child(text_el("name", &f.name))
        .child(text_el("version", f.version.to_string()))
        .child(text_el("valid", f.valid.to_string()))
        .child(text_el("creator", &f.creator))
        .child(text_el("created", f.created.to_string()))
        .child(text_el("auditEnabled", f.audit_enabled.to_string()));
    e = opt_child(e, "dataType", &f.data_type);
    if let Some(cid) = f.collection_id {
        e = e.child(text_el("collectionId", cid.to_string()));
    }
    e = opt_child(e, "containerId", &f.container_id);
    e = opt_child(e, "containerService", &f.container_service);
    e = opt_child(e, "lastModifier", &f.last_modifier);
    if let Some(lm) = f.last_modified {
        e = e.child(text_el("lastModified", lm.to_string()));
    }
    opt_child(e, "masterCopy", &f.master_copy)
}

/// Decode a [`LogicalFile`].
pub fn file_from(e: &Element) -> Result<LogicalFile> {
    Ok(LogicalFile {
        id: req_i64(e, "id")?,
        name: req_text(e, "name")?,
        version: req_i64(e, "version")?,
        data_type: opt_text(e, "dataType"),
        valid: req_bool(e, "valid")?,
        collection_id: opt_text(e, "collectionId")
            .map(|s| s.parse().map_err(|_| shape("bad collectionId")))
            .transpose()?,
        container_id: opt_text(e, "containerId"),
        container_service: opt_text(e, "containerService"),
        creator: req_text(e, "creator")?,
        created: req_datetime(e, "created")?,
        last_modifier: opt_text(e, "lastModifier"),
        last_modified: opt_datetime(e, "lastModified")?,
        master_copy: opt_text(e, "masterCopy"),
        audit_enabled: req_bool(e, "auditEnabled")?,
    })
}

/// Encode a [`Collection`].
pub fn collection_el(c: &Collection) -> Element {
    let mut e = Element::new("collection")
        .child(text_el("id", c.id.to_string()))
        .child(text_el("name", &c.name))
        .child(text_el("description", &c.description))
        .child(text_el("creator", &c.creator))
        .child(text_el("created", c.created.to_string()))
        .child(text_el("auditEnabled", c.audit_enabled.to_string()));
    if let Some(p) = c.parent_id {
        e = e.child(text_el("parentId", p.to_string()));
    }
    e = opt_child(e, "lastModifier", &c.last_modifier);
    if let Some(lm) = c.last_modified {
        e = e.child(text_el("lastModified", lm.to_string()));
    }
    e
}

/// Decode a [`Collection`].
pub fn collection_from(e: &Element) -> Result<Collection> {
    Ok(Collection {
        id: req_i64(e, "id")?,
        name: req_text(e, "name")?,
        description: req_text(e, "description")?,
        parent_id: opt_text(e, "parentId")
            .map(|s| s.parse().map_err(|_| shape("bad parentId")))
            .transpose()?,
        creator: req_text(e, "creator")?,
        created: req_datetime(e, "created")?,
        last_modifier: opt_text(e, "lastModifier"),
        last_modified: opt_datetime(e, "lastModified")?,
        audit_enabled: req_bool(e, "auditEnabled")?,
    })
}

/// Encode a [`View`].
pub fn view_el(v: &View) -> Element {
    let mut e = Element::new("view")
        .child(text_el("id", v.id.to_string()))
        .child(text_el("name", &v.name))
        .child(text_el("description", &v.description))
        .child(text_el("creator", &v.creator))
        .child(text_el("created", v.created.to_string()))
        .child(text_el("auditEnabled", v.audit_enabled.to_string()));
    e = opt_child(e, "lastModifier", &v.last_modifier);
    if let Some(lm) = v.last_modified {
        e = e.child(text_el("lastModified", lm.to_string()));
    }
    e
}

/// Decode a [`View`].
pub fn view_from(e: &Element) -> Result<View> {
    Ok(View {
        id: req_i64(e, "id")?,
        name: req_text(e, "name")?,
        description: req_text(e, "description")?,
        creator: req_text(e, "creator")?,
        created: req_datetime(e, "created")?,
        last_modifier: opt_text(e, "lastModifier"),
        last_modified: opt_datetime(e, "lastModified")?,
        audit_enabled: req_bool(e, "auditEnabled")?,
    })
}

/// Encode a [`FileSpec`].
pub fn filespec_el(s: &FileSpec) -> Element {
    let mut e = Element::new("fileSpec").child(text_el("name", &s.name));
    if let Some(v) = s.version {
        e = e.child(text_el("version", v.to_string()));
    }
    e = opt_child(e, "dataType", &s.data_type);
    e = opt_child(e, "collection", &s.collection);
    e = opt_child(e, "containerId", &s.container_id);
    e = opt_child(e, "containerService", &s.container_service);
    e = opt_child(e, "masterCopy", &s.master_copy);
    e = e.child(text_el("audit", s.audit.to_string()));
    for a in &s.attributes {
        e = e.child(attribute_el(a));
    }
    e
}

/// Decode a [`FileSpec`].
pub fn filespec_from(e: &Element) -> Result<FileSpec> {
    Ok(FileSpec {
        name: req_text(e, "name")?,
        version: opt_text(e, "version")
            .map(|s| s.parse().map_err(|_| shape("bad version")))
            .transpose()?,
        data_type: opt_text(e, "dataType"),
        collection: opt_text(e, "collection"),
        container_id: opt_text(e, "containerId"),
        container_service: opt_text(e, "containerService"),
        master_copy: opt_text(e, "masterCopy"),
        audit: req_bool(e, "audit")?,
        attributes: e.find_all("attribute").map(attribute_from).collect::<Result<_>>()?,
    })
}

/// Encode a [`FileUpdate`].
pub fn fileupdate_el(u: &FileUpdate) -> Element {
    let mut e = Element::new("fileUpdate");
    e = opt_child(e, "dataType", &u.data_type);
    if let Some(v) = u.valid {
        e = e.child(text_el("valid", v.to_string()));
    }
    e = opt_child(e, "masterCopy", &u.master_copy);
    e = opt_child(e, "containerId", &u.container_id);
    opt_child(e, "containerService", &u.container_service)
}

/// Decode a [`FileUpdate`].
pub fn fileupdate_from(e: &Element) -> Result<FileUpdate> {
    Ok(FileUpdate {
        data_type: opt_text(e, "dataType"),
        valid: opt_text(e, "valid").map(|s| s == "true"),
        master_copy: opt_text(e, "masterCopy"),
        container_id: opt_text(e, "containerId"),
        container_service: opt_text(e, "containerService"),
    })
}

/// Encode collection contents.
pub fn collection_contents_el(c: &CollectionContents) -> Element {
    let mut e = Element::new("contents");
    for (n, v) in &c.files {
        e = e.child(Element::new("file").attr("version", v.to_string()).text(n));
    }
    for n in &c.subcollections {
        e = e.child(text_el("subcollection", n));
    }
    e
}

/// Decode collection contents.
pub fn collection_contents_from(e: &Element) -> Result<CollectionContents> {
    let mut out = CollectionContents::default();
    for f in e.find_all("file") {
        let v = f
            .attr_value("version")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| shape("file without version"))?;
        out.files.push((f.text_content(), v));
    }
    out.subcollections = e.find_all("subcollection").map(|c| c.text_content()).collect();
    Ok(out)
}

/// Encode view contents.
pub fn view_contents_el(c: &ViewContents) -> Element {
    let mut e = Element::new("contents");
    for (n, v) in &c.files {
        e = e.child(Element::new("file").attr("version", v.to_string()).text(n));
    }
    for n in &c.collections {
        e = e.child(text_el("collection", n));
    }
    for n in &c.views {
        e = e.child(text_el("view", n));
    }
    e
}

/// Decode view contents.
pub fn view_contents_from(e: &Element) -> Result<ViewContents> {
    let mut out = ViewContents::default();
    for f in e.find_all("file") {
        let v = f
            .attr_value("version")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| shape("file without version"))?;
        out.files.push((f.text_content(), v));
    }
    out.collections = e.find_all("collection").map(|c| c.text_content()).collect();
    out.views = e.find_all("view").map(|c| c.text_content()).collect();
    Ok(out)
}

/// Encode an annotation.
pub fn annotation_el(a: &Annotation) -> Element {
    Element::new("annotation")
        .attr("objectType", object_type_code(a.object_type))
        .attr("objectId", a.object_id.to_string())
        .child(text_el("text", &a.text))
        .child(text_el("creator", &a.creator))
        .child(text_el("created", a.created.to_string()))
}

/// Decode an annotation.
pub fn annotation_from(e: &Element) -> Result<Annotation> {
    Ok(Annotation {
        object_type: object_type_from(
            e.attr_value("objectType").ok_or_else(|| shape("no objectType"))?,
        )?,
        object_id: e
            .attr_value("objectId")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| shape("bad objectId"))?,
        text: req_text(e, "text")?,
        creator: req_text(e, "creator")?,
        created: req_datetime(e, "created")?,
    })
}

/// Encode an audit record.
pub fn audit_el(r: &AuditRecord) -> Element {
    Element::new("audit")
        .attr("objectType", object_type_code(r.object_type))
        .attr("objectId", r.object_id.to_string())
        .child(text_el("action", &r.action))
        .child(text_el("actor", &r.actor))
        .child(text_el("at", r.at.to_string()))
        .child(text_el("details", &r.details))
}

/// Decode an audit record.
pub fn audit_from(e: &Element) -> Result<AuditRecord> {
    Ok(AuditRecord {
        object_type: object_type_from(
            e.attr_value("objectType").ok_or_else(|| shape("no objectType"))?,
        )?,
        object_id: e
            .attr_value("objectId")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| shape("bad objectId"))?,
        action: req_text(e, "action")?,
        actor: req_text(e, "actor")?,
        at: req_datetime(e, "at")?,
        details: req_text(e, "details")?,
    })
}

/// Encode a history record.
pub fn history_el(r: &HistoryRecord) -> Element {
    Element::new("history")
        .attr("fileId", r.file_id.to_string())
        .child(text_el("description", &r.description))
        .child(text_el("actor", &r.actor))
        .child(text_el("at", r.at.to_string()))
}

/// Decode a history record.
pub fn history_from(e: &Element) -> Result<HistoryRecord> {
    Ok(HistoryRecord {
        file_id: e
            .attr_value("fileId")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| shape("bad fileId"))?,
        description: req_text(e, "description")?,
        actor: req_text(e, "actor")?,
        at: req_datetime(e, "at")?,
    })
}

/// Encode a user record.
pub fn user_el(u: &UserRecord) -> Element {
    Element::new("user")
        .child(text_el("dn", &u.dn))
        .child(text_el("description", &u.description))
        .child(text_el("institution", &u.institution))
        .child(text_el("email", &u.email))
        .child(text_el("phone", &u.phone))
}

/// Decode a user record.
pub fn user_from(e: &Element) -> Result<UserRecord> {
    Ok(UserRecord {
        dn: req_text(e, "dn")?,
        description: req_text(e, "description")?,
        institution: req_text(e, "institution")?,
        email: req_text(e, "email")?,
        phone: req_text(e, "phone")?,
    })
}

/// Encode an external catalog record.
pub fn extcat_el(c: &ExternalCatalog) -> Element {
    Element::new("externalCatalog")
        .child(text_el("name", &c.name))
        .child(text_el("catalogType", &c.catalog_type))
        .child(text_el("host", &c.host))
        .child(text_el("ip", &c.ip))
        .child(text_el("description", &c.description))
}

/// Decode an external catalog record.
pub fn extcat_from(e: &Element) -> Result<ExternalCatalog> {
    Ok(ExternalCatalog {
        name: req_text(e, "name")?,
        catalog_type: req_text(e, "catalogType")?,
        host: req_text(e, "host")?,
        ip: req_text(e, "ip")?,
        description: req_text(e, "description")?,
    })
}

/// Encode an object-type tag.
pub fn object_type_code(t: ObjectType) -> &'static str {
    match t {
        ObjectType::File => "file",
        ObjectType::Collection => "collection",
        ObjectType::View => "view",
        ObjectType::Service => "service",
    }
}

/// Decode an object-type tag.
pub fn object_type_from(s: &str) -> Result<ObjectType> {
    Ok(match s {
        "file" => ObjectType::File,
        "collection" => ObjectType::Collection,
        "view" => ObjectType::View,
        "service" => ObjectType::Service,
        other => return Err(shape(format!("unknown object type `{other}`"))),
    })
}

/// Encode a list of (name, version) hits.
pub fn hits_el(hits: &[(String, i64)]) -> Element {
    let mut e = Element::new("hits");
    for (n, v) in hits {
        e = e.child(Element::new("file").attr("version", v.to_string()).text(n));
    }
    e
}

/// Decode a list of (name, version) hits.
pub fn hits_from(e: &Element) -> Result<Vec<(String, i64)>> {
    e.find_all("file")
        .map(|f| {
            let v = f
                .attr_value("version")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| shape("file without version"))?;
            Ok((f.text_content(), v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs::ManualClock;
    use mcs::Clock;

    fn dt() -> DateTime {
        ManualClock::default().now()
    }

    #[test]
    fn value_roundtrip_all_types() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::from("hi <&> there"),
            Value::Bool(true),
            Value::Date(Date::new(2003, 11, 15).unwrap()),
            Value::Time(Time::new(8, 30, 0).unwrap()),
            Value::DateTime(dt()),
        ] {
            let e = value_el("value", &v);
            let wire = e.to_xml();
            let back = value_from(&soapstack::xml::parse(&wire).unwrap()).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) if a.is_nan() => assert!(b.is_nan()),
                _ => assert_eq!(back, v),
            }
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.2250738585072014e-308] {
            let e = value_el("v", &Value::Float(x));
            let back = value_from(&soapstack::xml::parse(&e.to_xml()).unwrap()).unwrap();
            assert_eq!(back, Value::Float(x));
        }
    }

    #[test]
    fn file_roundtrip_full_and_minimal() {
        let full = LogicalFile {
            id: 7,
            name: "f <1>".into(),
            version: 3,
            data_type: Some("binary".into()),
            valid: false,
            collection_id: Some(12),
            container_id: Some("c".into()),
            container_service: Some("http://x".into()),
            creator: "/CN=a&b".into(),
            created: dt(),
            last_modifier: Some("/CN=m".into()),
            last_modified: Some(dt()),
            master_copy: Some("gsiftp://h/f".into()),
            audit_enabled: true,
        };
        let back = file_from(&soapstack::xml::parse(&file_el(&full).to_xml()).unwrap()).unwrap();
        assert_eq!(back, full);
        let minimal = LogicalFile {
            id: 1,
            name: "f".into(),
            version: 1,
            data_type: None,
            valid: true,
            collection_id: None,
            container_id: None,
            container_service: None,
            creator: "/CN=a".into(),
            created: dt(),
            last_modifier: None,
            last_modified: None,
            master_copy: None,
            audit_enabled: false,
        };
        let back =
            file_from(&soapstack::xml::parse(&file_el(&minimal).to_xml()).unwrap()).unwrap();
        assert_eq!(back, minimal);
    }

    #[test]
    fn filespec_roundtrip() {
        let s = FileSpec::named("f").attr("a", 1i64).attr("b", "x").in_collection("c");
        let back =
            filespec_from(&soapstack::xml::parse(&filespec_el(&s).to_xml()).unwrap()).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.collection, s.collection);
        assert_eq!(back.attributes, s.attributes);
    }

    #[test]
    fn predicate_and_objref_roundtrip() {
        for p in [
            AttrPredicate::eq("a", 1i64),
            AttrPredicate { name: "b".into(), op: AttrOp::Like, value: "x%".into() },
            AttrPredicate { name: "c".into(), op: AttrOp::Ge, value: 2.5f64.into() },
        ] {
            let back =
                predicate_from(&soapstack::xml::parse(&predicate_el(&p).to_xml()).unwrap())
                    .unwrap();
            assert_eq!(back, p);
        }
        for r in [
            ObjectRef::File("f".into()),
            ObjectRef::FileVersion("f".into(), 2),
            ObjectRef::Collection("c".into()),
            ObjectRef::View("v".into()),
            ObjectRef::Service,
        ] {
            let call = Element::new("call").child(objref_el(&r));
            let back =
                objref_from(&soapstack::xml::parse(&call.to_xml()).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn credential_roundtrip() {
        let c = Credential::with_groups("/CN=a", ["g1", "g2"]);
        let call = Element::new("call").child(credential_el(&c));
        let back = credential_from(&soapstack::xml::parse(&call.to_xml()).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn contents_and_hits_roundtrip() {
        let cc = CollectionContents {
            files: vec![("a".into(), 1), ("b".into(), 2)],
            subcollections: vec!["sub".into()],
        };
        let back = collection_contents_from(
            &soapstack::xml::parse(&collection_contents_el(&cc).to_xml()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, cc);
        let hits = vec![("x".to_string(), 1i64), ("y".to_string(), 9)];
        let back =
            hits_from(&soapstack::xml::parse(&hits_el(&hits).to_xml()).unwrap()).unwrap();
        assert_eq!(back, hits);
    }
}
