//! The per-request execution scope shared by both wire front ends.
//!
//! SOAP carries the per-request options as method-element attributes
//! (`mcs:durability`, `mcs:cache`); the binary protocol carries them as
//! request-flag bits (DESIGN.md §7.7). Both decode into the same
//! [`CallScope`] and run through [`run_scoped`], so a durability
//! override, a cache bypass and the epoch/shard echo behave identically
//! regardless of which framing delivered the request — which is exactly
//! what the cross-protocol twin suite (`wire_twin.rs`) asserts.

use crate::client::DurabilityMode;
use mcs::ShardedCatalog;

/// Per-request options decoded from either wire framing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallScope {
    /// Override the store-wide commit policy for this call.
    pub durability: Option<DurabilityMode>,
    /// Run every read in this call on the uncached path.
    pub cache_bypass: bool,
}

/// The server-side commit policy a [`DurabilityMode`] header selects.
/// `Group`/`Async` use the server's default batching window; the window
/// is server policy, not something clients get to pick.
pub fn durability_of(mode: DurabilityMode) -> mcs::Durability {
    let window = std::time::Duration::from_millis(2);
    match mode {
        DurabilityMode::Always => mcs::Durability::Always,
        DurabilityMode::Group => mcs::Durability::Group { max_wait: window, max_batch: 64 },
        DurabilityMode::Async => mcs::Durability::Async { max_wait: window, max_batch: 64 },
    }
}

/// Run one request body under its [`CallScope`]: apply the durability
/// override (if any) and the cache bypass, and report the `(epoch,
/// shard)` of whatever the operation committed — the handle an
/// async-acknowledged client needs for `waitForEpoch`. Epoch 0 means the
/// call logged nothing.
pub fn run_scoped<R>(
    catalog: &ShardedCatalog,
    scope: CallScope,
    f: impl FnOnce(&ShardedCatalog) -> R,
) -> (R, u64, usize) {
    let bypass = scope.cache_bypass;
    let run = move |c: &ShardedCatalog| {
        if bypass {
            c.with_cache_bypass(f)
        } else {
            f(c)
        }
    };
    match scope.durability {
        Some(mode) => catalog.with_durability(durability_of(mode), run),
        None => catalog.track_epoch(run),
    }
}
