//! Audit metadata (paper §5): creation information plus a log of accesses
//! to audited objects, recording the user identity and the action.

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    /// Append an audit record. Called internally whenever an audited
    /// object is touched by a single-statement (read) path; write paths
    /// use [`Mcs::audit_action_in`] so the audit row commits atomically
    /// with the operation it records.
    pub(crate) fn audit_action(
        &self,
        ot: ObjectType,
        id: i64,
        action: &str,
        cred: &Credential,
        details: &str,
    ) -> Result<()> {
        self.db.execute_prepared(&self.stmts.ins_audit, &self.audit_params(ot, id, action, cred, details))?;
        Ok(())
    }

    /// Append an audit record inside an open catalog transaction (the
    /// `audit_log` table must be claimed for write).
    pub(crate) fn audit_action_in(
        &self,
        s: &mut relstore::Session,
        ot: ObjectType,
        id: i64,
        action: &str,
        cred: &Credential,
        details: &str,
    ) -> Result<()> {
        s.execute_prepared(&self.stmts.ins_audit, &self.audit_params(ot, id, action, cred, details))?;
        Ok(())
    }

    fn audit_params(
        &self,
        ot: ObjectType,
        id: i64,
        action: &str,
        cred: &Credential,
        details: &str,
    ) -> [Value; 6] {
        [
            ot.code().into(),
            id.into(),
            action.into(),
            cred.dn.as_str().into(),
            self.now(),
            details.into(),
        ]
    }

    /// Fetch the audit trail of an object, oldest first. Requires Read.
    pub fn get_audit_trail(
        &self,
        cred: &Credential,
        object: &ObjectRef,
    ) -> Result<Vec<AuditRecord>> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_ref_perm(cred, object, Permission::Read)?;
        let rs = self.db.execute(
            "SELECT action, actor, at, details FROM audit_log \
             WHERE object_type = ? AND object_id = ? ORDER BY id",
            &[ot.code().into(), id.into()],
        )?;
        rs.rows
            .expect("select")
            .rows
            .iter()
            .map(|r| {
                Ok(AuditRecord {
                    object_type: ot,
                    object_id: id,
                    action: r[0].as_str()?.to_owned(),
                    actor: r[1].as_str()?.to_owned(),
                    at: match &r[2] {
                        Value::DateTime(dt) => *dt,
                        _ => return Err(McsError::Internal("bad at column".into())),
                    },
                    details: match &r[3] {
                        Value::Str(s) => s.to_string(),
                        _ => String::new(),
                    },
                })
            })
            .collect()
    }

    /// Enable or disable per-access auditing on an object. Requires Admin.
    pub fn set_audit(&self, cred: &Credential, object: &ObjectRef, enabled: bool) -> Result<()> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_ref_perm(cred, object, Permission::Admin)?;
        let table = match ot {
            ObjectType::File => "logical_files",
            ObjectType::Collection => "logical_collections",
            ObjectType::View => "logical_views",
            ObjectType::Service => {
                return Err(McsError::Internal("service has no audit flag".into()))
            }
        };
        self.db.execute(
            &format!("UPDATE {table} SET audit_enabled = ? WHERE id = ?"),
            &[enabled.into(), id.into()],
        )?;
        Ok(())
    }
}
