//! Registered metadata writers (paper §5 "User metadata": distinguished
//! name, description, institution, contact information).

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    /// Register (or update) a metadata writer. Requires service Write.
    pub fn register_user(&self, cred: &Credential, user: &UserRecord) -> Result<()> {
        self.require_service_perm(cred, Permission::Write)?;
        let exists = self
            .db
            .query("SELECT id FROM mcs_users WHERE dn = ?", &[user.dn.as_str().into()])?
            .rows
            .first()
            .map(|r| r[0].clone());
        match exists {
            Some(id) => {
                self.db.execute(
                    "UPDATE mcs_users SET description = ?, institution = ?, email = ?, \
                     phone = ? WHERE id = ?",
                    &[
                        user.description.as_str().into(),
                        user.institution.as_str().into(),
                        user.email.as_str().into(),
                        user.phone.as_str().into(),
                        id,
                    ],
                )?;
            }
            None => {
                self.db.execute(
                    "INSERT INTO mcs_users (dn, description, institution, email, phone) \
                     VALUES (?, ?, ?, ?, ?)",
                    &[
                        user.dn.as_str().into(),
                        user.description.as_str().into(),
                        user.institution.as_str().into(),
                        user.email.as_str().into(),
                        user.phone.as_str().into(),
                    ],
                )?;
            }
        }
        Ok(())
    }

    /// Look up a writer by DN.
    pub fn get_user(&self, cred: &Credential, dn: &str) -> Result<UserRecord> {
        self.require_service_perm(cred, Permission::Read)?;
        let rs = self.db.query(
            "SELECT dn, description, institution, email, phone FROM mcs_users WHERE dn = ?",
            &[dn.into()],
        )?;
        rs.rows
            .first()
            .map(user_from_row)
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::File(format!("user {dn}"))))
    }

    /// All registered writers, by DN.
    pub fn list_users(&self, cred: &Credential) -> Result<Vec<UserRecord>> {
        self.require_service_perm(cred, Permission::Read)?;
        let rs = self.db.query(
            "SELECT dn, description, institution, email, phone FROM mcs_users ORDER BY dn",
            &[],
        )?;
        rs.rows.iter().map(user_from_row).collect()
    }
}

fn user_from_row(r: &Vec<Value>) -> Result<UserRecord> {
    let s = |v: &Value| -> String {
        match v {
            Value::Str(s) => s.to_string(),
            _ => String::new(),
        }
    };
    Ok(UserRecord {
        dn: r[0].as_str()?.to_owned(),
        description: s(&r[1]),
        institution: s(&r[2]),
        email: s(&r[3]),
        phone: s(&r[4]),
    })
}
