//! The MCS relational schema (paper §5, detailed in the GriPhyN technical
//! report the paper cites) and its bootstrap DDL.

use std::sync::Arc;

use relstore::Database;

use crate::error::Result;

/// Index profile for the user-attribute table.
///
/// The 2003 deployment indexed names and ids but **not** attribute values —
/// which is exactly why complex queries degrade with database size
/// (Figures 7, 10, 11). The `ValueIndexed` profile adds per-type
/// (name, value) indexes, the fix §9 gestures at; the ablation bench
/// `ablate_value_index` measures the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexProfile {
    /// Indexes as deployed in the paper (names, ids, (name,id) pairs).
    #[default]
    Paper2003,
    /// Additionally index attribute values per type.
    ValueIndexed,
}

/// DDL for every catalog table.
pub const DDL: &str = "
CREATE TABLE logical_files (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    name VARCHAR(255) NOT NULL,
    version INTEGER NOT NULL DEFAULT 1,
    data_type VARCHAR(64),
    valid BOOLEAN NOT NULL DEFAULT TRUE,
    collection_id INTEGER,
    container_id VARCHAR(128),
    container_service VARCHAR(255),
    creator VARCHAR(255) NOT NULL,
    created DATETIME NOT NULL,
    last_modifier VARCHAR(255),
    last_modified DATETIME,
    master_copy VARCHAR(255),
    audit_enabled BOOLEAN NOT NULL DEFAULT FALSE
);
CREATE UNIQUE INDEX lf_name_version ON logical_files (name, version);
CREATE INDEX lf_collection ON logical_files (collection_id);

CREATE TABLE logical_collections (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    name VARCHAR(255) NOT NULL UNIQUE,
    description TEXT,
    parent_id INTEGER,
    creator VARCHAR(255) NOT NULL,
    created DATETIME NOT NULL,
    last_modifier VARCHAR(255),
    last_modified DATETIME,
    audit_enabled BOOLEAN NOT NULL DEFAULT FALSE
);
CREATE INDEX lc_parent ON logical_collections (parent_id);

CREATE TABLE logical_views (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    name VARCHAR(255) NOT NULL UNIQUE,
    description TEXT,
    creator VARCHAR(255) NOT NULL,
    created DATETIME NOT NULL,
    last_modifier VARCHAR(255),
    last_modified DATETIME,
    audit_enabled BOOLEAN NOT NULL DEFAULT FALSE
);

CREATE TABLE view_members (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    view_id INTEGER NOT NULL,
    member_type INTEGER NOT NULL,
    member_id INTEGER NOT NULL
);
CREATE UNIQUE INDEX vm_unique ON view_members (view_id, member_type, member_id);
CREATE INDEX vm_member ON view_members (member_type, member_id);

CREATE TABLE attribute_definitions (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    name VARCHAR(64) NOT NULL UNIQUE,
    attr_type INTEGER NOT NULL,
    description TEXT,
    creator VARCHAR(255) NOT NULL,
    created DATETIME NOT NULL
);

CREATE TABLE user_attributes (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    object_type INTEGER NOT NULL,
    object_id INTEGER NOT NULL,
    name VARCHAR(64) NOT NULL,
    attr_type INTEGER NOT NULL,
    str_value TEXT,
    int_value INTEGER,
    float_value DOUBLE,
    date_value DATE,
    time_value TIME,
    datetime_value DATETIME
);
CREATE UNIQUE INDEX ua_object ON user_attributes (object_type, object_id, name);
CREATE INDEX ua_name ON user_attributes (name);

CREATE TABLE annotations (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    object_type INTEGER NOT NULL,
    object_id INTEGER NOT NULL,
    annotation TEXT NOT NULL,
    creator VARCHAR(255) NOT NULL,
    created DATETIME NOT NULL
);
CREATE INDEX ann_object ON annotations (object_type, object_id);

CREATE TABLE audit_log (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    object_type INTEGER NOT NULL,
    object_id INTEGER NOT NULL,
    action VARCHAR(32) NOT NULL,
    actor VARCHAR(255) NOT NULL,
    at DATETIME NOT NULL,
    details TEXT
);
CREATE INDEX audit_object ON audit_log (object_type, object_id);

CREATE TABLE transformation_history (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    file_id INTEGER NOT NULL,
    description TEXT NOT NULL,
    actor VARCHAR(255) NOT NULL,
    at DATETIME NOT NULL
);
CREATE INDEX hist_file ON transformation_history (file_id);

CREATE TABLE acl_entries (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    object_type INTEGER NOT NULL,
    object_id INTEGER NOT NULL,
    principal VARCHAR(255) NOT NULL,
    permission INTEGER NOT NULL
);
CREATE UNIQUE INDEX acl_unique ON acl_entries (object_type, object_id, principal, permission);

CREATE TABLE mcs_users (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    dn VARCHAR(255) NOT NULL UNIQUE,
    description TEXT,
    institution VARCHAR(255),
    email VARCHAR(255),
    phone VARCHAR(64)
);

CREATE TABLE external_catalogs (
    id INTEGER PRIMARY KEY AUTO_INCREMENT,
    name VARCHAR(255) NOT NULL UNIQUE,
    catalog_type VARCHAR(64) NOT NULL,
    host VARCHAR(255) NOT NULL,
    ip VARCHAR(64),
    description TEXT
);
";

/// Extra (name, value) indexes for [`IndexProfile::ValueIndexed`].
pub const VALUE_INDEX_DDL: &str = "
CREATE INDEX ua_name_str ON user_attributes (name, str_value);
CREATE INDEX ua_name_int ON user_attributes (name, int_value);
CREATE INDEX ua_name_float ON user_attributes (name, float_value);
CREATE INDEX ua_name_date ON user_attributes (name, date_value);
CREATE INDEX ua_name_time ON user_attributes (name, time_value);
CREATE INDEX ua_name_datetime ON user_attributes (name, datetime_value);
";

/// Create all catalog tables and indexes in `db`.
pub fn bootstrap(db: &Arc<Database>, profile: IndexProfile) -> Result<()> {
    db.execute_script(DDL)?;
    if profile == IndexProfile::ValueIndexed {
        db.execute_script(VALUE_INDEX_DDL)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_creates_all_tables() {
        let db = Arc::new(Database::new());
        bootstrap(&db, IndexProfile::Paper2003).unwrap();
        let names = db.table_names();
        for t in [
            "logical_files",
            "logical_collections",
            "logical_views",
            "view_members",
            "attribute_definitions",
            "user_attributes",
            "annotations",
            "audit_log",
            "transformation_history",
            "acl_entries",
            "mcs_users",
            "external_catalogs",
        ] {
            assert!(names.iter().any(|n| n == t), "missing table {t}");
        }
    }

    #[test]
    fn bootstrap_value_indexed_adds_indexes() {
        let db = Arc::new(Database::new());
        bootstrap(&db, IndexProfile::ValueIndexed).unwrap();
        let t = db.table("user_attributes").unwrap();
        let t = t.read();
        assert!(t.index("ua_name_str").is_some());
        assert!(t.index("ua_name_datetime").is_some());
    }

    #[test]
    fn bootstrap_twice_fails_cleanly() {
        let db = Arc::new(Database::new());
        bootstrap(&db, IndexProfile::Paper2003).unwrap();
        assert!(bootstrap(&db, IndexProfile::Paper2003).is_err());
    }
}
