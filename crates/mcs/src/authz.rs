//! Authentication & authorization (paper §3/§5).
//!
//! Principals are GSI-style distinguished names plus community groups
//! (the Community Authorization Service integration point). Permissions
//! attach to the service, to collections, to views, and to individual
//! files; the *effective* set on a file is the union of its own ACEs and
//! those of its collection and every ancestor collection — exactly the
//! paper's rule. Logical views never affect authorization.


use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    const INS_ACE_SQL: &'static str = "INSERT INTO acl_entries \
         (object_type, object_id, principal, permission) VALUES (?, ?, ?, ?)";

    pub(crate) fn insert_ace(
        &self,
        ot: ObjectType,
        id: i64,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        match self.db.execute(
            Self::INS_ACE_SQL,
            &[ot.code().into(), id.into(), principal.into(), perm.code().into()],
        ) {
            Ok(_) => Ok(()),
            // granting twice is idempotent
            Err(relstore::Error::UniqueViolation { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Like [`Mcs::insert_ace`], but inside an open catalog transaction
    /// (the `acl_entries` table must be claimed for write).
    pub(crate) fn insert_ace_in(
        &self,
        s: &mut relstore::Session,
        ot: ObjectType,
        id: i64,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        match s.execute(
            Self::INS_ACE_SQL,
            &[ot.code().into(), id.into(), principal.into(), perm.code().into()],
        ) {
            Ok(_) => Ok(()),
            Err(relstore::Error::UniqueViolation { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Grant `perm` on `object` to `principal` (a DN, a group name, or
    /// [`ANYONE`]). Requires Admin on the object (or service Admin).
    pub fn grant(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_admin(cred, object)?;
        self.insert_ace(ot, id, principal, perm)
    }

    /// Revoke a previously granted permission. Requires Admin.
    pub fn revoke(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_admin(cred, object)?;
        self.db.execute(
            "DELETE FROM acl_entries WHERE object_type = ? AND object_id = ? \
             AND principal = ? AND permission = ?",
            &[ot.code().into(), id.into(), principal.into(), perm.code().into()],
        )?;
        Ok(())
    }

    /// List the ACL of an object. Requires Admin on it.
    pub fn acl(&self, cred: &Credential, object: &ObjectRef) -> Result<Vec<(String, Permission)>> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_admin(cred, object)?;
        self.acl_entries(ot, id)
    }

    /// Served from the read cache when one is enabled (stamped on the
    /// `acl_entries` write version, so grants and revokes invalidate it
    /// like any other write).
    fn acl_entries(&self, ot: ObjectType, id: i64) -> Result<Vec<(String, Permission)>> {
        use crate::cache::{CacheKey, CacheValue, Lookup};
        let Some(cache) = self.read_cache() else {
            return self.acl_entries_uncached(ot, id);
        };
        let key = CacheKey::Acl(ot.code(), id);
        let stamp = match cache.lookup(&self.db, &key) {
            Lookup::Hit(CacheValue::Acl(v)) => return Ok(v),
            Lookup::Hit(_) => return self.acl_entries_uncached(ot, id),
            Lookup::Miss(stamp) => stamp,
        };
        let v = self.acl_entries_uncached(ot, id)?;
        cache.insert(key, CacheValue::Acl(v.clone()), stamp);
        Ok(v)
    }

    fn acl_entries_uncached(&self, ot: ObjectType, id: i64) -> Result<Vec<(String, Permission)>> {
        let rs =
            self.db.execute_prepared(&self.stmts.sel_acl_obj, &[ot.code().into(), id.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .iter()
            .map(|r| {
                Ok((
                    r[0].as_str()?.to_owned(),
                    Permission::from_code(r[1].as_int()?)
                        .ok_or_else(|| McsError::Internal("bad permission code".into()))?,
                ))
            })
            .collect()
    }

    /// Direct ACE check on one object: does any of the credential's
    /// principals hold `perm` (or Admin, which implies every permission on
    /// that object)?
    fn ace_grants(&self, cred: &Credential, ot: ObjectType, id: i64, perm: Permission) -> Result<bool> {
        let entries = self.acl_entries(ot, id)?;
        // ACE lists and principal chains are both short; scanning beats
        // building a set on this per-call hot path.
        Ok(entries.iter().any(|(who, p)| {
            (*p == perm || *p == Permission::Admin)
                && (who == ANYONE || cred.principals().any(|pr| pr == who.as_str()))
        }))
    }

    /// Is this credential a service administrator (superuser)?
    pub fn is_service_admin(&self, cred: &Credential) -> Result<bool> {
        self.ace_grants(cred, ObjectType::Service, 0, Permission::Admin)
    }

    /// Require `perm` at service level.
    pub(crate) fn require_service_perm(&self, cred: &Credential, perm: Permission) -> Result<()> {
        if self.ace_grants(cred, ObjectType::Service, 0, perm)? {
            return Ok(());
        }
        Err(McsError::PermissionDenied {
            principal: cred.dn.clone(),
            needed: perm,
            object: ObjectRef::Service,
        })
    }

    /// Require `perm` on a collection: service admin, or an ACE on the
    /// collection or any ancestor.
    pub(crate) fn require_collection_perm(
        &self,
        cred: &Credential,
        coll: &Collection,
        perm: Permission,
    ) -> Result<()> {
        // A service-level grant covers the entire contents of the service
        // (paper §3: authorization granularity "ranging from providing
        // access to the entire contents of the service to restricting
        // access on individual mappings").
        if self.ace_grants(cred, ObjectType::Service, 0, perm)? {
            return Ok(());
        }
        let mut current = Some(coll.clone());
        let mut hops = 0;
        while let Some(c) = current {
            if self.ace_grants(cred, ObjectType::Collection, c.id, perm)? {
                return Ok(());
            }
            hops += 1;
            if hops > 1000 {
                return Err(McsError::CycleDetected(format!(
                    "collection ancestry of `{}` exceeds 1000 levels",
                    coll.name
                )));
            }
            current = match c.parent_id {
                Some(pid) => Some(self.resolve_collection_by_id(pid)?),
                None => None,
            };
        }
        Err(McsError::PermissionDenied {
            principal: cred.dn.clone(),
            needed: perm,
            object: ObjectRef::Collection(coll.name.clone()),
        })
    }

    /// Require `perm` on a file: service admin, an ACE on the file, or an
    /// ACE anywhere up its collection chain (the union rule).
    pub(crate) fn require_file_perm(
        &self,
        cred: &Credential,
        file: &LogicalFile,
        perm: Permission,
    ) -> Result<()> {
        if self.ace_grants(cred, ObjectType::Service, 0, perm)? {
            return Ok(());
        }
        if self.ace_grants(cred, ObjectType::File, file.id, perm)? {
            return Ok(());
        }
        if let Some(cid) = file.collection_id {
            let c = self.resolve_collection_by_id(cid)?;
            match self.require_collection_perm(cred, &c, perm) {
                Ok(()) => return Ok(()),
                Err(McsError::PermissionDenied { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        Err(McsError::PermissionDenied {
            principal: cred.dn.clone(),
            needed: perm,
            object: ObjectRef::FileVersion(file.name.clone(), file.version),
        })
    }

    /// Require `perm` on a view (views carry their own ACLs but never
    /// affect their members' authorization).
    pub(crate) fn require_view_perm(
        &self,
        cred: &Credential,
        view: &View,
        perm: Permission,
    ) -> Result<()> {
        if self.ace_grants(cred, ObjectType::Service, 0, perm)? {
            return Ok(());
        }
        if self.ace_grants(cred, ObjectType::View, view.id, perm)? {
            return Ok(());
        }
        Err(McsError::PermissionDenied {
            principal: cred.dn.clone(),
            needed: perm,
            object: ObjectRef::View(view.name.clone()),
        })
    }

    /// Require `perm` on whatever `object` refers to.
    pub(crate) fn require_ref_perm(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        perm: Permission,
    ) -> Result<()> {
        match object {
            ObjectRef::File(n) => {
                let f = self.resolve_file(n)?;
                self.require_file_perm(cred, &f, perm)
            }
            ObjectRef::FileVersion(n, v) => {
                let f = self.resolve_file_version(n, *v)?;
                self.require_file_perm(cred, &f, perm)
            }
            ObjectRef::Collection(n) => {
                let c = self.resolve_collection(n)?;
                self.require_collection_perm(cred, &c, perm)
            }
            ObjectRef::View(n) => {
                let v = self.resolve_view(n)?;
                self.require_view_perm(cred, &v, perm)
            }
            ObjectRef::Service => self.require_service_perm(cred, perm),
        }
    }

    /// Require Admin on an object (service admins always pass).
    fn require_admin(&self, cred: &Credential, object: &ObjectRef) -> Result<()> {
        if self.is_service_admin(cred)? {
            return Ok(());
        }
        let (ot, id, _, _) = self.resolve_ref(object)?;
        if self.ace_grants(cred, ot, id, Permission::Admin)? {
            return Ok(());
        }
        Err(McsError::PermissionDenied {
            principal: cred.dn.clone(),
            needed: Permission::Admin,
            object: object.clone(),
        })
    }

    /// Convenience for test/bench setups: open the service to everyone
    /// (read + write + delete). Requires service Admin.
    pub fn allow_anyone(&self, cred: &Credential) -> Result<()> {
        self.require_service_perm(cred, Permission::Admin)?;
        self.db.transaction(&[("acl_entries", relstore::Access::Write)], |s| {
            for p in [Permission::Read, Permission::Write, Permission::Delete] {
                self.insert_ace_in(s, ObjectType::Service, 0, ANYONE, p)?;
            }
            Ok(())
        })
    }
}
