//! Annotations: free-text observations community members attach to
//! published data (paper §2 "Publication" and §5 "Annotation attributes").

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    /// Attach an annotation to an object (paper API: "Annotating a
    /// logical object"). Requires Read on the object — annotating is how
    /// the community layers its own observations on published data it can
    /// see, without needing write access to the publisher's metadata.
    pub fn annotate(&self, cred: &Credential, object: &ObjectRef, text: &str) -> Result<()> {
        let (ot, id, audit, name) = self.resolve_ref(object)?;
        if ot == ObjectType::Service {
            return Err(McsError::Internal("cannot annotate the service".into()));
        }
        self.require_ref_perm(cred, object, Permission::Read)?;
        self.db.transaction(
            &[("annotations", relstore::Access::Write), ("audit_log", relstore::Access::Write)],
            |s| {
                s.execute(
                    "INSERT INTO annotations \
                     (object_type, object_id, annotation, creator, created) \
                     VALUES (?, ?, ?, ?, ?)",
                    &[
                        ot.code().into(),
                        id.into(),
                        text.into(),
                        cred.dn.as_str().into(),
                        self.now(),
                    ],
                )?;
                if audit {
                    self.audit_action_in(s, ot, id, "annotate", cred, &name)?;
                }
                Ok(())
            },
        )
    }

    /// Fetch an object's annotations, oldest first. Requires Read.
    pub fn get_annotations(
        &self,
        cred: &Credential,
        object: &ObjectRef,
    ) -> Result<Vec<Annotation>> {
        let (ot, id, _, _) = self.resolve_ref(object)?;
        self.require_ref_perm(cred, object, Permission::Read)?;
        let rs = self.db.execute(
            "SELECT annotation, creator, created FROM annotations \
             WHERE object_type = ? AND object_id = ? ORDER BY id",
            &[ot.code().into(), id.into()],
        )?;
        rs.rows
            .expect("select")
            .rows
            .iter()
            .map(|r| {
                Ok(Annotation {
                    object_type: ot,
                    object_id: id,
                    text: r[0].as_str()?.to_owned(),
                    creator: r[1].as_str()?.to_owned(),
                    created: match &r[2] {
                        Value::DateTime(dt) => *dt,
                        _ => return Err(McsError::Internal("bad created column".into())),
                    },
                })
            })
            .collect()
    }
}
