//! The "more general query model" of paper §9.
//!
//! The 2003 MCS API only supported conjunctions of attribute predicates;
//! both the ESG experience (§6.2: "ESG scientists wanted more flexibility
//! in the types of queries") and the redesign plans (§9: "we will provide
//! a more general query model") call for arbitrary boolean combinations.
//! [`QueryExpr`] provides AND / OR / NOT trees over attribute predicates
//! plus predicates on predefined (static) metadata, evaluated by set
//! algebra over the same access paths as the classic conjunctive query.

use std::collections::HashSet;

use relstore::predicate::like_match;
use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

/// Predicates over the predefined (static) logical-file schema that the
/// general model admits alongside user-defined attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticPredicate {
    /// Logical name LIKE pattern.
    NameLike(String),
    /// Data type equals.
    DataTypeIs(String),
    /// Creator DN equals.
    CreatorIs(String),
    /// Member of this logical collection (directly).
    InCollection(String),
    /// Validity flag equals.
    ValidIs(bool),
}

/// A general boolean query over logical files.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A user-defined attribute predicate (leaf).
    Attr(AttrPredicate),
    /// A static-schema predicate (leaf).
    Static(StaticPredicate),
    /// All subexpressions must hold.
    And(Vec<QueryExpr>),
    /// At least one subexpression must hold.
    Or(Vec<QueryExpr>),
    /// The subexpression must not hold.
    Not(Box<QueryExpr>),
}

impl QueryExpr {
    /// Leaf: attribute equality.
    pub fn attr_eq(name: impl Into<String>, value: impl Into<Value>) -> QueryExpr {
        QueryExpr::Attr(AttrPredicate::eq(name, value))
    }

    /// `self AND other`.
    pub fn and(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::And(mut v) => {
                v.push(other);
                QueryExpr::And(v)
            }
            s => QueryExpr::And(vec![s, other]),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::Or(mut v) => {
                v.push(other);
                QueryExpr::Or(v)
            }
            s => QueryExpr::Or(vec![s, other]),
        }
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> QueryExpr {
        QueryExpr::Not(Box::new(self))
    }

    /// Number of leaves (guards against pathological requests).
    pub fn leaf_count(&self) -> usize {
        match self {
            QueryExpr::Attr(_) | QueryExpr::Static(_) => 1,
            QueryExpr::And(v) | QueryExpr::Or(v) => v.iter().map(QueryExpr::leaf_count).sum(),
            QueryExpr::Not(e) => e.leaf_count(),
        }
    }
}

/// Evaluation limit: queries with more leaves than this are rejected.
const MAX_LEAVES: usize = 64;

/// Iterate the rows a reader should see: on the barrier engine, the live
/// latest images ([`relstore::Table::scan`]); under MVCC, every slot
/// filtered through this thread's snapshot — a slot whose latest image is
/// deleted or uncommitted may still carry a version the snapshot sees.
fn snapshot_scan(t: &relstore::Table) -> Box<dyn Iterator<Item = &relstore::Row> + '_> {
    if t.is_mvcc() {
        Box::new(
            (0..t.slot_count() as u64)
                .filter_map(move |i| relstore::snapshot_row(t, relstore::RowId(i))),
        )
    } else {
        Box::new(t.scan().map(|(_, r)| r))
    }
}

impl Mcs {
    /// Evaluate a general boolean query; returns matching **valid**
    /// (name, version) pairs, sorted (§9's general query model).
    /// Requires service Read.
    pub fn general_query(&self, cred: &Credential, expr: &QueryExpr) -> Result<Vec<(String, i64)>> {
        self.require_service_perm(cred, Permission::Read)?;
        if expr.leaf_count() == 0 {
            return Err(McsError::BadAttribute("query has no predicates".into()));
        }
        if expr.leaf_count() > MAX_LEAVES {
            return Err(McsError::BadAttribute(format!(
                "query has {} leaves (limit {MAX_LEAVES})",
                expr.leaf_count()
            )));
        }
        // One snapshot scope for the whole boolean tree: every leaf (and
        // the NOT complement's full scan) reads the same consistent cut.
        // No-op on the barrier engine.
        let ids = self.db.with_snapshot(|| self.eval_expr(expr))?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match self.resolve_file_by_id(id) {
                Ok(f) if f.valid => out.push((f.name, f.version)),
                Ok(_) => {}
                Err(McsError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        out.sort();
        Ok(out)
    }

    /// Set-algebra evaluation: every node yields the set of file ids
    /// satisfying it. NOT is complement against the full file-id set.
    fn eval_expr(&self, expr: &QueryExpr) -> Result<HashSet<i64>> {
        Ok(match expr {
            QueryExpr::Attr(p) => {
                let def = self.attribute_definition(&p.name)?.ok_or_else(|| {
                    McsError::BadAttribute(format!("`{}` is not defined", p.name))
                })?;
                let handle = self.db.table("user_attributes")?;
                let t = handle.read();
                self.eval_predicate(&t, p, def.attr_type)?
            }
            QueryExpr::Static(sp) => self.eval_static(sp)?,
            QueryExpr::And(subs) => {
                // Under the value-indexed profile, well-typed Attr
                // leaves of a conjunction are compiled into one
                // cost-based plan (crate::plan) instead of evaluating in
                // syntactic order; the group runs where its first member
                // stood and every other child still evaluates
                // sequentially at its own position. Like any cost-based
                // reorder this may change *which* error a multi-error
                // expression reports, never a successful answer. Leaves
                // that fail type-checking stay sequential so they error
                // (or not) exactly where the naive path would.
                let planned = self.profile == crate::schema::IndexProfile::ValueIndexed
                    && !crate::plan::bypass_active();
                let mut grouped = vec![false; subs.len()];
                let mut group: Vec<(&AttrPredicate, AttrType)> = Vec::new();
                if planned {
                    for (i, s) in subs.iter().enumerate() {
                        if let QueryExpr::Attr(p) = s {
                            if let Ok(ty) = self.check_predicate_type(p) {
                                grouped[i] = true;
                                group.push((p, ty));
                            }
                        }
                    }
                    if group.len() < 2 {
                        grouped.iter_mut().for_each(|g| *g = false);
                        group.clear();
                    }
                }
                let mut acc: Option<HashSet<i64>> = None;
                let mut group_done = false;
                for (i, s) in subs.iter().enumerate() {
                    let ids = if grouped[i] {
                        if group_done {
                            continue;
                        }
                        group_done = true;
                        let handle = self.db.table("user_attributes")?;
                        let t = handle.read();
                        let plan = crate::plan::plan_conjunction(&t, &group)?;
                        self.run_attr_plan(&t, &group, &plan)?
                    } else {
                        self.eval_expr(s)?
                    };
                    acc = Some(match acc {
                        None => ids,
                        Some(prev) => prev.intersection(&ids).copied().collect(),
                    });
                    if acc.as_ref().is_some_and(HashSet::is_empty) {
                        break;
                    }
                }
                acc.unwrap_or_default()
            }
            QueryExpr::Or(subs) => {
                let mut acc = HashSet::new();
                for s in subs {
                    acc.extend(self.eval_expr(s)?);
                }
                acc
            }
            QueryExpr::Not(sub) => {
                let exclude = self.eval_expr(sub)?;
                let handle = self.db.table("logical_files")?;
                let t = handle.read();
                snapshot_scan(&t)
                    .filter_map(|row| row[0].as_int().ok())
                    .filter(|id| !exclude.contains(id))
                    .collect()
            }
        })
    }

    fn eval_static(&self, sp: &StaticPredicate) -> Result<HashSet<i64>> {
        let handle = self.db.table("logical_files")?;
        let t = handle.read();
        let mut out = HashSet::new();
        match sp {
            StaticPredicate::InCollection(name) => {
                // indexed path: collection_id lookup
                let c = self.resolve_collection(name)?;
                let ix = t
                    .index("lf_collection")
                    .ok_or_else(|| McsError::Internal("missing lf_collection index".into()))?;
                for id in ix.get_eq(&relstore::IndexKey(vec![Value::Int(c.id)])) {
                    if let Some(row) = relstore::snapshot_row(&t, id) {
                        // MVCC keeps superseded keys in the index until
                        // vacuum; confirm the visible image is still in
                        // this collection (always true on the barrier
                        // engine).
                        if row[5] == Value::Int(c.id) {
                            out.insert(row[0].as_int()?);
                        }
                    }
                }
            }
            other => {
                // full scan over predefined columns (these are the paper's
                // "static attributes"; only names are indexed)
                for row in snapshot_scan(&t) {
                    let matches = match other {
                        StaticPredicate::NameLike(pat) => like_match(row[1].as_str()?, pat),
                        StaticPredicate::DataTypeIs(dt) => {
                            matches!(&row[3], Value::Str(s) if s.as_ref() == dt.as_str())
                        }
                        StaticPredicate::CreatorIs(dn) => row[8].as_str()? == dn,
                        StaticPredicate::ValidIs(v) => row[4].as_bool()? == *v,
                        StaticPredicate::InCollection(_) => unreachable!("handled above"),
                    };
                    if matches {
                        out.insert(row[0].as_int()?);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup() -> (Mcs, Credential) {
        let a = Credential::new("/CN=admin");
        let m = Mcs::with_options(
            &a,
            crate::schema::IndexProfile::Paper2003,
            Arc::new(crate::clock::ManualClock::default()),
        )
        .unwrap();
        m.define_attribute(&a, "ch", AttrType::Str, "").unwrap();
        m.define_attribute(&a, "gps", AttrType::Int, "").unwrap();
        m.create_collection(&a, "s1", None, "").unwrap();
        for (name, ch, gps, coll) in [
            ("a", "H1", 100i64, true),
            ("b", "H1", 200, false),
            ("c", "L1", 100, true),
            ("d", "L1", 300, false),
        ] {
            let mut spec = FileSpec::named(name).attr("ch", ch).attr("gps", gps);
            if coll {
                spec = spec.in_collection("s1");
            }
            m.create_file(&a, &spec).unwrap();
        }
        (m, a)
    }

    fn names(hits: Vec<(String, i64)>) -> Vec<String> {
        hits.into_iter().map(|(n, _)| n).collect()
    }

    #[test]
    fn or_union() {
        let (m, a) = setup();
        let q = QueryExpr::attr_eq("ch", "H1").or(QueryExpr::attr_eq("gps", 300i64));
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["a", "b", "d"]);
    }

    #[test]
    fn not_complement() {
        let (m, a) = setup();
        let q = QueryExpr::attr_eq("ch", "H1").not();
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["c", "d"]);
    }

    #[test]
    fn nested_and_or_not() {
        let (m, a) = setup();
        // (ch = H1 OR ch = L1) AND NOT gps = 100  => b, d
        let q = QueryExpr::attr_eq("ch", "H1")
            .or(QueryExpr::attr_eq("ch", "L1"))
            .and(QueryExpr::attr_eq("gps", 100i64).not());
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["b", "d"]);
    }

    #[test]
    fn static_predicates() {
        let (m, a) = setup();
        let q = QueryExpr::Static(StaticPredicate::InCollection("s1".into()));
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["a", "c"]);
        let q = QueryExpr::Static(StaticPredicate::NameLike("_".into()));
        assert_eq!(m.general_query(&a, &q).unwrap().len(), 4);
        let q = QueryExpr::Static(StaticPredicate::CreatorIs("/CN=admin".into()))
            .and(QueryExpr::attr_eq("ch", "L1"));
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["c", "d"]);
    }

    #[test]
    fn equivalent_to_classic_conjunction() {
        let (m, a) = setup();
        let classic = m
            .query_by_attributes(
                &a,
                &[AttrPredicate::eq("ch", "H1"), AttrPredicate::eq("gps", 100i64)],
            )
            .unwrap();
        let general = m
            .general_query(
                &a,
                &QueryExpr::attr_eq("ch", "H1").and(QueryExpr::attr_eq("gps", 100i64)),
            )
            .unwrap();
        assert_eq!(classic, general);
    }

    #[test]
    fn invalid_files_excluded_even_via_not() {
        let (m, a) = setup();
        m.invalidate_file(&a, "d").unwrap();
        let q = QueryExpr::attr_eq("ch", "H1").not();
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["c"]);
    }

    #[test]
    fn guards() {
        let (m, a) = setup();
        assert!(m.general_query(&a, &QueryExpr::And(vec![])).is_err());
        let huge = QueryExpr::Or((0..65).map(|i| QueryExpr::attr_eq("gps", i as i64)).collect());
        assert!(m.general_query(&a, &huge).is_err());
        let undefined = QueryExpr::attr_eq("nope", 1i64);
        assert!(m.general_query(&a, &undefined).is_err());
    }

    #[test]
    fn range_leaves_inside_boolean_structure() {
        let (m, a) = setup();
        let q = QueryExpr::Attr(AttrPredicate {
            name: "gps".into(),
            op: AttrOp::Ge,
            value: 200i64.into(),
        })
        .or(QueryExpr::attr_eq("ch", "L1"));
        assert_eq!(names(m.general_query(&a, &q).unwrap()), vec!["b", "c", "d"]);
    }
}
