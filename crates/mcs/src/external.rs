//! External catalog pointers (paper §5): metadata may be spread across
//! multiple heterogeneous catalogs; the MCS records how to reach them.

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    /// Register an external catalog. Requires service Write.
    pub fn register_external_catalog(
        &self,
        cred: &Credential,
        cat: &ExternalCatalog,
    ) -> Result<()> {
        validate_name(&cat.name)?;
        self.require_service_perm(cred, Permission::Write)?;
        match self.db.execute(
            "INSERT INTO external_catalogs (name, catalog_type, host, ip, description) \
             VALUES (?, ?, ?, ?, ?)",
            &[
                cat.name.as_str().into(),
                cat.catalog_type.as_str().into(),
                cat.host.as_str().into(),
                cat.ip.as_str().into(),
                cat.description.as_str().into(),
            ],
        ) {
            Ok(_) => Ok(()),
            Err(relstore::Error::UniqueViolation { .. }) => {
                Err(McsError::AlreadyExists(cat.name.clone()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// All registered external catalogs, by name. Requires service Read.
    pub fn list_external_catalogs(&self, cred: &Credential) -> Result<Vec<ExternalCatalog>> {
        self.require_service_perm(cred, Permission::Read)?;
        let rs = self.db.query(
            "SELECT name, catalog_type, host, ip, description FROM external_catalogs \
             ORDER BY name",
            &[],
        )?;
        rs.rows
            .iter()
            .map(|r| {
                let s = |v: &Value| -> String {
                    match v {
                        Value::Str(s) => s.to_string(),
                        _ => String::new(),
                    }
                };
                Ok(ExternalCatalog {
                    name: r[0].as_str()?.to_owned(),
                    catalog_type: r[1].as_str()?.to_owned(),
                    host: r[2].as_str()?.to_owned(),
                    ip: s(&r[3]),
                    description: s(&r[4]),
                })
            })
            .collect()
    }
}
