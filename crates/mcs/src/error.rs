//! MCS error types.

use std::fmt;

use crate::model::{ObjectRef, Permission};

/// Errors produced by the Metadata Catalog Service.
#[derive(Debug, Clone, PartialEq)]
pub enum McsError {
    /// The named object does not exist.
    NotFound(ObjectRef),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// The caller lacks a required permission on an object.
    PermissionDenied {
        /// Who was denied.
        principal: String,
        /// What they needed.
        needed: Permission,
        /// On what.
        object: ObjectRef,
    },
    /// A name failed validation (empty, too long, illegal characters).
    InvalidName(String),
    /// Adding the member would create a cycle (collection parents, view
    /// membership must stay acyclic per the paper's data model).
    CycleDetected(String),
    /// A logical file may belong to at most one logical collection.
    AlreadyInCollection {
        /// The file.
        file: String,
        /// The collection it is already in.
        collection: String,
    },
    /// Collection is not empty and `recursive` was not requested.
    CollectionNotEmpty(String),
    /// Attribute problems: unknown definition, type mismatch, redefinition.
    BadAttribute(String),
    /// Version conflict (file+version pair must be unique; queries on
    /// multi-version files must specify the version).
    VersionConflict(String),
    /// An asynchronously-acknowledged write can no longer become durable
    /// through the log (the WAL writer failed after the ack); surfaced by
    /// `wait_for_epoch`/`sync_now` so clients holding an epoch learn the
    /// promise broke instead of waiting forever. A checkpoint on the
    /// service host clears the condition.
    DurabilityLost(String),
    /// Underlying database error.
    Db(relstore::Error),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for McsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McsError::NotFound(o) => write!(f, "{o} not found"),
            McsError::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            McsError::PermissionDenied { principal, needed, object } => {
                write!(f, "`{principal}` lacks {needed:?} on {object}")
            }
            McsError::InvalidName(n) => write!(f, "invalid name `{n}`"),
            McsError::CycleDetected(m) => write!(f, "cycle detected: {m}"),
            McsError::AlreadyInCollection { file, collection } => {
                write!(f, "logical file `{file}` already belongs to collection `{collection}`")
            }
            McsError::CollectionNotEmpty(n) => write!(f, "collection `{n}` is not empty"),
            McsError::BadAttribute(m) => write!(f, "attribute error: {m}"),
            McsError::VersionConflict(m) => write!(f, "version conflict: {m}"),
            McsError::DurabilityLost(m) => write!(f, "durability lost: {m}"),
            McsError::Db(e) => write!(f, "database error: {e}"),
            McsError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for McsError {}

impl From<relstore::Error> for McsError {
    fn from(e: relstore::Error) -> Self {
        match e {
            relstore::Error::DurabilityLost(m) => McsError::DurabilityLost(m),
            other => McsError::Db(other),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, McsError>;
