//! XML metadata shredding — the Earth System Grid integration (paper
//! §6.2).
//!
//! ESG metadata followed the netCDF convention and was stored in XML;
//! general metadata used Dublin Core. To load it into the MCS, the XML
//! files were *shredded*: each leaf element (and attribute) becomes one
//! user-defined attribute keyed by its slash-joined path. The paper
//! reports this worked but was "cumbersome and slow" and that there was
//! "not a simple mapping between XML metadata files and MCS relational
//! tables" — faithfully reproduced here: nested/repeated elements flatten
//! lossily (repeats get numeric suffixes) and everything the shredder
//! cannot type becomes a string.

use relstore::{Value, ValueType};
use xmlkit::Element;

use crate::catalog::Mcs;
use crate::error::Result;
use crate::model::{AttrType, Attribute, Credential, FileSpec};

/// One shredded attribute: a slash-joined XML path and a typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct ShreddedAttribute {
    /// Path such as `variable/temperature/units`.
    pub path: String,
    /// Best-effort typed value.
    pub value: Value,
    /// Inferred attribute type.
    pub attr_type: AttrType,
}

/// Infer the tightest type for a text value: int, then float, then date,
/// then datetime, falling back to string.
pub fn infer_value(text: &str) -> (Value, AttrType) {
    let t = text.trim();
    if let Ok(v) = Value::parse_as(t, ValueType::Int) {
        return (v, AttrType::Int);
    }
    if let Ok(v) = Value::parse_as(t, ValueType::Float) {
        return (v, AttrType::Float);
    }
    if let Ok(v) = Value::parse_as(t, ValueType::Date) {
        return (v, AttrType::Date);
    }
    if let Ok(v) = Value::parse_as(t, ValueType::DateTime) {
        return (v, AttrType::DateTime);
    }
    (Value::from(t), AttrType::Str)
}

/// Flatten an XML document into path/value attributes. `max_attrs` guards
/// against pathological documents.
pub fn shred(root: &Element, max_attrs: usize) -> Vec<ShreddedAttribute> {
    let mut out = Vec::new();
    walk(root, String::new(), &mut out, max_attrs);
    out
}

fn sanitize(name: &str) -> String {
    // strip namespace prefixes: dc:title -> title
    name.rsplit(':').next().unwrap_or(name).to_owned()
}

fn walk(e: &Element, prefix: String, out: &mut Vec<ShreddedAttribute>, max: usize) {
    if out.len() >= max {
        return;
    }
    let here = if prefix.is_empty() {
        sanitize(&e.name)
    } else {
        format!("{prefix}/{}", sanitize(&e.name))
    };
    for (an, av) in &e.attrs {
        if an.starts_with("xmlns") {
            continue;
        }
        let (value, attr_type) = infer_value(av);
        push_unique(out, format!("{here}@{}", sanitize(an)), value, attr_type, max);
    }
    let text = e.text_content();
    let children: Vec<&Element> = e.elements().collect();
    if children.is_empty() {
        if !text.trim().is_empty() {
            let (value, attr_type) = infer_value(&text);
            push_unique(out, here, value, attr_type, max);
        }
        return;
    }
    for c in children {
        walk(c, here.clone(), out, max);
    }
}

/// Repeated paths get `#2`, `#3`... suffixes — this is the lossy
/// flattening the ESG scientists complained about.
fn push_unique(
    out: &mut Vec<ShreddedAttribute>,
    path: String,
    value: Value,
    attr_type: AttrType,
    max: usize,
) {
    if out.len() >= max {
        return;
    }
    let mut candidate = path.clone();
    let mut n = 1;
    while out.iter().any(|a| a.path == candidate) {
        n += 1;
        candidate = format!("{path}#{n}");
    }
    out.push(ShreddedAttribute { path: candidate, value, attr_type });
}

impl Mcs {
    /// Shred an XML metadata document and publish it as a logical file
    /// with the shredded attributes (the ESG loading path). Attribute
    /// definitions are created on first use; a path whose inferred type
    /// conflicts with an existing definition is stored as its string
    /// rendering under `{path}.str` (the "shredding proved cumbersome"
    /// escape hatch).
    pub fn publish_xml_metadata(
        &self,
        cred: &Credential,
        logical_name: &str,
        xml: &str,
    ) -> Result<(crate::model::LogicalFile, usize)> {
        let root = xmlkit::parse(xml)
            .map_err(|e| crate::error::McsError::BadAttribute(format!("bad XML: {e}")))?;
        let shredded = shred(&root, 512);
        let mut spec = FileSpec::named(logical_name);
        spec.data_type = Some("XML".into());
        for s in &shredded {
            let (name, value) = match self.attribute_definition(&s.path)? {
                Some(def) if def.attr_type != s.attr_type => {
                    // type clash with an earlier document: degrade to string
                    let alt = format!("{}.str", s.path);
                    self.define_attribute(cred, &alt, AttrType::Str, "shredded (type clash)")?;
                    (alt, Value::from(s.value.to_string()))
                }
                Some(_) => (s.path.clone(), s.value.clone()),
                None => {
                    self.define_attribute(cred, &s.path, s.attr_type, "shredded from XML")?;
                    (s.path.clone(), s.value.clone())
                }
            };
            spec.attributes.push(Attribute { name, value });
        }
        let n = spec.attributes.len();
        Ok((self.create_file(cred, &spec)?, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
        <metadata xmlns:dc="http://purl.org/dc/elements/1.1/">
          <dc:title>NCAR CSM run b20.007</dc:title>
          <dc:date>1999-05-01</dc:date>
          <variable name="TS">
            <units>K</units>
            <average>287.4</average>
          </variable>
          <variable name="PRECT">
            <units>m/s</units>
            <average>3.1e-8</average>
          </variable>
          <timesteps>1460</timesteps>
        </metadata>"#;

    #[test]
    fn shreds_paths_and_types() {
        let root = xmlkit::parse(SAMPLE).unwrap();
        let attrs = shred(&root, 512);
        let find = |p: &str| attrs.iter().find(|a| a.path == p).unwrap_or_else(|| panic!("{p}"));
        assert_eq!(find("metadata/title").attr_type, AttrType::Str);
        assert_eq!(find("metadata/date").attr_type, AttrType::Date);
        assert_eq!(find("metadata/timesteps").value, Value::Int(1460));
        assert_eq!(find("metadata/variable@name").value, Value::from("TS"));
        // repeated <variable> flattens with suffixes — the lossy mapping
        assert_eq!(find("metadata/variable@name#2").value, Value::from("PRECT"));
        assert_eq!(find("metadata/variable/average").value, Value::Float(287.4));
        assert_eq!(find("metadata/variable/average#2").value, Value::Float(3.1e-8));
    }

    #[test]
    fn publish_and_query_shredded_metadata() {
        let admin = Credential::new("/CN=esg-admin");
        let m = Mcs::new(&admin).unwrap();
        let (f, n) = m.publish_xml_metadata(&admin, "b20.007.nc", SAMPLE).unwrap();
        assert_eq!(f.data_type.as_deref(), Some("XML"));
        assert!(n >= 8, "expected many shredded attributes, got {n}");
        // discover by a Dublin Core field
        let hits = m
            .query_by_attributes(
                &admin,
                &[crate::model::AttrPredicate::eq("metadata/title", "NCAR CSM run b20.007")],
            )
            .unwrap();
        assert_eq!(hits, vec![("b20.007.nc".to_string(), 1)]);
    }

    #[test]
    fn type_clash_degrades_to_string() {
        let admin = Credential::new("/CN=esg-admin");
        let m = Mcs::new(&admin).unwrap();
        m.publish_xml_metadata(&admin, "a.nc", "<m><v>42</v></m>").unwrap();
        // second document has a string where the first had an int
        m.publish_xml_metadata(&admin, "b.nc", "<m><v>forty-two</v></m>").unwrap();
        let attrs = m
            .get_attributes(&admin, &crate::model::ObjectRef::File("b.nc".into()))
            .unwrap();
        assert!(attrs.iter().any(|a| a.name == "m/v.str"));
    }

    #[test]
    fn shred_respects_cap() {
        let mut doc = String::from("<m>");
        for i in 0..100 {
            doc.push_str(&format!("<e{i}>x</e{i}>"));
        }
        doc.push_str("</m>");
        let root = xmlkit::parse(&doc).unwrap();
        assert_eq!(shred(&root, 10).len(), 10);
    }

    #[test]
    fn infer_value_priorities() {
        assert_eq!(infer_value("42").1, AttrType::Int);
        assert_eq!(infer_value("42.5").1, AttrType::Float);
        assert_eq!(infer_value("2003-11-15").1, AttrType::Date);
        assert_eq!(infer_value("2003-11-15 08:00:00").1, AttrType::DateTime);
        assert_eq!(infer_value("K").1, AttrType::Str);
    }
}
