//! Attribute-based discovery — the paper's core query mechanisms.
//!
//! * **Simple query** (Figures 6/9): value match on a single static
//!   attribute of a logical file — [`Mcs::get_file`] / by-name lookup,
//!   served by the unique (name, version) index, cost independent of
//!   database size.
//! * **Complex query** (Figures 7/10/11): conjunctive value match on many
//!   user-defined attributes — [`Mcs::query_by_attributes`]. Under the
//!   paper's index profile each predicate scans the posting list of its
//!   attribute *name* (values are unindexed), so cost grows with both
//!   database size and predicate count, reproducing the paper's shapes.

use std::collections::HashSet;
use std::ops::Bound;

use relstore::predicate::like_match;
use relstore::{IndexKey, Value};

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;
use crate::schema::IndexProfile;

/// Contents of a collection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectionContents {
    /// Files directly in the collection: (name, version).
    pub files: Vec<(String, i64)>,
    /// Direct subcollections, by name.
    pub subcollections: Vec<String>,
}

impl Mcs {
    /// Attribute-based ("complex") query: return the logical names (with
    /// versions) of all **valid** logical files matching every predicate
    /// (paper API: "Querying the catalog for logical objects based on
    /// object attributes"). Requires service Read.
    pub fn query_by_attributes(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<(String, i64)>> {
        self.require_service_perm(cred, Permission::Read)?;
        if preds.is_empty() {
            return Err(McsError::BadAttribute("query needs at least one predicate".into()));
        }
        // Probe the read cache *after* the permission check (authorization
        // is never cached) and take the version vector of the query's
        // input tables before computing, so the fill below can only stamp
        // a state at least as old as what it read — any write landing
        // mid-compute bumps a version and the entry self-invalidates.
        let mut fill = None;
        if let Some(cache) = self.read_cache() {
            let key = crate::cache::query_key(preds, self.profile);
            match cache.lookup(&self.db, &key) {
                crate::cache::Lookup::Hit(crate::cache::CacheValue::Hits(h)) => return Ok(h),
                crate::cache::Lookup::Hit(_) => {}
                crate::cache::Lookup::Miss(stamp) => fill = Some((cache, key, stamp)),
            }
        }
        // Resolve definitions and type-check before touching the table.
        let mut checked: Vec<(&AttrPredicate, AttrType)> = Vec::with_capacity(preds.len());
        for p in preds {
            let def = self
                .attribute_definition(&p.name)?
                .ok_or_else(|| McsError::BadAttribute(format!("`{}` is not defined", p.name)))?;
            let given = AttrType::of_value(&p.value).ok_or_else(|| {
                McsError::BadAttribute(format!("`{}`: unsupported comparison value", p.name))
            })?;
            let ok = given == def.attr_type
                || (given == AttrType::Int && def.attr_type == AttrType::Float);
            if !ok {
                return Err(McsError::BadAttribute(format!(
                    "`{}` is {:?}, got {given:?}",
                    p.name, def.attr_type
                )));
            }
            if p.op == AttrOp::Like && def.attr_type != AttrType::Str {
                return Err(McsError::BadAttribute(format!(
                    "LIKE requires a string attribute, `{}` is {:?}",
                    p.name, def.attr_type
                )));
            }
            checked.push((p, def.attr_type));
        }

        // Under MVCC the whole predicate evaluation runs inside one
        // snapshot scope, so every posting list is read from the same
        // consistent cut; on the barrier engine `with_snapshot` is a no-op
        // and the table read lock provides per-statement isolation.
        let candidates: Option<HashSet<i64>> = self.db.with_snapshot(|| {
            let mut candidates: Option<HashSet<i64>> = None;
            let handle = self.db.table("user_attributes")?;
            let t = handle.read();
            let intersect = |acc: Option<HashSet<i64>>, ids: HashSet<i64>| {
                Some(match acc {
                    None => ids,
                    Some(prev) => prev.intersection(&ids).copied().collect(),
                })
            };
            if self.profile == IndexProfile::ValueIndexed {
                // Under value indexes an Eq predicate is a point lookup:
                // evaluate all of them first and intersect starting from
                // the smallest set, so the accumulator is never larger
                // than the most selective equality — ranges (and Ne/Like
                // scans) then only shrink it further.
                let mut eq_sets = Vec::new();
                for (p, ty) in &checked {
                    if p.op == AttrOp::Eq {
                        eq_sets.push(self.eval_predicate(&t, p, *ty)?);
                    }
                }
                eq_sets.sort_by_key(HashSet::len);
                for ids in eq_sets {
                    candidates = intersect(candidates, ids);
                    if candidates.as_ref().is_some_and(HashSet::is_empty) {
                        break;
                    }
                }
                if !candidates.as_ref().is_some_and(HashSet::is_empty) {
                    for (p, ty) in &checked {
                        if p.op == AttrOp::Eq {
                            continue;
                        }
                        let ids = self.eval_predicate(&t, p, *ty)?;
                        candidates = intersect(candidates, ids);
                        if candidates.as_ref().is_some_and(HashSet::is_empty) {
                            break;
                        }
                    }
                }
            } else {
                for (p, ty) in &checked {
                    let ids = self.eval_predicate(&t, p, *ty)?;
                    candidates = intersect(candidates, ids);
                    if candidates.as_ref().is_some_and(HashSet::is_empty) {
                        break;
                    }
                }
            }
            Ok::<_, McsError>(candidates)
        })?; // release the attribute-table lock before touching logical_files
        let ids = candidates.unwrap_or_default();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match self.resolve_file_by_id(id) {
                Ok(f) if f.valid => out.push((f.name, f.version)),
                Ok(_) => {} // invalidated files are not discoverable
                Err(McsError::NotFound(_)) => {} // attribute row raced a delete
                Err(e) => return Err(e),
            }
        }
        out.sort();
        if let Some((cache, key, stamp)) = fill {
            cache.insert(key, crate::cache::CacheValue::Hits(out.clone()), stamp);
        }
        Ok(out)
    }

    /// Evaluate one predicate against the attribute table, returning the
    /// set of matching **file** object ids.
    pub(crate) fn eval_predicate(
        &self,
        t: &relstore::Table,
        p: &AttrPredicate,
        ty: AttrType,
    ) -> Result<HashSet<i64>> {
        let value = match (&p.value, ty) {
            (Value::Int(i), AttrType::Float) => Value::Float(*i as f64),
            (v, _) => v.clone(),
        };
        let val_col = ty.full_row_column();
        let mut out = HashSet::new();

        // Value-indexed fast path (the §9 "future work" profile).
        if self.profile == IndexProfile::ValueIndexed && p.op != AttrOp::Like {
            let ix_name = match ty {
                AttrType::Str => "ua_name_str",
                AttrType::Int => "ua_name_int",
                AttrType::Float => "ua_name_float",
                AttrType::Date => "ua_name_date",
                AttrType::Time => "ua_name_time",
                AttrType::DateTime => "ua_name_datetime",
            };
            let ix = t
                .index(ix_name)
                .ok_or_else(|| McsError::Internal(format!("missing index {ix_name}")))?;
            let mut ids = Vec::new();
            let prefix = [Value::from(p.name.as_str())];
            match p.op {
                AttrOp::Eq => {
                    let key = IndexKey(vec![prefix[0].clone(), value.clone()]);
                    ids.extend(ix.get_eq(&key));
                }
                AttrOp::Ne => {
                    // no index help for ≠; fall back to the posting scan
                    return self.posting_scan(t, p, ty, val_col, &value);
                }
                AttrOp::Lt => ix.scan_prefix_range(
                    &prefix,
                    Bound::Unbounded,
                    Bound::Excluded(&value),
                    &mut ids,
                ),
                AttrOp::Le => ix.scan_prefix_range(
                    &prefix,
                    Bound::Unbounded,
                    Bound::Included(&value),
                    &mut ids,
                ),
                AttrOp::Gt => ix.scan_prefix_range(
                    &prefix,
                    Bound::Excluded(&value),
                    Bound::Unbounded,
                    &mut ids,
                ),
                AttrOp::Ge => ix.scan_prefix_range(
                    &prefix,
                    Bound::Included(&value),
                    Bound::Unbounded,
                    &mut ids,
                ),
                AttrOp::Like => unreachable!("handled above"),
            }
            for id in ids {
                // Under MVCC a deleted row's index entries linger until
                // vacuum, and a pending row from another transaction is
                // not yet visible — both read back as `None` here and are
                // simply skipped. On the barrier engine a dangling entry
                // is still a corruption signal.
                let Some(row) = relstore::snapshot_row(t, id) else {
                    if t.is_mvcc() {
                        continue;
                    }
                    return Err(McsError::Internal("dangling index".into()));
                };
                if row[1] != Value::Int(ObjectType::File.code()) {
                    continue;
                }
                // MVCC index entries may describe a superseded version of
                // the row until vacuum — re-check the predicate against
                // the image this snapshot actually sees.
                if t.is_mvcc() {
                    let name_ok = matches!(&row[3], Value::Str(s) if s.as_ref() == p.name);
                    let val_ok = row[val_col].sql_cmp(&value).is_some_and(|ord| match p.op {
                        AttrOp::Eq => ord.is_eq(),
                        AttrOp::Ne => ord.is_ne(),
                        AttrOp::Lt => ord.is_lt(),
                        AttrOp::Le => ord.is_le(),
                        AttrOp::Gt => ord.is_gt(),
                        AttrOp::Ge => ord.is_ge(),
                        AttrOp::Like => false,
                    });
                    if !name_ok || !val_ok {
                        continue;
                    }
                }
                out.insert(row[2].as_int()?);
            }
            return Ok(out);
        }

        self.posting_scan(t, p, ty, val_col, &value)
    }

    /// The 2003 evaluation path: walk every attribute row with this name
    /// and compare its value column. Cost ∝ rows-with-this-name ∝
    /// database size (each file carries each workload attribute), which is
    /// the source of the complex-query scaling in Figures 7/10/11.
    fn posting_scan(
        &self,
        t: &relstore::Table,
        p: &AttrPredicate,
        _ty: AttrType,
        val_col: usize,
        value: &Value,
    ) -> Result<HashSet<i64>> {
        let ix = t
            .index("ua_name")
            .ok_or_else(|| McsError::Internal("missing index ua_name".into()))?;
        let key = IndexKey(vec![Value::from(p.name.as_str())]);
        let mut out = HashSet::new();
        for id in ix.get_eq(&key) {
            let Some(row) = relstore::snapshot_row(t, id) else {
                if t.is_mvcc() {
                    continue; // dangling entry awaiting vacuum, or invisible version
                }
                return Err(McsError::Internal("dangling index".into()));
            };
            if row[1] != Value::Int(ObjectType::File.code()) {
                continue;
            }
            // Stale-entry guard for MVCC (see eval_predicate): the visible
            // image may no longer carry this attribute name.
            if t.is_mvcc() && !matches!(&row[3], Value::Str(s) if s.as_ref() == p.name) {
                continue;
            }
            let stored = &row[val_col];
            let matches = match p.op {
                AttrOp::Like => like_match(stored.as_str()?, value.as_str()?),
                op => match stored.sql_cmp(value) {
                    None => false,
                    Some(ord) => match op {
                        AttrOp::Eq => ord.is_eq(),
                        AttrOp::Ne => ord.is_ne(),
                        AttrOp::Lt => ord.is_lt(),
                        AttrOp::Le => ord.is_le(),
                        AttrOp::Gt => ord.is_gt(),
                        AttrOp::Ge => ord.is_ge(),
                        AttrOp::Like => unreachable!(),
                    },
                },
            };
            if matches {
                out.insert(row[2].as_int()?);
            }
        }
        Ok(out)
    }

    /// List a collection's direct contents (paper API: "Querying the
    /// contents of a ... logical collection"). Requires Read on it.
    pub fn list_collection(&self, cred: &Credential, name: &str) -> Result<CollectionContents> {
        let c = self.resolve_collection(name)?;
        self.require_collection_perm(cred, &c, Permission::Read)?;
        if c.audit_enabled {
            self.audit_action(ObjectType::Collection, c.id, "list", cred, &c.name)?;
        }
        let mut out = CollectionContents::default();
        let files =
            self.db.execute_prepared(&self.stmts.files_in_coll, &[c.id.into()])?.rows.unwrap();
        for r in &files.rows {
            out.files.push((r[1].as_str()?.to_owned(), r[2].as_int()?));
        }
        let kids = self.db.execute_prepared(&self.stmts.sel_subcolls, &[c.id.into()])?;
        for r in &kids.rows.unwrap().rows {
            out.subcollections.push(r[0].as_str()?.to_owned());
        }
        Ok(out)
    }

    /// Total number of logical files in the catalog (harness helper).
    pub fn file_count(&self) -> Result<usize> {
        let handle = self.db.table("logical_files")?;
        let t = handle.read();
        if t.is_mvcc() {
            // `Table::len` counts latest images including other threads'
            // uncommitted inserts; count what a snapshot actually sees.
            return Ok(self.db.with_snapshot(|| {
                (0..t.slot_count() as u64)
                    .filter(|&i| relstore::snapshot_row(&t, relstore::RowId(i)).is_some())
                    .count()
            }));
        }
        Ok(t.len())
    }
}
