//! Attribute-based discovery — the paper's core query mechanisms.
//!
//! * **Simple query** (Figures 6/9): value match on a single static
//!   attribute of a logical file — [`Mcs::get_file`] / by-name lookup,
//!   served by the unique (name, version) index, cost independent of
//!   database size.
//! * **Complex query** (Figures 7/10/11): conjunctive value match on many
//!   user-defined attributes — [`Mcs::query_by_attributes`]. Under the
//!   paper's index profile each predicate scans the posting list of its
//!   attribute *name* (values are unindexed), so cost grows with both
//!   database size and predicate count, reproducing the paper's shapes.
//!   Under [`IndexProfile::ValueIndexed`] the conjunction is compiled by
//!   the cost-based planner in [`crate::plan`] instead: composite
//!   `(name, value)` indexes provide point/range access paths, the most
//!   selective predicate seeds the candidate set, and the rest intersect
//!   or probe per-candidate — see [`Mcs::explain_query`] for the chosen
//!   shape and [`Mcs::with_planner_bypass`] for the naive oracle.

use std::collections::HashSet;

use relstore::predicate::like_match;
use relstore::{IndexKey, Value};

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;
use crate::schema::IndexProfile;

/// Contents of a collection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectionContents {
    /// Files directly in the collection: (name, version).
    pub files: Vec<(String, i64)>,
    /// Direct subcollections, by name.
    pub subcollections: Vec<String>,
}

impl Mcs {
    /// Attribute-based ("complex") query: return the logical names (with
    /// versions) of all **valid** logical files matching every predicate
    /// (paper API: "Querying the catalog for logical objects based on
    /// object attributes"). Requires service Read.
    pub fn query_by_attributes(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<(String, i64)>> {
        self.require_service_perm(cred, Permission::Read)?;
        if preds.is_empty() {
            return Err(McsError::BadAttribute("query needs at least one predicate".into()));
        }
        // Probe the read cache *after* the permission check (authorization
        // is never cached) and take the version vector of the query's
        // input tables before computing, so the fill below can only stamp
        // a state at least as old as what it read — any write landing
        // mid-compute bumps a version and the entry self-invalidates. A
        // planner bypass also skips the cache: its point is to measure
        // (and twin-test) the actual evaluation, not a memoized answer.
        let mut fill = None;
        if !crate::plan::bypass_active() {
            if let Some(cache) = self.read_cache() {
                let key = crate::cache::query_key(preds, self.profile);
                match cache.lookup(&self.db, &key) {
                    crate::cache::Lookup::Hit(crate::cache::CacheValue::Hits(h)) => return Ok(h),
                    crate::cache::Lookup::Hit(_) => {}
                    crate::cache::Lookup::Miss(stamp) => fill = Some((cache, key, stamp)),
                }
            }
        }
        // Resolve definitions and type-check before touching the table.
        let checked = self.check_predicates(preds)?;

        // Under MVCC the whole predicate evaluation runs inside one
        // snapshot scope, so every posting list is read from the same
        // consistent cut; on the barrier engine `with_snapshot` is a no-op
        // and the table read lock provides per-statement isolation.
        let candidates: Option<HashSet<i64>> = self.db.with_snapshot(|| {
            let mut candidates: Option<HashSet<i64>> = None;
            let handle = self.db.table("user_attributes")?;
            let t = handle.read();
            let intersect = |acc: Option<HashSet<i64>>, ids: HashSet<i64>| {
                Some(match acc {
                    None => ids,
                    Some(prev) => prev.intersection(&ids).copied().collect(),
                })
            };
            if self.profile == IndexProfile::ValueIndexed && !crate::plan::bypass_active() {
                // Compile the conjunction into a cost-based plan: the
                // most selective predicate (by index dive / statistics)
                // seeds the candidate set, the rest intersect via their
                // composite indexes or run as per-candidate residual
                // probes — see `crate::plan` and `Mcs::explain_query`.
                let plan = crate::plan::plan_conjunction(&t, &checked)?;
                candidates = Some(self.run_attr_plan(&t, &checked, &plan)?);
            } else if self.profile == IndexProfile::ValueIndexed {
                // Planner bypass: the naive oracle — one `ua_name`
                // posting scan per predicate, intersected in syntactic
                // order. Twin tests diff this against the planned path.
                for (p, ty) in &checked {
                    let value = crate::plan::coerced_value(p, *ty);
                    let ids = self.posting_scan(&t, p, *ty, ty.full_row_column(), &value)?;
                    candidates = intersect(candidates, ids);
                    if candidates.as_ref().is_some_and(HashSet::is_empty) {
                        break;
                    }
                }
            } else {
                for (p, ty) in &checked {
                    let ids = self.eval_predicate(&t, p, *ty)?;
                    candidates = intersect(candidates, ids);
                    if candidates.as_ref().is_some_and(HashSet::is_empty) {
                        break;
                    }
                }
            }
            Ok::<_, McsError>(candidates)
        })?; // release the attribute-table lock before touching logical_files
        let ids = candidates.unwrap_or_default();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match self.resolve_file_by_id(id) {
                Ok(f) if f.valid => out.push((f.name, f.version)),
                Ok(_) => {} // invalidated files are not discoverable
                Err(McsError::NotFound(_)) => {} // attribute row raced a delete
                Err(e) => return Err(e),
            }
        }
        out.sort();
        if let Some((cache, key, stamp)) = fill {
            cache.insert(key, crate::cache::CacheValue::Hits(out.clone()), stamp);
        }
        Ok(out)
    }

    /// Evaluate one predicate against the attribute table, returning the
    /// set of matching **file** object ids.
    pub(crate) fn eval_predicate(
        &self,
        t: &relstore::Table,
        p: &AttrPredicate,
        ty: AttrType,
    ) -> Result<HashSet<i64>> {
        let value = crate::plan::coerced_value(p, ty);

        // Value-indexed fast path (the §9 "future work" profile): point
        // and range lookups on the composite (name, value) index — this
        // includes LIKE patterns with a literal prefix, which range over
        // the prefix and re-check the pattern on the survivors. `Ne` has
        // no useful access path (everything *but* one key) and falls
        // back to the posting scan; in a conjunction the planner demotes
        // it to a per-candidate residual probe instead.
        if self.profile == IndexProfile::ValueIndexed && !crate::plan::bypass_active() {
            if let Some(access) = crate::plan::access_for(p, ty, &value) {
                return self.eval_access(t, p, ty, &value, &access);
            }
        }

        self.posting_scan(t, p, ty, ty.full_row_column(), &value)
    }

    /// The 2003 evaluation path: walk every attribute row with this name
    /// and compare its value column. Cost ∝ rows-with-this-name ∝
    /// database size (each file carries each workload attribute), which is
    /// the source of the complex-query scaling in Figures 7/10/11.
    pub(crate) fn posting_scan(
        &self,
        t: &relstore::Table,
        p: &AttrPredicate,
        _ty: AttrType,
        val_col: usize,
        value: &Value,
    ) -> Result<HashSet<i64>> {
        let ix = t
            .index("ua_name")
            .ok_or_else(|| McsError::Internal("missing index ua_name".into()))?;
        let key = IndexKey(vec![Value::from(p.name.as_str())]);
        let mut out = HashSet::new();
        for id in ix.get_eq(&key) {
            let Some(row) = relstore::snapshot_row(t, id) else {
                if t.is_mvcc() {
                    continue; // dangling entry awaiting vacuum, or invisible version
                }
                return Err(McsError::Internal("dangling index".into()));
            };
            if row[1] != Value::Int(ObjectType::File.code()) {
                continue;
            }
            // Stale-entry guard for MVCC (see eval_predicate): the visible
            // image may no longer carry this attribute name.
            if t.is_mvcc() && !matches!(&row[3], Value::Str(s) if s.as_ref() == p.name) {
                continue;
            }
            let stored = &row[val_col];
            let matches = match p.op {
                AttrOp::Like => like_match(stored.as_str()?, value.as_str()?),
                op => match stored.sql_cmp(value) {
                    None => false,
                    Some(ord) => match op {
                        AttrOp::Eq => ord.is_eq(),
                        AttrOp::Ne => ord.is_ne(),
                        AttrOp::Lt => ord.is_lt(),
                        AttrOp::Le => ord.is_le(),
                        AttrOp::Gt => ord.is_gt(),
                        AttrOp::Ge => ord.is_ge(),
                        AttrOp::Like => unreachable!(),
                    },
                },
            };
            if matches {
                out.insert(row[2].as_int()?);
            }
        }
        Ok(out)
    }

    /// List a collection's direct contents (paper API: "Querying the
    /// contents of a ... logical collection"). Requires Read on it.
    pub fn list_collection(&self, cred: &Credential, name: &str) -> Result<CollectionContents> {
        let c = self.resolve_collection(name)?;
        self.require_collection_perm(cred, &c, Permission::Read)?;
        if c.audit_enabled {
            self.audit_action(ObjectType::Collection, c.id, "list", cred, &c.name)?;
        }
        let mut out = CollectionContents::default();
        let files =
            self.db.execute_prepared(&self.stmts.files_in_coll, &[c.id.into()])?.rows.unwrap();
        for r in &files.rows {
            out.files.push((r[1].as_str()?.to_owned(), r[2].as_int()?));
        }
        let kids = self.db.execute_prepared(&self.stmts.sel_subcolls, &[c.id.into()])?;
        for r in &kids.rows.unwrap().rows {
            out.subcollections.push(r[0].as_str()?.to_owned());
        }
        Ok(out)
    }

    /// Total number of logical files in the catalog (harness helper).
    pub fn file_count(&self) -> Result<usize> {
        let handle = self.db.table("logical_files")?;
        let t = handle.read();
        if t.is_mvcc() {
            // `Table::len` counts latest images including other threads'
            // uncommitted inserts; count what a snapshot actually sees.
            return Ok(self.db.with_snapshot(|| {
                (0..t.slot_count() as u64)
                    .filter(|&i| relstore::snapshot_row(&t, relstore::RowId(i)).is_some())
                    .count()
            }));
        }
        Ok(t.len())
    }
}
