//! # mcs — the Metadata Catalog Service
//!
//! A from-scratch Rust reproduction of the system described in
//! *"A Metadata Catalog Service for Data Intensive Applications"*
//! (Singh, Bharathi, Chervenak, Deelman, Kesselman, Manohar, Patil,
//! Pearlman — SC'03).
//!
//! The catalog stores *logical* (descriptive) metadata — never physical
//! locations, which belong to a Replica Location Service — and supports:
//!
//! * the paper's data model: logical files (with versions), logical
//!   collections (an acyclic tree, each file in at most one collection),
//!   and logical views (free acyclic aggregations that never affect
//!   authorization);
//! * the predefined domain-independent schema plus user-defined attribute
//!   definitions (string/int/float/date/time/datetime) for
//!   application-specific ontologies;
//! * attribute-based discovery queries, annotations, audit trails,
//!   creation/transformation history, container and master-copy
//!   attributes, external catalog pointers, and registered writers;
//! * GSI-style DN authentication with ACLs whose effective permissions
//!   union up the collection hierarchy.
//!
//! ```
//! use mcs::{Mcs, Credential, FileSpec, AttrType, AttrPredicate};
//!
//! let admin = Credential::new("/O=Grid/CN=admin");
//! let catalog = Mcs::new(&admin).unwrap();
//! catalog.define_attribute(&admin, "frequency_band", AttrType::Str, "LIGO band").unwrap();
//! catalog.create_file(&admin,
//!     &FileSpec::named("run_H1_0042.gwf").attr("frequency_band", "H1")).unwrap();
//! let hits = catalog.query_by_attributes(&admin,
//!     &[AttrPredicate::eq("frequency_band", "H1")]).unwrap();
//! assert_eq!(hits, vec![("run_H1_0042.gwf".to_string(), 1)]);
//! ```

#![warn(missing_docs)]

pub mod annotations;
pub mod attrs;
pub mod audit;
pub mod authz;
pub mod cache;
pub mod cas;
pub mod catalog;
pub mod clock;
pub mod error;
pub mod general_query;
pub mod history;
pub mod model;
pub mod plan;
pub mod query;
pub mod replication;
pub mod schema;
pub mod shard;
pub mod users;
pub mod views;
pub mod xmlshred;

mod external;

pub use cas::{CasAssertion, CommunityAuthorizationService};
pub use cache::{CacheConfig, CacheStats};
pub use catalog::{FileUpdate, Mcs, StoreConfig};
pub use clock::{Clock, ManualClock, SystemClock};
pub use error::{McsError, Result};
pub use model::{
    Annotation, AttrOp, AttrPredicate, AttrType, Attribute, AttributeDefinition, AuditRecord,
    Collection, Credential, ExternalCatalog, FileSpec, HistoryRecord, LogicalFile, ObjectRef,
    ObjectType, Permission, UserRecord, View, ViewMember, ANYONE,
};
pub use general_query::{QueryExpr, StaticPredicate};
pub use query::CollectionContents;
pub use replication::{ReplicatedMcs, WriteOp};
pub use shard::{shard_of_name, ShardedCatalog};
pub use relstore::{Durability, SyncPolicy};
pub use schema::IndexProfile;
pub use views::ViewContents;
