//! Epoch-consistent read cache for the catalog's query hot path.
//!
//! Metadata workloads are read-heavy and repetitive — the same discovery
//! queries re-run per workflow — and successor catalogs (AMGA, AliEn)
//! made server-side caching a first-class scaling lever. This module
//! caches `query_by_attributes` results and the hot resolution paths,
//! stamped with the *write-version vector* of each entry's input tables
//! ([`relstore::Database::version_vector`]): a hit is served only when
//! the current vector still equals the stamp, i.e. no committed write has
//! touched any input table since the entry was filled. Writers never
//! maintain invalidation lists — they just bump versions — and stale
//! entries are lazily revalidated (stale → miss → refill). The
//! correctness argument lives in DESIGN.md §7.3.
//!
//! The cache is **off by default** (Figures 5–11 reproduce the 2003
//! shapes untouched) and enabled via
//! [`StoreConfig::cache`](crate::StoreConfig); requests can opt out per
//! call with [`Mcs::with_cache_bypass`], which the network layer maps to
//! the `mcs:cache="bypass"` attribute.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use relstore::{Database, Value};

use crate::catalog::Mcs;
use crate::model::{AttrOp, AttrPredicate, AttributeDefinition, Collection, LogicalFile};
use crate::schema::IndexProfile;

/// Sizing knobs for the read cache; see [`crate::StoreConfig::cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total cached entries across all shards (bounds memory).
    pub capacity: usize,
    /// Lock shards the keyspace is split over (bounds contention).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 4096, shards: 8 }
    }
}

/// Snapshot of the cache's counters (the `cacheStats` SOAP op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a validated entry.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry whose stamp no longer matched the
    /// tables' current versions (counted *in addition* to the miss).
    pub stale: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

/// What a cache entry depends on and how it is addressed. The key kind
/// fixes both the input-table set and the [`CacheValue`] kind stored
/// under it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CacheKey {
    /// Normalized `query_by_attributes` predicate vector + index profile.
    Query(String),
    /// `resolve_file` (single-version lookup by name).
    FileByName(String),
    /// `resolve_file_version`.
    FileByNameVer(String, i64),
    /// `resolve_collection`.
    CollByName(String),
    /// `attribute_definition` (negative results cached too).
    AttrDef(String),
    /// The ACE list of one object (`object_type code`, `object id`) —
    /// the authorization check every catalog call makes.
    Acl(i64, i64),
}

impl CacheKey {
    /// The tables whose write versions stamp entries under this key.
    fn tables(&self) -> &'static [&'static str] {
        match self {
            CacheKey::Query(_) => {
                &["user_attributes", "logical_files", "attribute_definitions"]
            }
            CacheKey::FileByName(_) | CacheKey::FileByNameVer(..) => &["logical_files"],
            CacheKey::CollByName(_) => &["logical_collections"],
            CacheKey::AttrDef(_) => &["attribute_definitions"],
            CacheKey::Acl(..) => &["acl_entries"],
        }
    }
}

/// Cached results, one variant per [`CacheKey`] kind.
#[derive(Debug, Clone)]
pub(crate) enum CacheValue {
    /// Sorted `(name, version)` hits of a complex query.
    Hits(Vec<(String, i64)>),
    /// A resolved logical file.
    File(LogicalFile),
    /// A resolved collection.
    Collection(Collection),
    /// An attribute-definition lookup (including "not defined").
    AttrDef(Option<AttributeDefinition>),
    /// An object's ACE list (principal, permission).
    Acl(Vec<(String, crate::model::Permission)>),
}

/// What an entry is validated against: the write-version vector of its
/// input tables, plus — on an MVCC store — the visibility watermark
/// ([`Database::visible_epoch`]) at probe time. An entry is served when
/// its vector still matches, *or* when the watermark has not moved since
/// the entry's fill was probed (no commit became visible in between, so a
/// fresh compute would read the identical snapshot). The epoch is 0 and
/// ignored on the barrier engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FillStamp {
    pub(crate) versions: Vec<u64>,
    pub(crate) epoch: u64,
}

/// Outcome of a cache probe.
pub(crate) enum Lookup {
    /// Entry present and still valid (version vector match, or snapshot
    /// epoch unchanged on an MVCC store).
    Hit(CacheValue),
    /// No valid entry. Carries the stamp read *before* the caller
    /// recomputes, which is the only stamp safe to fill with (a stamp
    /// taken after the read could mask a write that landed mid-read).
    Miss(FillStamp),
}

/// Canonical byte encoding of a predicate comparison value. `Value` has
/// no `Hash`/`Eq` (floats), so query keys embed this string instead;
/// floats encode by bit pattern and strings are length-prefixed so
/// embedded separators can't alias two different predicate vectors.
fn canon_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_owned(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{:016x}", f.to_bits()),
        Value::Str(s) => format!("s{}:{}", s.len(), s),
        Value::Bool(b) => format!("b{}", *b as u8),
        Value::Date(d) => format!("d{d:?}"),
        Value::Time(t) => format!("t{t:?}"),
        Value::DateTime(dt) => format!("z{dt:?}"),
    }
}

fn op_code(op: AttrOp) -> u8 {
    match op {
        AttrOp::Eq => 0,
        AttrOp::Ne => 1,
        AttrOp::Lt => 2,
        AttrOp::Le => 3,
        AttrOp::Gt => 4,
        AttrOp::Ge => 5,
        AttrOp::Like => 6,
    }
}

/// Key for a `query_by_attributes` call: the predicate triples are
/// rendered canonically and sorted, so predicate order doesn't fragment
/// the cache, and the index profile is included because it changes which
/// plan produced the entry.
pub(crate) fn query_key(preds: &[AttrPredicate], profile: IndexProfile) -> CacheKey {
    let mut parts: Vec<String> = preds
        .iter()
        .map(|p| {
            format!("{}:{}\u{1f}{}\u{1f}{}", p.name.len(), p.name, op_code(p.op), canon_value(&p.value))
        })
        .collect();
    parts.sort();
    CacheKey::Query(format!("{profile:?}\u{1e}{}", parts.join("\u{1e}")))
}

/// One shard: an LRU over `cap` entries. Recency is a monotonic tick; the
/// `recency` index maps tick → key so eviction pops the oldest in
/// `O(log n)` and a hit re-ticks in `O(log n)`.
struct Shard {
    map: HashMap<CacheKey, (CacheValue, FillStamp, u64)>,
    recency: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    cap: usize,
}

impl Shard {
    fn new(cap: usize) -> Shard {
        Shard { map: HashMap::new(), recency: BTreeMap::new(), next_tick: 0, cap }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some((_, _, tick)) = self.map.get_mut(key) {
            let old = *tick;
            self.next_tick += 1;
            *tick = self.next_tick;
            self.recency.remove(&old);
            self.recency.insert(self.next_tick, key.clone());
        }
    }

    fn remove(&mut self, key: &CacheKey) {
        if let Some((_, _, tick)) = self.map.remove(key) {
            self.recency.remove(&tick);
        }
    }

    /// Insert or replace; returns how many entries were evicted.
    fn insert(&mut self, key: CacheKey, value: CacheValue, stamp: FillStamp) -> u64 {
        self.remove(&key);
        let mut evicted = 0;
        while self.map.len() >= self.cap {
            let Some((_, victim)) = self.recency.pop_first() else { break };
            self.map.remove(&victim);
            evicted += 1;
        }
        self.next_tick += 1;
        self.recency.insert(self.next_tick, key.clone());
        self.map.insert(key, (value, stamp, self.next_tick));
        evicted
    }
}

/// The sharded, version-validated LRU. Constructed by
/// [`Mcs::with_database_cached`](crate::Mcs::with_database_cached) when a
/// [`CacheConfig`] is given.
pub(crate) struct McsCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

impl McsCache {
    pub(crate) fn new(cfg: &CacheConfig) -> McsCache {
        let shards = cfg.shards.max(1);
        let per_shard = (cfg.capacity.max(1)).div_ceil(shards);
        McsCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Probe for `key`, validating any entry against the *current* write
    /// versions of its input tables — and, on an MVCC store, against the
    /// visibility watermark (either check passing serves the entry).
    /// Stale entries are dropped on the spot (lazy revalidation — the
    /// follow-up fill re-stamps them).
    pub(crate) fn lookup(&self, db: &Database, key: &CacheKey) -> Lookup {
        let mvcc = db.is_mvcc();
        let current = FillStamp {
            versions: db.version_vector(key.tables()),
            epoch: if mvcc { db.visible_epoch() } else { 0 },
        };
        let mut shard = self.shard(key).lock();
        match shard.map.get(key) {
            Some((value, stamp, _))
                if stamp.versions == current.versions
                    || (mvcc && stamp.epoch == current.epoch) =>
            {
                let value = value.clone();
                shard.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(value)
            }
            Some(_) => {
                shard.remove(key);
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss(current)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss(current)
            }
        }
    }

    /// Store a freshly computed result under `key`. `stamp` must be the
    /// one returned by the [`Lookup::Miss`] that preceded the compute.
    pub(crate) fn insert(&self, key: CacheKey, value: CacheValue, stamp: FillStamp) {
        let evicted = self.shard(&key).lock().insert(key, value, stamp);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    /// Per-operation cache bypass; see [`Mcs::with_cache_bypass`].
    static CACHE_BYPASS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether this thread is inside a [`Mcs::with_cache_bypass`] scope. The
/// scatter-gather planner ([`crate::shard`]) reads this before handing
/// per-shard work to pool threads so a request-scoped bypass follows the
/// query onto every shard it touches.
pub(crate) fn bypass_active() -> bool {
    CACHE_BYPASS.get()
}

impl Mcs {
    /// The cache handle, unless caching is disabled or this thread is
    /// inside a [`Mcs::with_cache_bypass`] scope. Every cached read path
    /// goes through this, so bypass really does re-run the uncached code.
    pub(crate) fn read_cache(&self) -> Option<&McsCache> {
        if CACHE_BYPASS.get() {
            return None;
        }
        self.cache.as_ref()
    }

    /// True when this catalog was opened with a read cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Counter snapshot, `None` when caching is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(McsCache::stats)
    }

    /// Run `f` with the read cache bypassed on this thread: every read
    /// `f` makes executes the uncached path (and fills nothing). This is
    /// the per-request `mcs:cache="bypass"` knob of the network layer,
    /// mirroring [`Mcs::with_durability`]. Restores the previous state on
    /// exit, including across panics; nesting is a no-op.
    pub fn with_cache_bypass<R>(&self, f: impl FnOnce(&Mcs) -> R) -> R {
        struct Restore(bool);
        impl Drop for Restore {
            fn drop(&mut self) {
                CACHE_BYPASS.set(self.0);
            }
        }
        let _restore = Restore(CACHE_BYPASS.replace(true));
        f(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey::AttrDef(format!("k{n}"))
    }

    fn stamp(versions: Vec<u64>) -> FillStamp {
        FillStamp { versions, epoch: 0 }
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut s = Shard::new(2);
        assert_eq!(s.insert(key(1), CacheValue::AttrDef(None), stamp(vec![0])), 0);
        assert_eq!(s.insert(key(2), CacheValue::AttrDef(None), stamp(vec![0])), 0);
        s.touch(&key(1)); // 2 is now the oldest
        assert_eq!(s.insert(key(3), CacheValue::AttrDef(None), stamp(vec![0])), 1);
        assert!(s.map.contains_key(&key(1)));
        assert!(!s.map.contains_key(&key(2)));
        assert!(s.map.contains_key(&key(3)));
        assert_eq!(s.map.len(), s.recency.len());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut s = Shard::new(2);
        s.insert(key(1), CacheValue::AttrDef(None), stamp(vec![0]));
        s.insert(key(2), CacheValue::AttrDef(None), stamp(vec![0]));
        assert_eq!(s.insert(key(1), CacheValue::AttrDef(None), stamp(vec![9])), 0);
        assert_eq!(s.map.len(), 2);
        assert_eq!(s.map.get(&key(1)).unwrap().1.versions, vec![9]);
    }

    #[test]
    fn query_key_is_order_insensitive_but_value_sensitive() {
        let a = AttrPredicate::eq("x", 1i64);
        let b = AttrPredicate::eq("y", 2i64);
        assert_eq!(
            query_key(&[a.clone(), b.clone()], IndexProfile::Paper2003),
            query_key(&[b.clone(), a.clone()], IndexProfile::Paper2003)
        );
        let c = AttrPredicate::eq("y", 3i64);
        assert_ne!(
            query_key(&[a.clone(), b.clone()], IndexProfile::Paper2003),
            query_key(&[a.clone(), c], IndexProfile::Paper2003)
        );
        // same bytes, different profile → different plan → different key
        assert_ne!(
            query_key(&[a.clone(), b.clone()], IndexProfile::Paper2003),
            query_key(&[a, b], IndexProfile::ValueIndexed)
        );
        // float keys encode by bit pattern, not display form
        let f1 = AttrPredicate::eq("x", 0.1f64);
        let f2 = AttrPredicate::eq("x", 0.1f64 + f64::EPSILON);
        assert_ne!(
            query_key(&[f1], IndexProfile::Paper2003),
            query_key(&[f2], IndexProfile::Paper2003)
        );
    }
}
