//! User-defined attributes: definitions (the extensible schema of paper
//! §5) and attribute values on files, collections and views.
//!
//! Values are stored EAV-style in the `user_attributes` table with one
//! typed column per attribute type, matching the MCS/MySQL design. Under
//! [`crate::schema::IndexProfile::Paper2003`] only the attribute *name*
//! is indexed — value predicates scan the name's posting list, which is
//! what makes complex queries scale with database size (Figures 7/10/11).

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl AttrType {
    /// Column position of this type's value column in a full
    /// `user_attributes` row (schema order).
    pub(crate) fn full_row_column(self) -> usize {
        match self {
            AttrType::Str => 5,
            AttrType::Int => 6,
            AttrType::Float => 7,
            AttrType::Date => 8,
            AttrType::Time => 9,
            AttrType::DateTime => 10,
        }
    }
}

impl Mcs {
    /// Register a user-defined attribute (name + type). Re-registering
    /// with the same type is idempotent; with a different type it is an
    /// error. Requires service Write.
    pub fn define_attribute(
        &self,
        cred: &Credential,
        name: &str,
        attr_type: AttrType,
        description: &str,
    ) -> Result<AttributeDefinition> {
        validate_name(name)?;
        self.require_service_perm(cred, Permission::Write)?;
        if let Some(existing) = self.attribute_definition(name)? {
            if existing.attr_type != attr_type {
                return Err(McsError::BadAttribute(format!(
                    "`{name}` already defined as {:?}",
                    existing.attr_type
                )));
            }
            return Ok(existing);
        }
        self.db.execute(
            "INSERT INTO attribute_definitions (name, attr_type, description, creator, created) \
             VALUES (?, ?, ?, ?, ?)",
            &[
                name.into(),
                attr_type.code().into(),
                description.into(),
                cred.dn.as_str().into(),
                self.now(),
            ],
        )?;
        Ok(AttributeDefinition {
            name: name.to_owned(),
            attr_type,
            description: description.to_owned(),
        })
    }

    /// Look up an attribute definition. Served from the read cache when
    /// one is enabled — including the negative ("not defined") answer,
    /// which the version stamp keeps honest across later `define`s.
    pub fn attribute_definition(&self, name: &str) -> Result<Option<AttributeDefinition>> {
        use crate::cache::{CacheKey, CacheValue, Lookup};
        let Some(cache) = self.read_cache() else {
            return self.attribute_definition_uncached(name);
        };
        let key = CacheKey::AttrDef(name.to_owned());
        let stamp = match cache.lookup(&self.db, &key) {
            Lookup::Hit(CacheValue::AttrDef(d)) => return Ok(d),
            Lookup::Hit(_) => return self.attribute_definition_uncached(name),
            Lookup::Miss(stamp) => stamp,
        };
        let d = self.attribute_definition_uncached(name)?;
        cache.insert(key, CacheValue::AttrDef(d.clone()), stamp);
        Ok(d)
    }

    fn attribute_definition_uncached(&self, name: &str) -> Result<Option<AttributeDefinition>> {
        let rs = self.db.execute_prepared(&self.stmts.sel_attrdef, &[name.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| {
                Ok(AttributeDefinition {
                    name: r[0].as_str()?.to_owned(),
                    attr_type: AttrType::from_code(r[1].as_int()?)
                        .ok_or_else(|| McsError::Internal("bad attr_type code".into()))?,
                    description: match &r[2] {
                        Value::Str(s) => s.to_string(),
                        _ => String::new(),
                    },
                })
            })
            .transpose()
    }

    /// All attribute definitions, sorted by name.
    pub fn attribute_definitions(&self) -> Result<Vec<AttributeDefinition>> {
        let rs = self.db.query(
            "SELECT name, attr_type, description FROM attribute_definitions ORDER BY name",
            &[],
        )?;
        rs.rows
            .iter()
            .map(|r| {
                Ok(AttributeDefinition {
                    name: r[0].as_str()?.to_owned(),
                    attr_type: AttrType::from_code(r[1].as_int()?)
                        .ok_or_else(|| McsError::Internal("bad attr_type code".into()))?,
                    description: match &r[2] {
                        Value::Str(s) => s.to_string(),
                        _ => String::new(),
                    },
                })
            })
            .collect()
    }

    /// Validate an attribute against its definition and build the insert
    /// parameter template: `[_, _, name, attr_type, str, int, float,
    /// date, time, datetime]` (the first two slots are filled with the
    /// object type/id by the caller).
    pub(crate) fn attr_row_values(
        &self,
        _object_type: ObjectType,
        attr: &Attribute,
    ) -> Result<[Value; 10]> {
        let def = self
            .attribute_definition(&attr.name)?
            .ok_or_else(|| McsError::BadAttribute(format!("`{}` is not defined", attr.name)))?;
        let given = AttrType::of_value(&attr.value)
            .ok_or_else(|| McsError::BadAttribute(format!("`{}`: unsupported value", attr.name)))?;
        // Int widens to Float, like the storage layer.
        let (ty, value) = match (given, def.attr_type) {
            (AttrType::Int, AttrType::Float) => {
                (AttrType::Float, Value::Float(attr.value.as_int()? as f64))
            }
            (g, d) if g == d => (d, attr.value.clone()),
            (g, d) => {
                return Err(McsError::BadAttribute(format!(
                    "`{}` is {d:?}, got {g:?}",
                    attr.name
                )))
            }
        };
        let mut row: [Value; 10] = [
            Value::Null,
            Value::Null,
            attr.name.as_str().into(),
            ty.code().into(),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        // columns 4..10 of this template = str,int,float,date,time,datetime
        row[ty.full_row_column() - 1] = value;
        Ok(row)
    }

    /// Resolve an [`ObjectRef`] to its type/id/audit flag/name.
    pub(crate) fn resolve_ref(&self, r: &ObjectRef) -> Result<(ObjectType, i64, bool, String)> {
        Ok(match r {
            ObjectRef::File(n) => {
                let f = self.resolve_file(n)?;
                (ObjectType::File, f.id, f.audit_enabled, f.name)
            }
            ObjectRef::FileVersion(n, v) => {
                let f = self.resolve_file_version(n, *v)?;
                (ObjectType::File, f.id, f.audit_enabled, f.name)
            }
            ObjectRef::Collection(n) => {
                let c = self.resolve_collection(n)?;
                (ObjectType::Collection, c.id, c.audit_enabled, c.name)
            }
            ObjectRef::View(n) => {
                let v = self.resolve_view(n)?;
                (ObjectType::View, v.id, v.audit_enabled, v.name)
            }
            ObjectRef::Service => (ObjectType::Service, 0, false, "service".to_owned()),
        })
    }

    /// Set (upsert) a user-defined attribute on an object (paper API:
    /// "Modifying the attributes of a logical object"). Requires Write.
    pub fn set_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr: &Attribute,
    ) -> Result<()> {
        let (ot, id, audit, name) = self.resolve_ref(object)?;
        if ot == ObjectType::Service {
            return Err(McsError::BadAttribute("cannot attach attributes to the service".into()));
        }
        self.require_ref_perm(cred, object, Permission::Write)?;
        let vals = self.attr_row_values(ot, attr)?;
        // Upsert = delete + insert: atomic, so a crash can't lose the old
        // value without having written the new one.
        self.db.transaction(
            &[("audit_log", relstore::Access::Write), ("user_attributes", relstore::Access::Write)],
            |s| {
                s.execute_prepared(
                    &self.stmts.del_attr_named,
                    &[ot.code().into(), id.into(), attr.name.as_str().into()],
                )?;
                let mut params: Vec<Value> = Vec::with_capacity(10);
                params.push(ot.code().into());
                params.push(id.into());
                params.extend(vals[2..].iter().cloned());
                s.execute_prepared(&self.stmts.ins_attr, &params)?;
                if audit {
                    self.audit_action_in(
                        s,
                        ot,
                        id,
                        "set_attribute",
                        cred,
                        &format!("{name}:{}", attr.name),
                    )?;
                }
                Ok(())
            },
        )
    }

    /// Remove a user-defined attribute from an object. Requires Write.
    /// Returns true if the attribute was present.
    pub fn remove_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr_name: &str,
    ) -> Result<bool> {
        let (ot, id, audit, name) = self.resolve_ref(object)?;
        self.require_ref_perm(cred, object, Permission::Write)?;
        self.db.transaction(
            &[("audit_log", relstore::Access::Write), ("user_attributes", relstore::Access::Write)],
            |s| {
                let res = s.execute_prepared(
                    &self.stmts.del_attr_named,
                    &[ot.code().into(), id.into(), attr_name.into()],
                )?;
                if audit && res.rows_affected > 0 {
                    self.audit_action_in(
                        s,
                        ot,
                        id,
                        "remove_attribute",
                        cred,
                        &format!("{name}:{attr_name}"),
                    )?;
                }
                Ok(res.rows_affected > 0)
            },
        )
    }

    /// Fetch all user-defined attributes of an object, sorted by name
    /// (paper API: "Querying the user defined attributes of a logical
    /// object"). Requires Read.
    pub fn get_attributes(&self, cred: &Credential, object: &ObjectRef) -> Result<Vec<Attribute>> {
        let (ot, id, audit, name) = self.resolve_ref(object)?;
        self.require_ref_perm(cred, object, Permission::Read)?;
        if audit {
            self.audit_action(ot, id, "query_attributes", cred, &name)?;
        }
        let rs =
            self.db.execute_prepared(&self.stmts.sel_attrs_obj, &[ot.code().into(), id.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .iter()
            .map(|r| {
                // layout: name, attr_type, str, int, float, date, time, datetime
                let ty = AttrType::from_code(r[1].as_int()?)
                    .ok_or_else(|| McsError::Internal("bad attr_type code".into()))?;
                let col = match ty {
                    AttrType::Str => 2,
                    AttrType::Int => 3,
                    AttrType::Float => 4,
                    AttrType::Date => 5,
                    AttrType::Time => 6,
                    AttrType::DateTime => 7,
                };
                Ok(Attribute { name: r[0].as_str()?.to_owned(), value: r[col].clone() })
            })
            .collect()
    }

    /// Fetch one attribute of an object, if present.
    pub fn get_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr_name: &str,
    ) -> Result<Option<Attribute>> {
        Ok(self
            .get_attributes(cred, object)?
            .into_iter()
            .find(|a| a.name == attr_name))
    }
}
