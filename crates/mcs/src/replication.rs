//! Replicated MCS — paper §9:
//!
//! > "we have assumed that strict consistency is required ... and have
//! > assumed that we would eventually replicate the MCS over a small
//! > number of sites to improve performance and reliability."
//!
//! [`ReplicatedMcs`] keeps one primary catalog and N replicas strictly
//! consistent by synchronous logical write shipping: every write is a
//! [`WriteOp`] applied — and committed — on the primary first, then
//! re-executed on each replica before the call returns (writes are
//! deterministic given a shared clock, so replicas converge to identical
//! state). Reads spread round-robin across all copies — the performance
//! half of the claim — and a replica that fails to apply a write is
//! removed from the read set rather than allowed to serve stale data —
//! the reliability half.
//!
//! Because every catalog write path runs as one atomic transaction, a
//! replica that fails *mid-apply* is rolled back to the state it had
//! before the op — exactly the committed-op-log prefix it had applied.
//! Failed replicas are therefore parked in a *lagged* pool (not
//! discarded) together with that prefix length, and [`ReplicatedMcs::
//! rejoin`] can later replay the ops they missed from the shipped-op log
//! and return them to the read set.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::catalog::{FileUpdate, Mcs};
use crate::clock::Clock;
use crate::error::{McsError, Result};
use crate::model::*;
use crate::schema::IndexProfile;

/// A logical write operation, re-executable on any replica.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Define a user attribute.
    DefineAttribute {
        /// Attribute name.
        name: String,
        /// Attribute type.
        attr_type: AttrType,
        /// Description.
        description: String,
    },
    /// Create a logical file.
    CreateFile(FileSpec),
    /// Delete a logical file (all metadata).
    DeleteFile(String),
    /// Update predefined file attributes.
    UpdateFile {
        /// File name.
        name: String,
        /// Update.
        update: FileUpdate,
    },
    /// Set (upsert) a user-defined attribute.
    SetAttribute {
        /// Target object.
        object: ObjectRef,
        /// Attribute.
        attr: Attribute,
    },
    /// Remove a user-defined attribute.
    RemoveAttribute {
        /// Target object.
        object: ObjectRef,
        /// Attribute name.
        name: String,
    },
    /// Create a collection.
    CreateCollection {
        /// Name.
        name: String,
        /// Parent collection.
        parent: Option<String>,
        /// Description.
        description: String,
    },
    /// Annotate an object.
    Annotate {
        /// Target object.
        object: ObjectRef,
        /// Annotation text.
        text: String,
    },
    /// Append to a file's transformation history.
    AddHistory {
        /// File name.
        file: String,
        /// Description.
        description: String,
    },
    /// Grant a permission.
    Grant {
        /// Target object.
        object: ObjectRef,
        /// Principal.
        principal: String,
        /// Permission.
        permission: Permission,
    },
}

impl WriteOp {
    /// Apply this operation to one catalog.
    pub fn apply(&self, mcs: &Mcs, cred: &Credential) -> Result<()> {
        match self {
            WriteOp::DefineAttribute { name, attr_type, description } => {
                mcs.define_attribute(cred, name, *attr_type, description).map(drop)
            }
            WriteOp::CreateFile(spec) => mcs.create_file(cred, spec).map(drop),
            WriteOp::DeleteFile(name) => mcs.delete_file(cred, name),
            WriteOp::UpdateFile { name, update } => mcs.update_file(cred, name, update).map(drop),
            WriteOp::SetAttribute { object, attr } => mcs.set_attribute(cred, object, attr),
            WriteOp::RemoveAttribute { object, name } => {
                mcs.remove_attribute(cred, object, name).map(drop)
            }
            WriteOp::CreateCollection { name, parent, description } => {
                mcs.create_collection(cred, name, parent.as_deref(), description).map(drop)
            }
            WriteOp::Annotate { object, text } => mcs.annotate(cred, object, text),
            WriteOp::AddHistory { file, description } => mcs.add_history(cred, file, description),
            WriteOp::Grant { object, principal, permission } => {
                mcs.grant(cred, object, principal, *permission)
            }
        }
    }
}

/// A replica parked after failing to apply a write. Its transactional
/// rollback guarantees its state is exactly the first `applied` entries
/// of the shipped-op log, so replay from that point can catch it up.
struct LaggedReplica {
    mcs: Arc<Mcs>,
    applied: usize,
}

/// A strictly consistent primary + replica deployment.
pub struct ReplicatedMcs {
    primary: Arc<Mcs>,
    replicas: RwLock<Vec<Arc<Mcs>>>,
    /// Every op committed on the primary, in commit order. `write` holds
    /// the write lock across the whole shipping step, so log order is
    /// identical to apply order on every replica.
    op_log: RwLock<Vec<(Credential, WriteOp)>>,
    lagged: RwLock<Vec<LaggedReplica>>,
    evicted: AtomicUsize,
    next_read: AtomicUsize,
}

impl ReplicatedMcs {
    /// Build a deployment with `n_replicas` replicas. All copies share
    /// `clock` so re-executed writes produce identical timestamps (a
    /// requirement for logical replication to converge).
    pub fn new(
        admin: &Credential,
        n_replicas: usize,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
    ) -> Result<ReplicatedMcs> {
        let primary = Arc::new(Mcs::with_options(admin, profile, Arc::clone(&clock))?);
        let mut replicas = Vec::with_capacity(n_replicas);
        for _ in 0..n_replicas {
            replicas.push(Arc::new(Mcs::with_options(admin, profile, Arc::clone(&clock))?));
        }
        Ok(ReplicatedMcs {
            primary,
            replicas: RwLock::new(replicas),
            op_log: RwLock::new(Vec::new()),
            lagged: RwLock::new(Vec::new()),
            evicted: AtomicUsize::new(0),
            next_read: AtomicUsize::new(0),
        })
    }

    /// The primary catalog (for administrative work).
    pub fn primary(&self) -> &Arc<Mcs> {
        &self.primary
    }

    /// Replicas currently serving reads.
    pub fn live_replicas(&self) -> usize {
        self.replicas.read().len()
    }

    /// Replicas evicted from the read set after failing to apply a write.
    /// (They are parked in the lagged pool, and [`ReplicatedMcs::rejoin`]
    /// may later return them to service.)
    pub fn evicted_replicas(&self) -> usize {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Replicas currently parked in the lagged pool awaiting rejoin.
    pub fn lagged_replicas(&self) -> usize {
        self.lagged.read().len()
    }

    /// Apply a write with strict consistency: the op is applied — and
    /// committed — on the primary first, and only then shipped
    /// synchronously to every replica. A replica that fails to apply it
    /// is removed from the read set so it can never serve stale data; its
    /// own transactional rollback leaves it at the pre-op state, so it is
    /// parked (with the count of log entries it has applied) rather than
    /// destroyed, and can rejoin later.
    pub fn write(&self, cred: &Credential, op: &WriteOp) -> Result<()> {
        // Held across primary-apply and shipping: serializes writes with
        // each other and with `rejoin`, so log order == commit order ==
        // the order every replica applies ops in.
        let mut log = self.op_log.write();
        op.apply(&self.primary, cred)?;
        log.push((cred.clone(), op.clone()));
        let mut replicas = self.replicas.write();
        let mut lagged = self.lagged.write();
        let before = replicas.len();
        let mut kept = Vec::with_capacity(before);
        for r in replicas.drain(..) {
            if op.apply(&r, cred).is_ok() {
                kept.push(r);
            } else {
                // The failed op rolled back on the replica, so its state
                // is exactly the log minus this newest entry.
                lagged.push(LaggedReplica { mcs: r, applied: log.len() - 1 });
            }
        }
        *replicas = kept;
        self.evicted.fetch_add(before - replicas.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Try to return lagged replicas to the read set by replaying the ops
    /// they missed from the shipped-op log. Returns how many rejoined.
    /// A replica that still fails (e.g. it truly diverged out-of-band)
    /// stays parked with its progress updated to the entries it did
    /// apply.
    pub fn rejoin(&self) -> usize {
        // Same order as `write`: op_log first, blocking concurrent writes
        // so the log cannot grow mid-replay.
        let log = self.op_log.write();
        let mut lagged = self.lagged.write();
        let mut still_lagged = Vec::new();
        let mut rejoined = Vec::new();
        for mut lr in lagged.drain(..) {
            let mut ok = true;
            while lr.applied < log.len() {
                let (cred, op) = &log[lr.applied];
                if op.apply(&lr.mcs, cred).is_err() {
                    ok = false;
                    break;
                }
                lr.applied += 1;
            }
            if ok {
                rejoined.push(lr.mcs);
            } else {
                still_lagged.push(lr);
            }
        }
        *lagged = still_lagged;
        let n = rejoined.len();
        self.replicas.write().extend(rejoined);
        n
    }

    /// Pick a copy for a read (round-robin over primary + live replicas).
    pub fn read_copy(&self) -> Arc<Mcs> {
        let replicas = self.replicas.read();
        let n = replicas.len() + 1;
        let i = self.next_read.fetch_add(1, Ordering::Relaxed) % n;
        if i == 0 {
            Arc::clone(&self.primary)
        } else {
            Arc::clone(&replicas[i - 1])
        }
    }

    /// Attribute query on some copy (strictly consistent, so any copy
    /// gives the same answer — asserted by tests).
    pub fn query_by_attributes(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<(String, i64)>> {
        self.read_copy().query_by_attributes(cred, preds)
    }

    /// Static-metadata lookup on some copy.
    pub fn get_file(&self, cred: &Credential, name: &str) -> Result<LogicalFile> {
        self.read_copy().get_file(cred, name)
    }

    /// Verify all copies agree on a probe query (consistency check used
    /// by tests and operational tooling).
    pub fn check_consistency(&self, cred: &Credential, preds: &[AttrPredicate]) -> Result<bool> {
        let reference = self.primary.query_by_attributes(cred, preds)?;
        for r in self.replicas.read().iter() {
            if r.query_by_attributes(cred, preds)? != reference {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Errors from replication-specific paths.
impl ReplicatedMcs {
    /// Convenience: error if no replicas remain (reliability budget
    /// exhausted).
    pub fn require_redundancy(&self, min_replicas: usize) -> Result<()> {
        let live = self.live_replicas();
        if live < min_replicas {
            return Err(McsError::Internal(format!(
                "only {live} replicas live (need {min_replicas})"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn setup(n: usize) -> (ReplicatedMcs, Credential) {
        let admin = Credential::new("/CN=admin");
        let clock = Arc::new(ManualClock::default());
        let r = ReplicatedMcs::new(&admin, n, IndexProfile::Paper2003, clock).unwrap();
        r.write(
            &admin,
            &WriteOp::DefineAttribute {
                name: "ch".into(),
                attr_type: AttrType::Str,
                description: String::new(),
            },
        )
        .unwrap();
        (r, admin)
    }

    #[test]
    fn writes_replicate_and_reads_agree() {
        let (r, a) = setup(3);
        for i in 0..10 {
            r.write(
                &a,
                &WriteOp::CreateFile(
                    FileSpec::named(format!("f{i}")).attr("ch", if i % 2 == 0 { "H1" } else { "L1" }),
                ),
            )
            .unwrap();
        }
        let preds = [AttrPredicate::eq("ch", "H1")];
        assert!(r.check_consistency(&a, &preds).unwrap());
        // round-robin reads all return the same answer
        let first = r.query_by_attributes(&a, &preds).unwrap();
        for _ in 0..6 {
            assert_eq!(r.query_by_attributes(&a, &preds).unwrap(), first);
        }
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn deletes_and_updates_replicate() {
        let (r, a) = setup(2);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f").attr("ch", "H1"))).unwrap();
        r.write(
            &a,
            &WriteOp::UpdateFile {
                name: "f".into(),
                update: FileUpdate { valid: Some(false), ..Default::default() },
            },
        )
        .unwrap();
        assert!(r.check_consistency(&a, &[AttrPredicate::eq("ch", "H1")]).unwrap());
        assert!(r.query_by_attributes(&a, &[AttrPredicate::eq("ch", "H1")]).unwrap().is_empty());
        r.write(&a, &WriteOp::DeleteFile("f".into())).unwrap();
        for _ in 0..3 {
            assert!(matches!(r.get_file(&a, "f"), Err(McsError::NotFound(_))));
        }
    }

    #[test]
    fn diverged_replica_is_evicted_not_served() {
        let (r, a) = setup(2);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f"))).unwrap();
        // sabotage one replica out-of-band: delete the file directly on it
        {
            let replica = r.replicas.read()[0].clone();
            replica.delete_file(&a, "f").unwrap();
        }
        // the next write touching that file fails on the diverged replica
        r.write(
            &a,
            &WriteOp::SetAttribute {
                object: ObjectRef::File("f".into()),
                attr: Attribute { name: "ch".into(), value: "H1".into() },
            },
        )
        .unwrap();
        assert_eq!(r.live_replicas(), 1);
        assert_eq!(r.evicted_replicas(), 1);
        // every remaining copy still agrees
        assert!(r.check_consistency(&a, &[AttrPredicate::eq("ch", "H1")]).unwrap());
        assert!(r.require_redundancy(1).is_ok());
        assert!(r.require_redundancy(2).is_err());
    }

    #[test]
    fn lagged_replica_rejoins_after_repair() {
        let (r, a) = setup(2);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f"))).unwrap();
        let replica = r.replicas.read()[0].clone();
        // sabotage: delete the file directly on one replica
        replica.delete_file(&a, "f").unwrap();
        // the next write fails mid-apply on the saboteur; its transaction
        // rolls back, and it is parked rather than destroyed
        r.write(
            &a,
            &WriteOp::SetAttribute {
                object: ObjectRef::File("f".into()),
                attr: Attribute { name: "ch".into(), value: "H1".into() },
            },
        )
        .unwrap();
        assert_eq!(r.live_replicas(), 1);
        assert_eq!(r.lagged_replicas(), 1);
        // still diverged: replay of the missed op keeps failing
        assert_eq!(r.rejoin(), 0);
        assert_eq!(r.lagged_replicas(), 1);
        // repair the divergence out-of-band, then replay succeeds
        replica.create_file(&a, &FileSpec::named("f")).unwrap();
        assert_eq!(r.rejoin(), 1);
        assert_eq!(r.live_replicas(), 2);
        assert_eq!(r.lagged_replicas(), 0);
        assert!(r.check_consistency(&a, &[AttrPredicate::eq("ch", "H1")]).unwrap());
    }

    #[test]
    fn primary_failure_means_no_replica_applies() {
        let (r, a) = setup(2);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f"))).unwrap();
        // duplicate create fails on the primary...
        assert!(r.write(&a, &WriteOp::CreateFile(FileSpec::named("f"))).is_err());
        // ...and replicas were never touched (still 1 file everywhere)
        assert_eq!(r.live_replicas(), 2);
        for replica in r.replicas.read().iter() {
            assert_eq!(replica.file_count().unwrap(), 1);
        }
    }

    #[test]
    fn zero_replicas_is_a_plain_catalog() {
        let (r, a) = setup(0);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f").attr("ch", "H1"))).unwrap();
        assert_eq!(r.get_file(&a, "f").unwrap().name, "f");
        assert_eq!(r.live_replicas(), 0);
    }

    #[test]
    fn grants_and_annotations_replicate() {
        let (r, a) = setup(2);
        r.write(&a, &WriteOp::CreateFile(FileSpec::named("f"))).unwrap();
        let user = Credential::new("/CN=u");
        r.write(
            &a,
            &WriteOp::Grant {
                object: ObjectRef::File("f".into()),
                principal: user.dn.clone(),
                permission: Permission::Read,
            },
        )
        .unwrap();
        r.write(&a, &WriteOp::Annotate { object: ObjectRef::File("f".into()), text: "hi".into() })
            .unwrap();
        // the user can read from every copy
        for _ in 0..3 {
            assert!(r.get_file(&user, "f").is_ok());
        }
        for replica in r.replicas.read().iter() {
            assert_eq!(
                replica.get_annotations(&a, &ObjectRef::File("f".into())).unwrap().len(),
                1
            );
        }
    }
}
