//! Creation & transformation history — the paper's provenance record: a
//! textual description of how a data item was created and subsequently
//! transformed, usable to decide whether to recreate a lost data set.

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

impl Mcs {
    /// Append a transformation record to a file's history. Requires Write.
    pub fn add_history(&self, cred: &Credential, file: &str, description: &str) -> Result<()> {
        let f = self.resolve_file(file)?;
        self.require_file_perm(cred, &f, Permission::Write)?;
        self.db.transaction(
            &[
                ("audit_log", relstore::Access::Write),
                ("transformation_history", relstore::Access::Write),
            ],
            |s| {
                s.execute(
                    "INSERT INTO transformation_history (file_id, description, actor, at) \
                     VALUES (?, ?, ?, ?)",
                    &[f.id.into(), description.into(), cred.dn.as_str().into(), self.now()],
                )?;
                if f.audit_enabled {
                    self.audit_action_in(s, ObjectType::File, f.id, "add_history", cred, &f.name)?;
                }
                Ok(())
            },
        )
    }

    /// Fetch a file's transformation history, oldest first. Requires Read.
    pub fn get_history(&self, cred: &Credential, file: &str) -> Result<Vec<HistoryRecord>> {
        let f = self.resolve_file(file)?;
        self.require_file_perm(cred, &f, Permission::Read)?;
        let rs = self.db.execute(
            "SELECT description, actor, at FROM transformation_history \
             WHERE file_id = ? ORDER BY id",
            &[f.id.into()],
        )?;
        rs.rows
            .expect("select")
            .rows
            .iter()
            .map(|r| {
                Ok(HistoryRecord {
                    file_id: f.id,
                    description: r[0].as_str()?.to_owned(),
                    actor: r[1].as_str()?.to_owned(),
                    at: match &r[2] {
                        Value::DateTime(dt) => *dt,
                        _ => return Err(McsError::Internal("bad at column".into())),
                    },
                })
            })
            .collect()
    }
}
