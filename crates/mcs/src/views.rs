//! Logical views: free-form, acyclic aggregations of files, collections
//! and other views (paper §5 — "loosely analogous to creating a symbolic
//! link"). Views never affect authorization of their members.

use relstore::Value;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::*;

/// Contents of a view, resolved to names.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ViewContents {
    /// Member logical files (name, version).
    pub files: Vec<(String, i64)>,
    /// Member collections, by name.
    pub collections: Vec<String>,
    /// Member views, by name.
    pub views: Vec<String>,
}

impl Mcs {
    pub(crate) fn resolve_view(&self, name: &str) -> Result<View> {
        let rs =
            self.db.execute("SELECT * FROM logical_views WHERE name = ?", &[name.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::view_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::View(name.to_owned())))
    }

    pub(crate) fn resolve_view_by_id(&self, id: i64) -> Result<View> {
        let rs = self.db.execute("SELECT * FROM logical_views WHERE id = ?", &[id.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::view_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::View(format!("#{id}"))))
    }

    fn view_from_row(row: &[Value]) -> Result<View> {
        Ok(View {
            id: row[0].as_int()?,
            name: row[1].as_str()?.to_owned(),
            description: match &row[2] {
                Value::Str(s) => s.to_string(),
                _ => String::new(),
            },
            creator: row[3].as_str()?.to_owned(),
            created: match &row[4] {
                Value::DateTime(dt) => *dt,
                _ => return Err(McsError::Internal("bad created column".into())),
            },
            last_modifier: match &row[5] {
                Value::Str(s) => Some(s.to_string()),
                _ => None,
            },
            last_modified: match &row[6] {
                Value::DateTime(dt) => Some(*dt),
                _ => None,
            },
            audit_enabled: row[7].as_bool()?,
        })
    }

    /// Create a logical view (paper API: "Creating a ... view").
    /// Requires service Write; the creator receives Write/Delete/Admin on
    /// the new view.
    pub fn create_view(&self, cred: &Credential, name: &str, description: &str) -> Result<View> {
        validate_name(name)?;
        self.require_service_perm(cred, Permission::Write)?;
        // The view row and the creator's ACEs commit together: a crash
        // cannot leave a view nobody can administer.
        let id = self.db.transaction(
            &[("acl_entries", relstore::Access::Write), ("logical_views", relstore::Access::Write)],
            |s| {
                let res = s.execute(
                    "INSERT INTO logical_views (name, description, creator, created) \
                     VALUES (?, ?, ?, ?)",
                    &[name.into(), description.into(), cred.dn.as_str().into(), self.now()],
                );
                let res = match res {
                    Err(relstore::Error::UniqueViolation { .. }) => {
                        return Err(McsError::AlreadyExists(name.to_owned()))
                    }
                    other => other?,
                };
                let id =
                    res.last_insert_id.ok_or_else(|| McsError::Internal("no insert id".into()))?;
                for p in
                    [Permission::Read, Permission::Write, Permission::Delete, Permission::Admin]
                {
                    self.insert_ace_in(s, ObjectType::View, id, &cred.dn, p)?;
                }
                Ok(id)
            },
        )?;
        self.resolve_view_by_id(id)
    }

    /// Delete a view (its membership records, not its members).
    pub fn delete_view(&self, cred: &Credential, name: &str) -> Result<()> {
        let v = self.resolve_view(name)?;
        self.require_view_perm(cred, &v, Permission::Delete)?;
        self.db.transaction(
            &[
                ("acl_entries", relstore::Access::Write),
                ("annotations", relstore::Access::Write),
                ("audit_log", relstore::Access::Write),
                ("logical_views", relstore::Access::Write),
                ("user_attributes", relstore::Access::Write),
                ("view_members", relstore::Access::Write),
            ],
            |s| {
                if v.audit_enabled {
                    self.audit_action_in(s, ObjectType::View, v.id, "delete", cred, &v.name)?;
                }
                s.execute("DELETE FROM logical_views WHERE id = ?", &[v.id.into()])?;
                s.execute("DELETE FROM view_members WHERE view_id = ?", &[v.id.into()])?;
                // memberships of this view in other views
                s.execute(
                    "DELETE FROM view_members WHERE member_type = ? AND member_id = ?",
                    &[ObjectType::View.code().into(), v.id.into()],
                )?;
                for table in ["user_attributes", "annotations", "acl_entries"] {
                    s.execute(
                        &format!("DELETE FROM {table} WHERE object_type = ? AND object_id = ?"),
                        &[ObjectType::View.code().into(), v.id.into()],
                    )?;
                }
                Ok(())
            },
        )
    }

    /// Fetch a view's record.
    pub fn get_view(&self, cred: &Credential, name: &str) -> Result<View> {
        let v = self.resolve_view(name)?;
        self.require_view_perm(cred, &v, Permission::Read)?;
        Ok(v)
    }

    /// Add a member to a view (paper API: "Adding logical objects to a
    /// view"). Rejects duplicate membership and any addition that would
    /// make view containment cyclic. Requires Write on the view and Read
    /// on the member.
    pub fn add_to_view(&self, cred: &Credential, view: &str, member: &ObjectRef) -> Result<()> {
        let v = self.resolve_view(view)?;
        self.require_view_perm(cred, &v, Permission::Write)?;
        self.require_ref_perm(cred, member, Permission::Read)?;
        let (mt, mid, _, mname) = self.resolve_ref(member)?;
        if mt == ObjectType::Service {
            return Err(McsError::Internal("the service cannot be a view member".into()));
        }
        // The cycle check runs inside the transaction (view_members is
        // claimed for write, and reads on claimed tables are re-entrant),
        // so a concurrent membership edit cannot race it into a cycle.
        self.db.transaction(
            &[("audit_log", relstore::Access::Write), ("view_members", relstore::Access::Write)],
            |s| {
                if mt == ObjectType::View {
                    // would `v` become reachable from `member`? (DFS over
                    // view containment)
                    if mid == v.id || self.view_reaches(mid, v.id)? {
                        return Err(McsError::CycleDetected(format!(
                            "adding view `{mname}` to `{view}` would create a cycle"
                        )));
                    }
                }
                match s.execute(
                    "INSERT INTO view_members (view_id, member_type, member_id) \
                     VALUES (?, ?, ?)",
                    &[v.id.into(), mt.code().into(), mid.into()],
                ) {
                    Ok(_) => {}
                    Err(relstore::Error::UniqueViolation { .. }) => {
                        return Err(McsError::AlreadyExists(format!("{mname} in view {view}")))
                    }
                    Err(e) => return Err(e.into()),
                }
                if v.audit_enabled {
                    self.audit_action_in(s, ObjectType::View, v.id, "add_member", cred, &mname)?;
                }
                Ok(())
            },
        )
    }

    /// Remove a member from a view. Returns true if it was a member.
    pub fn remove_from_view(
        &self,
        cred: &Credential,
        view: &str,
        member: &ObjectRef,
    ) -> Result<bool> {
        let v = self.resolve_view(view)?;
        self.require_view_perm(cred, &v, Permission::Write)?;
        let (mt, mid, _, _) = self.resolve_ref(member)?;
        let res = self.db.execute(
            "DELETE FROM view_members WHERE view_id = ? AND member_type = ? AND member_id = ?",
            &[v.id.into(), mt.code().into(), mid.into()],
        )?;
        Ok(res.rows_affected > 0)
    }

    /// Raw member list of a view.
    pub(crate) fn view_members(&self, view_id: i64) -> Result<Vec<ViewMember>> {
        let rs = self.db.execute(
            "SELECT member_type, member_id FROM view_members WHERE view_id = ?",
            &[view_id.into()],
        )?;
        let rows = rs.rows.expect("select");
        rows.rows
            .iter()
            .map(|r| {
                Ok(ViewMember {
                    member_type: ObjectType::from_code(r[0].as_int()?)
                        .ok_or_else(|| McsError::Internal("bad member_type".into()))?,
                    member_id: r[1].as_int()?,
                })
            })
            .collect()
    }

    /// Is `target` reachable from `start` through view containment?
    fn view_reaches(&self, start: i64, target: i64) -> Result<bool> {
        let mut stack = vec![start];
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = stack.pop() {
            if v == target {
                return Ok(true);
            }
            if !seen.insert(v) {
                continue;
            }
            for m in self.view_members(v)? {
                if m.member_type == ObjectType::View {
                    stack.push(m.member_id);
                }
            }
        }
        Ok(false)
    }

    /// List a view's contents resolved to names (paper API: "Querying the
    /// contents of a logical view"). Requires Read on the view.
    pub fn list_view(&self, cred: &Credential, name: &str) -> Result<ViewContents> {
        let v = self.resolve_view(name)?;
        self.require_view_perm(cred, &v, Permission::Read)?;
        if v.audit_enabled {
            self.audit_action(ObjectType::View, v.id, "list", cred, &v.name)?;
        }
        let mut out = ViewContents::default();
        for m in self.view_members(v.id)? {
            match m.member_type {
                ObjectType::File => {
                    let f = self.resolve_file_by_id(m.member_id)?;
                    out.files.push((f.name, f.version));
                }
                ObjectType::Collection => {
                    out.collections.push(self.resolve_collection_by_id(m.member_id)?.name);
                }
                ObjectType::View => {
                    out.views.push(self.resolve_view_by_id(m.member_id)?.name);
                }
                ObjectType::Service => {}
            }
        }
        out.files.sort();
        out.collections.sort();
        out.views.sort();
        Ok(out)
    }
}
