//! Hash-partitioned catalog: N independent relstore backends behind one
//! `Mcs`-shaped surface (DESIGN.md §7.4).
//!
//! The paper scales *reads* with stateless service replicas in front of
//! one MySQL instance (§6, figures 10–11); every write still funnels
//! through a single backend. [`ShardedCatalog`] removes that wall the way
//! AMGA and the ALICE global catalogue did: partition the namespace by a
//! stable hash of the logical-file name across N [`Mcs`] instances, each
//! with its own WAL, group/async commit queue and epoch gate, so fsync
//! streams — the write bottleneck — multiply with shards.
//!
//! ## Placement
//!
//! * **Per-file state** lives on the shard owning the file's *name*
//!   (all versions of a name colocate, so version resolution and
//!   [`McsError::VersionConflict`] semantics are unchanged):
//!   `logical_files`, `user_attributes` / `annotations` /
//!   `transformation_history` / `audit_log` rows about files, file ACEs,
//!   and `view_members` rows whose member is a file.
//! * **Global state** is authoritative on shard 0: collections, views,
//!   users, attribute definitions, external catalogs, service ACLs,
//!   non-file `view_members`. The four tables per-file operations read
//!   for authorization, type-checking and collection resolution —
//!   `logical_collections`, `logical_views`, `attribute_definitions` and
//!   the non-file rows of `acl_entries` — are *mirrored* onto every
//!   shard (same primary keys, relstore inserts honor explicit
//!   AUTO_INCREMENT ids), so a routed operation runs entirely on its
//!   owning shard with plain [`Mcs`] code.
//!
//! ## Two-phase global writes
//!
//! Operations that change mirrored state (create/delete collection or
//! view, define_attribute, service/collection/view ACL changes) take the
//! catalog-wide write lock, commit on shard 0 first — the authoritative
//! copy — then diff-sync the mirrors. Per-file membership writes
//! (create_file into a collection, assign_collection, add_to_view with a
//! file member) take the read side, so a membership row can never be
//! written concurrently with the deletion of its target. Crash recovery
//! ([`ShardedCatalog::open`]) replays the same diff: mirrors are forced
//! to shard 0's content and membership rows whose target no longer
//! exists on shard 0 are swept, which is what makes replaying an
//! interrupted `add_to_collection` idempotent (the crash-matrix test
//! `shard_crash.rs` truncates either WAL at every byte offset to prove
//! it).
//!
//! ## Scatter-gather queries
//!
//! Name-equality lookups (`get_file`, `get_attributes` on a file, …)
//! route to the owning shard. Attribute queries
//! ([`ShardedCatalog::query_by_attributes`], `general_query`) fan out on
//! a [`soapstack::threadpool::ThreadPool`] — shard 0's slice runs on the
//! caller's thread — and merge with stable ordering (per-shard result
//! sets are disjoint by name, concatenated in shard order, then sorted
//! exactly like the single-shard path sorts its output). A thread-local
//! cache bypass on the caller is re-established on every pool thread, so
//! the PR 4 cache contract holds per shard; epochs stay per shard too:
//! [`ShardedCatalog::wait_for_epoch`] takes a shard index and
//! [`ShardedCatalog::sync_now`] / [`ShardedCatalog::cache_stats`]
//! aggregate.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{mpsc, Arc};

use relstore::{Access, Database, Durability, Value};
use soapstack::threadpool::ThreadPool;

use crate::cache::{CacheConfig, CacheStats};
use crate::catalog::{FileUpdate, Mcs, StoreConfig};
use crate::clock::Clock;
use crate::error::{McsError, Result};
use crate::general_query::QueryExpr;
use crate::model::*;
use crate::query::CollectionContents;
use crate::schema::IndexProfile;
use crate::views::ViewContents;

/// FNV-1a, 64 bit. Chosen over `DefaultHasher` because the shard map is
/// *on-disk state*: the routing hash must stay stable across rustc
/// versions and process restarts, or a reopened catalog would look up
/// files on the wrong shard.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The shard owning logical-file `name` in an `n_shards`-way catalog.
/// Stable across processes and architectures (FNV-1a over the raw name
/// bytes, modulo the shard count); hashing only the *name* keeps every
/// version of a file on one shard.
pub fn shard_of_name(name: &str, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    (fnv1a64(name.as_bytes()) % n_shards as u64) as usize
}

/// The global tables mirrored from shard 0 onto every shard, with the
/// column lists used for diff-sync (`id` first). `acl_entries` mirrors
/// only non-file rows — file ACEs are per-file state.
const MIRRORED: &[(&str, &[&str])] = &[
    (
        "logical_collections",
        &[
            "id",
            "name",
            "description",
            "parent_id",
            "creator",
            "created",
            "last_modifier",
            "last_modified",
            "audit_enabled",
        ],
    ),
    (
        "logical_views",
        &[
            "id",
            "name",
            "description",
            "creator",
            "created",
            "last_modifier",
            "last_modified",
            "audit_enabled",
        ],
    ),
    ("attribute_definitions", &["id", "name", "attr_type", "description", "creator", "created"]),
    ("acl_entries", &["id", "object_type", "object_id", "principal", "permission"]),
];

thread_local! {
    /// (shard, epoch) of the last commit this thread produced through the
    /// sharded surface — the per-shard analogue of
    /// [`relstore::Database::last_commit_epoch`], set by the routing
    /// wrappers so the network layer can echo `mcs:epoch`/`mcs:shard`.
    static LAST_WRITE: Cell<(usize, u64)> = const { Cell::new((0, 0)) };
}

/// A catalog hash-partitioned across N independent [`Mcs`] backends.
///
/// Exposes the same operation surface as [`Mcs`] (same names, same
/// signatures, same error behavior), so the network layer and the
/// workload driver run against either. With one shard every call
/// delegates directly — no locking, no mirroring, no pool — keeping
/// `shards = 1` a strict no-op.
pub struct ShardedCatalog {
    shards: Vec<Arc<Mcs>>,
    /// Scatter workers (`None` with a single shard). Sized N-1: shard
    /// 0's slice of a fan-out runs on the calling thread.
    pool: Option<ThreadPool>,
    /// Orders global-state writes (write side) against per-file
    /// membership writes (read side); see the module docs.
    global: parking_lot::RwLock<()>,
}

impl ShardedCatalog {
    // ---------- construction ----------

    /// Wrap an existing single catalog; every operation delegates
    /// directly. This is how [`crate::Mcs`]-based servers adopt the
    /// sharded surface without changing behavior.
    pub fn from_single(mcs: Arc<Mcs>) -> ShardedCatalog {
        ShardedCatalog::assemble(vec![mcs])
    }

    fn assemble(shards: Vec<Arc<Mcs>>) -> ShardedCatalog {
        let pool =
            if shards.len() > 1 { Some(ThreadPool::new(shards.len() - 1)) } else { None };
        ShardedCatalog { shards, pool, global: parking_lot::RwLock::new(()) }
    }

    /// A fresh in-memory sharded catalog (the twin-test constructor):
    /// every shard bootstraps the schema and the admin's service ACL —
    /// identically, so the mirrored tables start in sync.
    pub fn in_memory(
        n_shards: usize,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
    ) -> Result<ShardedCatalog> {
        Self::in_memory_cached(n_shards, admin, profile, clock, None)
    }

    /// [`ShardedCatalog::in_memory`] with a per-shard read cache.
    pub fn in_memory_cached(
        n_shards: usize,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cache: Option<CacheConfig>,
    ) -> Result<ShardedCatalog> {
        Self::in_memory_opts(n_shards, admin, profile, clock, cache, false)
    }

    /// [`ShardedCatalog::in_memory_cached`] with the storage engine
    /// selectable: with `mvcc` every shard runs on an MVCC database, so
    /// scatter-gather reads pin per-shard snapshots instead of taking
    /// shared barriers (DESIGN.md §7.5).
    pub fn in_memory_opts(
        n_shards: usize,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cache: Option<CacheConfig>,
        mvcc: bool,
    ) -> Result<ShardedCatalog> {
        let n = n_shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let db = if mvcc { Database::new_mvcc() } else { Database::new() };
            shards.push(Arc::new(Mcs::with_database_cached(
                Arc::new(db),
                admin,
                profile,
                Arc::clone(&clock),
                cache.clone(),
            )?));
        }
        let sc = ShardedCatalog::assemble(shards);
        sc.reconcile()?;
        Ok(sc)
    }

    /// Open (or recover) a durable sharded catalog rooted at `dir`.
    ///
    /// `cfg.shards = 1` opens the database at `dir` itself — exactly what
    /// [`Mcs::open_durable`] produces, byte-identical on disk. With N > 1
    /// each shard lives in `dir/shard-k` with its own WAL and durability
    /// policy from `cfg`, and recovery runs [`reconcile`]: mirrors are
    /// diffed against shard 0 and dangling membership rows swept, which
    /// restores the two-phase invariants after a crash anywhere in a
    /// global write.
    ///
    /// [`reconcile`]: ShardedCatalog::open
    pub fn open(
        dir: &Path,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cfg: StoreConfig,
    ) -> Result<ShardedCatalog> {
        if cfg.shards <= 1 {
            let mcs = Mcs::open_durable(dir, admin, profile, clock, cfg)?;
            return Ok(ShardedCatalog::from_single(Arc::new(mcs)));
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        for k in 0..cfg.shards {
            let sub = dir.join(format!("shard-{k}"));
            std::fs::create_dir_all(&sub)
                .map_err(|e| McsError::Internal(format!("create {}: {e}", sub.display())))?;
            shards.push(Arc::new(Mcs::open_durable(
                &sub,
                admin,
                profile,
                Arc::clone(&clock),
                cfg,
            )?));
        }
        let sc = ShardedCatalog::assemble(shards);
        sc.reconcile()?;
        Ok(sc)
    }

    // ---------- topology ----------

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning logical-file `name`.
    pub fn shard_for(&self, name: &str) -> usize {
        shard_of_name(name, self.shards.len())
    }

    /// Direct access to one shard's catalog (populate and benchmark
    /// plumbing; regular clients go through the routed operations).
    pub fn shard(&self, k: usize) -> &Arc<Mcs> {
        &self.shards[k]
    }

    /// The index profile the shards were created with.
    pub fn index_profile(&self) -> IndexProfile {
        self.shards[0].index_profile()
    }

    fn single(&self) -> bool {
        self.shards.len() == 1
    }

    // ---------- routing primitives ----------

    /// Run `f` against shard `k`, recording `(shard, epoch)` in the
    /// thread-local if it committed anything.
    fn record<R>(&self, k: usize, f: impl FnOnce(&Mcs) -> R) -> R {
        // Zero the thread's epoch marker first: epoch counters are per
        // shard, so "changed" is not detectable by value comparison —
        // shard 0's next epoch can equal the one shard 3 just left here.
        let before = Database::swap_last_commit_epoch(0);
        let r = f(&self.shards[k]);
        let after = Database::last_commit_epoch();
        if after != 0 {
            LAST_WRITE.set((k, after));
        } else {
            Database::swap_last_commit_epoch(before);
        }
        r
    }

    /// A read or a shard-local write on the shard owning `name`.
    fn on_owner<R>(&self, name: &str, f: impl FnOnce(&Mcs) -> R) -> R {
        self.record(self.shard_for(name), f)
    }

    /// A per-file write that installs a reference to global state (file
    /// creation/membership): holds the read side of the catalog lock so
    /// the referenced collection/view cannot be concurrently deleted.
    fn member_write<R>(&self, name: &str, f: impl FnOnce(&Mcs) -> R) -> R {
        if self.single() {
            return self.record(0, f);
        }
        let _g = self.global.read();
        self.record(self.shard_for(name), f)
    }

    /// Shard-0-only state (users, external catalogs, non-file
    /// annotations/attributes/audit — nothing mirrored).
    fn on_zero<R>(&self, f: impl FnOnce(&Mcs) -> R) -> R {
        self.record(0, f)
    }

    /// A write to mirrored global state: write lock, shard 0 first
    /// (authoritative), then diff-sync every mirror. On error the
    /// mirrors are left untouched — shard 0 rolled back, so there is
    /// nothing to sync.
    fn global_write<R>(&self, f: impl FnOnce(&Mcs) -> Result<R>) -> Result<R> {
        if self.single() {
            return self.record(0, f);
        }
        let _g = self.global.write();
        let r = self.record(0, f)?;
        self.sync_mirrors()?;
        Ok(r)
    }

    // ---------- mirror maintenance ----------

    /// Snapshot a mirrored table keyed by id (file ACEs excluded).
    fn mirror_rows(
        db: &Database,
        table: &str,
        cols: &[&str],
    ) -> Result<BTreeMap<i64, Vec<Value>>> {
        let sql = format!("SELECT {} FROM {table}", cols.join(", "));
        let rs = db.query(&sql, &[])?;
        let mut out = BTreeMap::new();
        for row in rs.rows {
            if table == "acl_entries"
                && matches!(&row[1], Value::Int(c) if *c == ObjectType::File.code())
            {
                continue;
            }
            out.insert(row[0].as_int()?, row);
        }
        Ok(out)
    }

    /// Force one replica's copy of `table` to `want` (shard 0's rows):
    /// delete extra or changed rows, insert missing ones with their
    /// shard-0 primary keys, atomically per table.
    fn sync_mirror_table(
        replica: &Mcs,
        table: &str,
        cols: &[&str],
        want: &BTreeMap<i64, Vec<Value>>,
    ) -> Result<()> {
        let have = Self::mirror_rows(replica.database(), table, cols)?;
        let dels: Vec<i64> = have
            .iter()
            .filter(|(id, row)| want.get(id) != Some(row))
            .map(|(id, _)| *id)
            .collect();
        let ins: Vec<&Vec<Value>> = want
            .iter()
            .filter(|(id, row)| have.get(id) != Some(*row))
            .map(|(_, row)| row)
            .collect();
        if dels.is_empty() && ins.is_empty() {
            return Ok(());
        }
        let del_sql = format!("DELETE FROM {table} WHERE id = ?");
        let ins_sql = format!(
            "INSERT INTO {table} ({}) VALUES ({})",
            cols.join(", "),
            vec!["?"; cols.len()].join(", ")
        );
        replica.database().transaction(&[(table, Access::Write)], |s| {
            for id in &dels {
                s.execute(&del_sql, &[(*id).into()])?;
            }
            for row in &ins {
                s.execute(&ins_sql, row)?;
            }
            Ok::<_, McsError>(())
        })?;
        Ok(())
    }

    /// Phase two of every global write: push shard 0's mirrored tables to
    /// all replicas. Also the first half of crash recovery.
    fn sync_mirrors(&self) -> Result<()> {
        for (table, cols) in MIRRORED {
            let want = Self::mirror_rows(self.shards[0].database(), table, cols)?;
            for replica in &self.shards[1..] {
                Self::sync_mirror_table(replica, table, cols, &want)?;
            }
        }
        Ok(())
    }

    /// Crash recovery for the two-phase protocol: force mirrors to shard
    /// 0's state, then sweep membership rows whose target no longer
    /// exists there — a file pointing at a collection that lost its
    /// authoritative row is detached, a `view_members` row for a dead
    /// view is dropped. After the sweep, replaying the interrupted
    /// operation is idempotent: it either succeeds afresh or fails with
    /// the same `AlreadyExists`/`AlreadyInCollection` a completed run
    /// would produce.
    fn reconcile(&self) -> Result<()> {
        if self.single() {
            return Ok(());
        }
        self.sync_mirrors()?;
        let ids_of = |table: &str| -> Result<BTreeSet<i64>> {
            let rs = self.shards[0].database().query(&format!("SELECT id FROM {table}"), &[])?;
            rs.rows.iter().map(|r| Ok(r[0].as_int()?)).collect()
        };
        let colls = ids_of("logical_collections")?;
        let views = ids_of("logical_views")?;
        for shard in &self.shards {
            let db = shard.database();
            let rs = db.query("SELECT id, collection_id FROM logical_files", &[])?;
            for row in rs.rows {
                if let Value::Int(cid) = row[1] {
                    if !colls.contains(&cid) {
                        db.execute(
                            "UPDATE logical_files SET collection_id = ? WHERE id = ?",
                            &[Value::Null, row[0].clone()],
                        )?;
                    }
                }
            }
            let rs = db.query("SELECT id, view_id FROM view_members", &[])?;
            for row in rs.rows {
                if !views.contains(&row[1].as_int()?) {
                    db.execute("DELETE FROM view_members WHERE id = ?", &[row[0].clone()])?;
                }
            }
        }
        Ok(())
    }

    // ---------- scatter-gather ----------

    /// Run `f` on every shard — shard 0 on the calling thread, the rest
    /// on the pool — and return the results in shard order. The caller's
    /// cache-bypass scope is re-established on every worker. On MVCC
    /// shards the coordinator pins a per-shard snapshot *vector* before
    /// dispatching: each worker reads its shard at the pinned epoch
    /// (holding the vacuum horizon there for the scatter's duration), so
    /// a fan-out observes one consistent cut per shard even while
    /// writers commit underneath it.
    fn scatter<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&Mcs) -> R + Send + Sync + 'static,
    {
        let n = self.shards.len();
        if n == 1 {
            let m = &self.shards[0];
            return vec![m.database().with_snapshot(|| f(m))];
        }
        // The pins must outlive every worker: `with_snapshot_at` only
        // sets the reading thread's epoch, the coordinator's pin is what
        // keeps vacuum from reclaiming the versions being read.
        let pins: Vec<Option<relstore::SnapshotPin>> =
            self.shards.iter().map(|s| s.database().pin_snapshot()).collect();
        let epochs: Vec<Option<u64>> =
            pins.iter().map(|p| p.as_ref().map(|p| p.epoch())).collect();
        let f = Arc::new(f);
        let bypass = crate::cache::bypass_active();
        let planner_bypass = crate::plan::bypass_active();
        let (tx, rx) = mpsc::channel();
        let pool = self.pool.as_ref().expect("multi-shard catalogs have a pool");
        for k in 1..n {
            let shard = Arc::clone(&self.shards[k]);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let epoch = epochs[k];
            pool.execute(move || {
                let run = || {
                    // Both bypasses are thread-locals on the caller;
                    // re-establish whichever were active so the scoped
                    // request behaves identically on every worker.
                    let call = |m: &Mcs| {
                        if planner_bypass {
                            m.with_planner_bypass(|m| f(m))
                        } else {
                            f(m)
                        }
                    };
                    if bypass {
                        shard.with_cache_bypass(call)
                    } else {
                        call(&shard)
                    }
                };
                let r = match epoch {
                    Some(e) => shard.database().with_snapshot_at(e, run),
                    None => run(),
                };
                let _ = tx.send((k, r));
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        out[0] = Some(match epochs[0] {
            Some(e) => self.shards[0].database().with_snapshot_at(e, || f(&self.shards[0])),
            None => f(&self.shards[0]),
        });
        for (k, r) in rx.iter() {
            out[k] = Some(r);
        }
        drop(pins); // every worker has reported; release the horizons
        out.into_iter()
            .map(|r| r.expect("every scatter worker reports"))
            .collect()
    }

    /// Merge fan-out results: first error in shard order wins (shard 0
    /// evaluates the same permission/type checks the single-shard path
    /// would, against the same mirrored state, so the surfaced error is
    /// identical); otherwise concatenate and sort like the single-shard
    /// query paths sort their output.
    fn merge_name_hits(results: Vec<Result<Vec<(String, i64)>>>) -> Result<Vec<(String, i64)>> {
        let mut out = Vec::new();
        for r in results {
            out.extend(r?);
        }
        out.sort();
        Ok(out)
    }

    // ---------- epochs / durability (per shard) ----------

    /// Run `f` with `durability` overriding every commit it makes on
    /// this thread — on any shard; the override is thread-local, not
    /// per-database — and return `f`'s result with the `(epoch, shard)`
    /// of the last routed commit (epoch 0 if `f` wrote nothing).
    pub fn with_durability<R>(
        &self,
        durability: Durability,
        f: impl FnOnce(&ShardedCatalog) -> R,
    ) -> (R, u64, usize) {
        self.track_epoch(|sc| sc.shards[0].database().with_durability(durability, || f(sc)))
    }

    /// Like [`ShardedCatalog::with_durability`] without the override:
    /// just report which shard (if any) `f`'s last commit landed on.
    pub fn track_epoch<R>(&self, f: impl FnOnce(&ShardedCatalog) -> R) -> (R, u64, usize) {
        LAST_WRITE.set((0, 0));
        let r = f(self);
        let (shard, epoch) = LAST_WRITE.get();
        (r, epoch, shard)
    }

    /// Park until shard `shard`'s durable watermark covers `epoch`.
    /// Epochs are per shard — a `(shard, epoch)` pair echoed by an
    /// async-acknowledged write is only meaningful against that shard's
    /// gate.
    pub fn wait_for_epoch(&self, shard: usize, epoch: u64) -> Result<()> {
        self.shard_checked(shard)?.wait_for_epoch(epoch)
    }

    /// Shard `shard`'s durable-epoch watermark.
    pub fn durable_epoch(&self, shard: usize) -> Result<u64> {
        Ok(self.shard_checked(shard)?.durable_epoch())
    }

    /// Every shard's durable-epoch watermark, in shard order.
    pub fn durable_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.durable_epoch()).collect()
    }

    /// Every shard's most recently allocated commit epoch — the
    /// combined epoch vector a client can later wait on per shard.
    pub fn commit_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.commit_epoch()).collect()
    }

    /// Make every acknowledged write on every shard durable now; returns
    /// the per-shard epochs the barrier covered, in shard order.
    pub fn sync_now(&self) -> Result<Vec<u64>> {
        self.shards.iter().map(|s| s.sync_now()).collect()
    }

    fn shard_checked(&self, k: usize) -> Result<&Mcs> {
        self.shards.get(k).map(|s| s.as_ref()).ok_or_else(|| {
            McsError::Internal(format!("shard {k} out of range (catalog has {})", self.shards.len()))
        })
    }

    // ---------- cache (per shard, aggregated) ----------

    /// True when the shards were opened with a read cache.
    pub fn cache_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.cache_enabled())
    }

    /// Aggregate counter snapshot across every shard's cache (each shard
    /// keys its own cache — the shard id is implicit in the partition),
    /// `None` when caching is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        let mut agg: Option<CacheStats> = None;
        for s in &self.shards {
            if let Some(cs) = s.cache_stats() {
                let a = agg.get_or_insert(CacheStats::default());
                a.hits += cs.hits;
                a.misses += cs.misses;
                a.stale += cs.stale;
                a.evictions += cs.evictions;
            }
        }
        agg
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn cache_stats_per_shard(&self) -> Vec<Option<CacheStats>> {
        self.shards.iter().map(|s| s.cache_stats()).collect()
    }

    /// Run `f` with the read cache bypassed on this thread — and, via
    /// [`ShardedCatalog::scatter`]'s bypass propagation, on every pool
    /// thread a fan-out inside `f` touches.
    ///
    /// [`ShardedCatalog::scatter`]: ShardedCatalog::query_by_attributes
    pub fn with_cache_bypass<R>(&self, f: impl FnOnce(&ShardedCatalog) -> R) -> R {
        self.shards[0].with_cache_bypass(|_| f(self))
    }

    /// Run `f` with the cost-based attribute planner bypassed on this
    /// thread — and, via the scatter's bypass propagation, on every pool
    /// thread a fan-out inside `f` touches. See
    /// [`Mcs::with_planner_bypass`].
    pub fn with_planner_bypass<R>(&self, f: impl FnOnce(&ShardedCatalog) -> R) -> R {
        self.shards[0].with_planner_bypass(|_| f(self))
    }

    /// See [`Mcs::explain_query`]. Attribute queries scatter the same
    /// conjunction to every shard, so the plan is shown once (computed
    /// against shard 0's statistics) with a scatter header when the
    /// catalog has more than one shard.
    pub fn explain_query(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<String>> {
        let mut lines = self.shards[0].explain_query(cred, preds)?;
        if self.shards.len() > 1 {
            lines.insert(
                0,
                format!("scatter-gather over {} shards; per-shard plan (shard 0):", self.shards.len()),
            );
        }
        Ok(lines)
    }

    // ---------- files (routed by name) ----------

    /// See [`Mcs::create_file`].
    pub fn create_file(&self, cred: &Credential, spec: &FileSpec) -> Result<LogicalFile> {
        self.member_write(&spec.name, |m| m.create_file(cred, spec))
    }

    /// See [`Mcs::create_files`] — the bulk mutation behind the wire
    /// protocols' `createFiles`. Specs are grouped by owning shard and
    /// each shard's group commits in **one** transaction, shards visited
    /// in shard order under the read side of the catalog lock (so no
    /// referenced collection can be concurrently deleted). Atomicity is
    /// per shard, like two-phase membership writes: a failing spec aborts
    /// its own shard's whole group and stops the remaining shards, but
    /// groups already committed on lower shards stay. Results return in
    /// input order; the echoed epoch is the last shard's commit.
    pub fn create_files(&self, cred: &Credential, specs: &[FileSpec]) -> Result<Vec<LogicalFile>> {
        if self.single() {
            return self.record(0, |m| m.create_files(cred, specs));
        }
        let _g = self.global.read();
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, spec) in specs.iter().enumerate() {
            groups.entry(self.shard_for(&spec.name)).or_default().push(i);
        }
        let mut out: Vec<Option<LogicalFile>> = vec![None; specs.len()];
        for (k, idxs) in groups {
            let group: Vec<FileSpec> = idxs.iter().map(|&i| specs[i].clone()).collect();
            let files = self.record(k, |m| m.create_files(cred, &group))?;
            for (i, f) in idxs.into_iter().zip(files) {
                out[i] = Some(f);
            }
        }
        Ok(out.into_iter().map(|f| f.expect("every spec was grouped")).collect())
    }

    /// See [`Mcs::get_file`].
    pub fn get_file(&self, cred: &Credential, name: &str) -> Result<LogicalFile> {
        self.on_owner(name, |m| m.get_file(cred, name))
    }

    /// See [`Mcs::get_file_version`].
    pub fn get_file_version(
        &self,
        cred: &Credential,
        name: &str,
        version: i64,
    ) -> Result<LogicalFile> {
        self.on_owner(name, |m| m.get_file_version(cred, name, version))
    }

    /// See [`Mcs::get_file_versions`].
    pub fn get_file_versions(&self, cred: &Credential, name: &str) -> Result<Vec<LogicalFile>> {
        self.on_owner(name, |m| m.get_file_versions(cred, name))
    }

    /// See [`Mcs::update_file`].
    pub fn update_file(
        &self,
        cred: &Credential,
        name: &str,
        update: &FileUpdate,
    ) -> Result<LogicalFile> {
        self.on_owner(name, |m| m.update_file(cred, name, update))
    }

    /// See [`Mcs::invalidate_file`].
    pub fn invalidate_file(&self, cred: &Credential, name: &str) -> Result<()> {
        self.on_owner(name, |m| m.invalidate_file(cred, name))
    }

    /// See [`Mcs::delete_file`].
    pub fn delete_file(&self, cred: &Credential, name: &str) -> Result<()> {
        self.member_write(name, |m| m.delete_file(cred, name))
    }

    /// See [`Mcs::delete_file_version`].
    pub fn delete_file_version(&self, cred: &Credential, name: &str, version: i64) -> Result<()> {
        self.member_write(name, |m| m.delete_file_version(cred, name, version))
    }

    /// See [`Mcs::assign_collection`]: the file side runs on the owning
    /// shard under the membership lock; the collection it references is
    /// resolved from that shard's mirror.
    pub fn assign_collection(
        &self,
        cred: &Credential,
        file: &str,
        collection: Option<&str>,
    ) -> Result<()> {
        self.member_write(file, |m| m.assign_collection(cred, file, collection))
    }

    /// See [`Mcs::add_history`].
    pub fn add_history(&self, cred: &Credential, file: &str, description: &str) -> Result<()> {
        self.on_owner(file, |m| m.add_history(cred, file, description))
    }

    /// See [`Mcs::get_history`].
    pub fn get_history(&self, cred: &Credential, file: &str) -> Result<Vec<HistoryRecord>> {
        self.on_owner(file, |m| m.get_history(cred, file))
    }

    // ---------- collections (global, two-phase) ----------

    /// See [`Mcs::create_collection`] — phase one on shard 0, phase two
    /// mirrors the new row everywhere.
    pub fn create_collection(
        &self,
        cred: &Credential,
        name: &str,
        parent: Option<&str>,
        description: &str,
    ) -> Result<Collection> {
        self.global_write(|m| m.create_collection(cred, name, parent, description))
    }

    /// See [`Mcs::delete_collection`]. Two-phase with a cross-shard
    /// emptiness check: under the write lock (no membership write can
    /// race), every shard is checked for files still assigned to the
    /// collection — matching the single-shard
    /// [`McsError::CollectionNotEmpty`] contract — before shard 0
    /// cascades and the mirrors drop their copy.
    pub fn delete_collection(&self, cred: &Credential, name: &str) -> Result<()> {
        if self.single() {
            return self.record(0, |m| m.delete_collection(cred, name));
        }
        let _g = self.global.write();
        let c = self.shards[0].resolve_collection(name)?;
        for shard in &self.shards[1..] {
            if !files_in_collection_local(shard, c.id)?.is_empty() {
                // Same check order as the single-shard path: resolve,
                // authorize, then emptiness.
                self.shards[0].require_collection_perm(cred, &c, Permission::Delete)?;
                return Err(McsError::CollectionNotEmpty(name.to_owned()));
            }
        }
        self.record(0, |m| m.delete_collection(cred, name))?;
        self.sync_mirrors()
    }

    /// See [`Mcs::get_collection`].
    pub fn get_collection(&self, cred: &Credential, name: &str) -> Result<Collection> {
        self.on_zero(|m| m.get_collection(cred, name))
    }

    /// See [`Mcs::list_collection`]: resolution, authorization, auditing
    /// and subcollections come from shard 0; member files are gathered
    /// from every shard and merged in name order (ties — versions of one
    /// name — colocate, so their relative order is the owning shard's
    /// insertion order, same as a single shard's).
    pub fn list_collection(&self, cred: &Credential, name: &str) -> Result<CollectionContents> {
        if self.single() {
            return self.record(0, |m| m.list_collection(cred, name));
        }
        let mut base = self.record(0, |m| m.list_collection(cred, name))?;
        let cid = self.shards[0].resolve_collection(name)?.id;
        let gathered = self.scatter(move |m| files_in_collection_local(m, cid));
        let mut files = Vec::new();
        for r in gathered {
            files.extend(r?);
        }
        files.sort_by(|a, b| a.0.cmp(&b.0));
        base.files = files;
        Ok(base)
    }

    // ---------- views ----------

    /// See [`Mcs::create_view`].
    pub fn create_view(&self, cred: &Credential, name: &str, description: &str) -> Result<View> {
        self.global_write(|m| m.create_view(cred, name, description))
    }

    /// See [`Mcs::delete_view`]. Phase one cascades on shard 0; phase
    /// two drops the per-shard file-membership rows and the mirrored
    /// view row. A crash between the phases leaves orphans that
    /// [`ShardedCatalog::open`]'s sweep removes.
    pub fn delete_view(&self, cred: &Credential, name: &str) -> Result<()> {
        if self.single() {
            return self.record(0, |m| m.delete_view(cred, name));
        }
        let _g = self.global.write();
        let vid = self.shards[0].resolve_view(name)?.id;
        self.record(0, |m| m.delete_view(cred, name))?;
        for replica in &self.shards[1..] {
            replica
                .database()
                .execute("DELETE FROM view_members WHERE view_id = ?", &[vid.into()])?;
        }
        self.sync_mirrors()
    }

    /// See [`Mcs::get_view`].
    pub fn get_view(&self, cred: &Credential, name: &str) -> Result<View> {
        self.on_zero(|m| m.get_view(cred, name))
    }

    /// See [`Mcs::add_to_view`]: file members land on the file's shard
    /// (membership lock held); collection/view members are global state
    /// on shard 0, where the cycle check sees every view edge.
    pub fn add_to_view(&self, cred: &Credential, view: &str, member: &ObjectRef) -> Result<()> {
        match member {
            ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => {
                let name = n.clone();
                self.member_write(&name, |m| m.add_to_view(cred, view, member))
            }
            _ => self.on_zero(|m| m.add_to_view(cred, view, member)),
        }
    }

    /// See [`Mcs::remove_from_view`].
    pub fn remove_from_view(
        &self,
        cred: &Credential,
        view: &str,
        member: &ObjectRef,
    ) -> Result<bool> {
        match member {
            ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => {
                self.on_owner(&n.clone(), |m| m.remove_from_view(cred, view, member))
            }
            _ => self.on_zero(|m| m.remove_from_view(cred, view, member)),
        }
    }

    /// See [`Mcs::list_view`]: shard 0 resolves, authorizes, audits and
    /// contributes its members; file members on other shards are
    /// gathered and merged (all three lists come back sorted, as on a
    /// single shard).
    pub fn list_view(&self, cred: &Credential, name: &str) -> Result<ViewContents> {
        if self.single() {
            return self.record(0, |m| m.list_view(cred, name));
        }
        let mut base = self.record(0, |m| m.list_view(cred, name))?;
        let vid = self.shards[0].resolve_view(name)?.id;
        let gathered = self.scatter(move |m| view_files_local(m, vid));
        for (k, r) in gathered.into_iter().enumerate() {
            if k == 0 {
                continue; // shard 0's files are already in `base`
            }
            base.files.extend(r?);
        }
        base.files.sort();
        Ok(base)
    }

    // ---------- attributes ----------

    /// See [`Mcs::define_attribute`] (mirrored to every shard so routed
    /// operations type-check locally).
    pub fn define_attribute(
        &self,
        cred: &Credential,
        name: &str,
        attr_type: AttrType,
        description: &str,
    ) -> Result<AttributeDefinition> {
        self.global_write(|m| m.define_attribute(cred, name, attr_type, description))
    }

    /// See [`Mcs::attribute_definition`].
    pub fn attribute_definition(&self, name: &str) -> Result<Option<AttributeDefinition>> {
        self.shards[0].attribute_definition(name)
    }

    /// See [`Mcs::attribute_definitions`].
    pub fn attribute_definitions(&self) -> Result<Vec<AttributeDefinition>> {
        self.shards[0].attribute_definitions()
    }

    /// See [`Mcs::set_attribute`] — file attributes live with the file,
    /// collection/view attributes with the authoritative row on shard 0.
    pub fn set_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr: &Attribute,
    ) -> Result<()> {
        match ref_file_name(object) {
            Some(n) => self.on_owner(&n.to_owned(), |m| m.set_attribute(cred, object, attr)),
            None => self.on_zero(|m| m.set_attribute(cred, object, attr)),
        }
    }

    /// See [`Mcs::remove_attribute`].
    pub fn remove_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr_name: &str,
    ) -> Result<bool> {
        match ref_file_name(object) {
            Some(n) => {
                self.on_owner(&n.to_owned(), |m| m.remove_attribute(cred, object, attr_name))
            }
            None => self.on_zero(|m| m.remove_attribute(cred, object, attr_name)),
        }
    }

    /// See [`Mcs::get_attributes`].
    pub fn get_attributes(&self, cred: &Credential, object: &ObjectRef) -> Result<Vec<Attribute>> {
        match ref_file_name(object) {
            Some(n) => self.on_owner(&n.to_owned(), |m| m.get_attributes(cred, object)),
            None => self.on_zero(|m| m.get_attributes(cred, object)),
        }
    }

    /// See [`Mcs::get_attribute`].
    pub fn get_attribute(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        attr_name: &str,
    ) -> Result<Option<Attribute>> {
        Ok(self.get_attributes(cred, object)?.into_iter().find(|a| a.name == attr_name))
    }

    // ---------- queries (scatter-gather) ----------

    /// See [`Mcs::query_by_attributes`]: the fan-out arm of the planner.
    /// Every shard evaluates the full predicate list over its partition
    /// (permission and type checks run against mirrored state, so any
    /// error matches the single-shard one); results merge sorted, and
    /// per-shard disjointness by name makes the merged answer identical
    /// to a single shard's.
    pub fn query_by_attributes(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<(String, i64)>> {
        if self.single() {
            return self.shards[0].query_by_attributes(cred, preds);
        }
        let cred = cred.clone();
        let preds = preds.to_vec();
        Self::merge_name_hits(self.scatter(move |m| m.query_by_attributes(&cred, &preds)))
    }

    /// See [`Mcs::general_query`]. `Not` nodes complement against the
    /// local partition on each shard; because partitions are disjoint
    /// and exhaustive, the union of local complements equals the global
    /// complement.
    pub fn general_query(&self, cred: &Credential, expr: &QueryExpr) -> Result<Vec<(String, i64)>> {
        if self.single() {
            return self.shards[0].general_query(cred, expr);
        }
        let cred = cred.clone();
        let expr = expr.clone();
        Self::merge_name_hits(self.scatter(move |m| m.general_query(&cred, &expr)))
    }

    /// See [`Mcs::file_count`]: the sum over every shard's partition.
    pub fn file_count(&self) -> Result<usize> {
        let mut total = 0;
        for r in self.scatter(|m| m.file_count()) {
            total += r?;
        }
        Ok(total)
    }

    // ---------- annotations / audit ----------

    /// See [`Mcs::annotate`].
    pub fn annotate(&self, cred: &Credential, object: &ObjectRef, text: &str) -> Result<()> {
        match ref_file_name(object) {
            Some(n) => self.on_owner(&n.to_owned(), |m| m.annotate(cred, object, text)),
            None => self.on_zero(|m| m.annotate(cred, object, text)),
        }
    }

    /// See [`Mcs::get_annotations`].
    pub fn get_annotations(
        &self,
        cred: &Credential,
        object: &ObjectRef,
    ) -> Result<Vec<Annotation>> {
        match ref_file_name(object) {
            Some(n) => self.on_owner(&n.to_owned(), |m| m.get_annotations(cred, object)),
            None => self.on_zero(|m| m.get_annotations(cred, object)),
        }
    }

    /// See [`Mcs::get_audit_trail`]. File trails live on the owning
    /// shard. Collection/view/service trails are authoritative on shard
    /// 0 but routed per-file operations audit on *their* shard (e.g. a
    /// file listed out of an audited collection), so the trail gathers
    /// every shard's rows for the object, ordered by timestamp with
    /// shard-order ties.
    pub fn get_audit_trail(
        &self,
        cred: &Credential,
        object: &ObjectRef,
    ) -> Result<Vec<AuditRecord>> {
        match ref_file_name(object) {
            Some(n) => {
                return self.on_owner(&n.to_owned(), |m| m.get_audit_trail(cred, object));
            }
            None => {}
        }
        if self.single() {
            return self.record(0, |m| m.get_audit_trail(cred, object));
        }
        // Resolve + authorize (and learn the object's identity) on the
        // authoritative shard, then gather the per-shard rows.
        let mut out = self.record(0, |m| m.get_audit_trail(cred, object))?;
        let (ot, id, _, _) = self.shards[0].resolve_ref(object)?;
        let gathered = self.scatter(move |m| audit_rows_local(m, ot, id));
        for (k, r) in gathered.into_iter().enumerate() {
            if k == 0 {
                continue; // already in `out`
            }
            out.extend(r?);
        }
        out.sort_by(|a, b| a.at.cmp(&b.at));
        Ok(out)
    }

    /// See [`Mcs::set_audit`] — flips mirrored state for collections and
    /// views, per-file state for files.
    pub fn set_audit(&self, cred: &Credential, object: &ObjectRef, enabled: bool) -> Result<()> {
        match object {
            ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => {
                let name = n.clone();
                self.on_owner(&name, |m| m.set_audit(cred, object, enabled))
            }
            _ => self.global_write(|m| m.set_audit(cred, object, enabled)),
        }
    }

    // ---------- authorization ----------

    /// See [`Mcs::grant`]: file ACEs are per-file state; everything else
    /// is mirrored so routed operations authorize locally.
    pub fn grant(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        match object {
            ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => {
                let name = n.clone();
                self.member_write(&name, |m| m.grant(cred, object, principal, perm))
            }
            _ => self.global_write(|m| m.grant(cred, object, principal, perm)),
        }
    }

    /// See [`Mcs::revoke`].
    pub fn revoke(
        &self,
        cred: &Credential,
        object: &ObjectRef,
        principal: &str,
        perm: Permission,
    ) -> Result<()> {
        match object {
            ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => {
                let name = n.clone();
                self.member_write(&name, |m| m.revoke(cred, object, principal, perm))
            }
            _ => self.global_write(|m| m.revoke(cred, object, principal, perm)),
        }
    }

    /// See [`Mcs::acl`].
    pub fn acl(&self, cred: &Credential, object: &ObjectRef) -> Result<Vec<(String, Permission)>> {
        match ref_file_name(object) {
            Some(n) => self.on_owner(&n.to_owned(), |m| m.acl(cred, object)),
            None => self.on_zero(|m| m.acl(cred, object)),
        }
    }

    /// See [`Mcs::is_service_admin`].
    pub fn is_service_admin(&self, cred: &Credential) -> Result<bool> {
        self.shards[0].is_service_admin(cred)
    }

    /// See [`Mcs::allow_anyone`] (service ACEs are mirrored).
    pub fn allow_anyone(&self, cred: &Credential) -> Result<()> {
        self.global_write(|m| m.allow_anyone(cred))
    }

    // ---------- users / external catalogs / CAS (shard 0) ----------

    /// See [`Mcs::register_user`].
    pub fn register_user(&self, cred: &Credential, user: &UserRecord) -> Result<()> {
        self.on_zero(|m| m.register_user(cred, user))
    }

    /// See [`Mcs::get_user`].
    pub fn get_user(&self, cred: &Credential, dn: &str) -> Result<UserRecord> {
        self.on_zero(|m| m.get_user(cred, dn))
    }

    /// See [`Mcs::list_users`].
    pub fn list_users(&self, cred: &Credential) -> Result<Vec<UserRecord>> {
        self.on_zero(|m| m.list_users(cred))
    }

    /// See [`Mcs::register_external_catalog`].
    pub fn register_external_catalog(
        &self,
        cred: &Credential,
        cat: &ExternalCatalog,
    ) -> Result<()> {
        self.on_zero(|m| m.register_external_catalog(cred, cat))
    }

    /// See [`Mcs::list_external_catalogs`].
    pub fn list_external_catalogs(&self, cred: &Credential) -> Result<Vec<ExternalCatalog>> {
        self.on_zero(|m| m.list_external_catalogs(cred))
    }

    /// See [`Mcs::trust_community`].
    pub fn trust_community(&self, cred: &Credential, community: &str, secret: u64) -> Result<()> {
        self.shards[0].trust_community(cred, community, secret)
    }

    /// See [`Mcs::revoke_community_trust`].
    pub fn revoke_community_trust(&self, cred: &Credential, community: &str) -> Result<()> {
        self.shards[0].revoke_community_trust(cred, community)
    }

    /// See [`Mcs::credential_from_assertion`].
    pub fn credential_from_assertion(&self, assertion: &crate::CasAssertion) -> Result<Credential> {
        self.shards[0].credential_from_assertion(assertion)
    }
}

/// The routed name of a file reference, `None` for global objects.
fn ref_file_name(object: &ObjectRef) -> Option<&str> {
    match object {
        ObjectRef::File(n) | ObjectRef::FileVersion(n, _) => Some(n),
        _ => None,
    }
}

/// One shard's `(name, version)` rows for a collection, in name order —
/// the gather leg of [`ShardedCatalog::list_collection`]; no
/// authorization or auditing (the authoritative shard already did both).
fn files_in_collection_local(m: &Mcs, coll_id: i64) -> Result<Vec<(String, i64)>> {
    let rs = m.database().execute_prepared(&m.stmts.files_in_coll, &[coll_id.into()])?;
    let rows = rs.rows.expect("select");
    rows.rows
        .iter()
        .map(|r| Ok((r[1].as_str()?.to_owned(), r[2].as_int()?)))
        .collect()
}

/// One shard's file members of a view, resolved to `(name, version)` —
/// the gather leg of [`ShardedCatalog::list_view`].
fn view_files_local(m: &Mcs, view_id: i64) -> Result<Vec<(String, i64)>> {
    let mut out = Vec::new();
    for member in m.view_members(view_id)? {
        if member.member_type == ObjectType::File {
            let f = m.resolve_file_by_id(member.member_id)?;
            out.push((f.name, f.version));
        }
    }
    Ok(out)
}

/// One shard's audit rows for `(ot, id)`, oldest first — the gather leg
/// of [`ShardedCatalog::get_audit_trail`].
fn audit_rows_local(m: &Mcs, ot: ObjectType, id: i64) -> Result<Vec<AuditRecord>> {
    let rs = m.database().query(
        "SELECT action, actor, at, details FROM audit_log \
         WHERE object_type = ? AND object_id = ? ORDER BY id",
        &[ot.code().into(), id.into()],
    )?;
    rs.rows
        .iter()
        .map(|r| {
            Ok(AuditRecord {
                object_type: ot,
                object_id: id,
                action: r[0].as_str()?.to_owned(),
                actor: r[1].as_str()?.to_owned(),
                at: match &r[2] {
                    Value::DateTime(dt) => *dt,
                    _ => return Err(McsError::Internal("bad at column".into())),
                },
                details: match &r[3] {
                    Value::Str(s) => s.to_string(),
                    _ => String::new(),
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn admin() -> Credential {
        Credential::new("/O=Grid/CN=admin")
    }

    fn catalog(n: usize) -> ShardedCatalog {
        ShardedCatalog::in_memory(
            n,
            &admin(),
            IndexProfile::Paper2003,
            Arc::new(ManualClock::default()),
        )
        .unwrap()
    }

    #[test]
    fn hash_is_stable() {
        // Pinned values: the shard map is on-disk state, so the router
        // must produce these exact assignments forever.
        assert_eq!(fnv1a64(b"lfn.000000000.dat"), 0xb36d_a383_2a11_5592);
        assert_eq!(shard_of_name("lfn.000000000.dat", 4), 2);
        assert_eq!(shard_of_name("lfn.000000001.dat", 4), 1);
        assert_eq!(shard_of_name("anything", 1), 0);
    }

    #[test]
    fn routed_ops_spread_and_queries_merge() {
        let a = admin();
        let sc = catalog(4);
        sc.define_attribute(&a, "site", AttrType::Str, "").unwrap();
        for i in 0..40 {
            sc.create_file(&a, &FileSpec::named(format!("f{i:03}.dat")).attr("site", "isi"))
                .unwrap();
        }
        assert_eq!(sc.file_count().unwrap(), 40);
        let per_shard: Vec<usize> =
            (0..4).map(|k| sc.shard(k).file_count().unwrap()).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 40);
        assert!(per_shard.iter().filter(|&&n| n > 0).count() >= 2, "{per_shard:?}");
        let hits = sc.query_by_attributes(&a, &[AttrPredicate::eq("site", "isi")]).unwrap();
        assert_eq!(hits.len(), 40);
        let mut sorted = hits.clone();
        sorted.sort();
        assert_eq!(hits, sorted, "merged results are sorted");
    }

    #[test]
    fn collections_mirror_and_membership_routes() {
        let a = admin();
        let sc = catalog(3);
        sc.create_collection(&a, "run-a", None, "").unwrap();
        // The mirrored row exists on every shard, same id.
        for k in 0..3 {
            let c = sc.shard(k).get_collection(&a, "run-a").unwrap();
            assert_eq!(c.id, 1);
        }
        for i in 0..12 {
            let spec = FileSpec::named(format!("m{i:03}.dat")).in_collection("run-a");
            sc.create_file(&a, &spec).unwrap();
        }
        let listing = sc.list_collection(&a, "run-a").unwrap();
        assert_eq!(listing.files.len(), 12);
        assert!(listing.files.windows(2).all(|w| w[0].0 <= w[1].0));
        // Non-empty spans shards -> delete refuses like a single shard.
        assert_eq!(
            sc.delete_collection(&a, "run-a"),
            Err(McsError::CollectionNotEmpty("run-a".into()))
        );
        for i in 0..12 {
            sc.delete_file(&a, &format!("m{i:03}.dat")).unwrap();
        }
        sc.delete_collection(&a, "run-a").unwrap();
        for k in 0..3 {
            assert!(matches!(
                sc.shard(k).get_collection(&a, "run-a"),
                Err(McsError::NotFound(_))
            ));
        }
    }

    #[test]
    fn acl_changes_mirror_to_replicas() {
        let a = admin();
        let sc = catalog(2);
        sc.create_collection(&a, "locked", None, "").unwrap();
        let user = Credential::new("/O=Grid/CN=user");
        let spec = FileSpec::named("denied.dat").in_collection("locked");
        // No grant yet: the owning shard's mirrored ACLs deny the write.
        assert!(matches!(
            sc.create_file(&user, &spec),
            Err(McsError::PermissionDenied { .. })
        ));
        sc.grant(&a, &ObjectRef::Collection("locked".into()), &user.dn, Permission::Write)
            .unwrap();
        sc.create_file(&user, &spec).unwrap();
    }

    #[test]
    fn single_shard_is_plain_delegation() {
        let a = admin();
        let sc = catalog(1);
        assert_eq!(sc.shards(), 1);
        assert!(sc.pool.is_none());
        sc.create_file(&a, &FileSpec::named("solo.dat")).unwrap();
        assert_eq!(sc.file_count().unwrap(), 1);
        assert_eq!(sc.get_file(&a, "solo.dat").unwrap().name, "solo.dat");
    }

    #[test]
    fn views_gather_file_members_across_shards() {
        let a = admin();
        let sc = catalog(4);
        sc.create_view(&a, "everything", "").unwrap();
        for i in 0..10 {
            let name = format!("v{i:03}.dat");
            sc.create_file(&a, &FileSpec::named(&name)).unwrap();
            sc.add_to_view(&a, "everything", &ObjectRef::File(name)).unwrap();
        }
        let contents = sc.list_view(&a, "everything").unwrap();
        assert_eq!(contents.files.len(), 10);
        assert!(contents.files.windows(2).all(|w| w[0] <= w[1]));
        sc.delete_view(&a, "everything").unwrap();
        for k in 0..4 {
            let rs = sc.shard(k).database().query("SELECT id FROM view_members", &[]).unwrap();
            assert!(rs.rows.is_empty(), "shard {k} kept membership rows");
        }
    }
}
