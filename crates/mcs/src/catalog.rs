//! The Metadata Catalog Service object: construction, object resolution,
//! and the logical-file / logical-collection lifecycle.
//!
//! Other `impl Mcs` blocks live in sibling modules: attributes
//! ([`crate::attrs`]), views ([`crate::views`]), authorization
//! ([`crate::authz`]), queries ([`crate::query`]), annotations, audit,
//! history, users and external catalogs.

use std::sync::Arc;

use relstore::{Access, Database, Prepared, Value};

use crate::clock::{Clock, SystemClock};
use crate::error::{McsError, Result};
use crate::model::*;
use crate::schema::{bootstrap, IndexProfile};

/// Prepared statements for the catalog's hot paths (the original MCS used
/// JDBC prepared statements against MySQL for the same reason).
pub(crate) struct Statements {
    pub ins_file: Prepared,
    pub sel_file_name_ver: Prepared,
    pub sel_file_versions: Prepared,
    pub sel_file_by_id: Prepared,
    pub del_file_by_id: Prepared,
    pub ins_attr: Prepared,
    pub sel_attrs_obj: Prepared,
    pub del_attrs_obj: Prepared,
    pub del_attr_named: Prepared,
    pub ins_audit: Prepared,
    pub sel_acl_obj: Prepared,
    pub sel_attrdef: Prepared,
    pub sel_coll_by_id: Prepared,
    pub sel_coll_by_name: Prepared,
    pub files_in_coll: Prepared,
    pub sel_subcolls: Prepared,
    pub count_subcolls: Prepared,
    pub ins_coll: Prepared,
    pub del_coll_by_id: Prepared,
    pub del_annot_obj: Prepared,
    pub del_hist_file: Prepared,
    pub del_acl_obj: Prepared,
    pub del_view_member: Prepared,
    pub upd_file_coll: Prepared,
}

impl Statements {
    fn prepare(db: &Database) -> Result<Statements> {
        Ok(Statements {
            ins_file: db.prepare(
                "INSERT INTO logical_files (name, version, data_type, valid, collection_id, \
                 container_id, container_service, creator, created, master_copy, audit_enabled) \
                 VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            )?,
            sel_file_name_ver: db
                .prepare("SELECT * FROM logical_files WHERE name = ? AND version = ?")?,
            sel_file_versions: db.prepare("SELECT * FROM logical_files WHERE name = ?")?,
            sel_file_by_id: db.prepare("SELECT * FROM logical_files WHERE id = ?")?,
            del_file_by_id: db.prepare("DELETE FROM logical_files WHERE id = ?")?,
            ins_attr: db.prepare(
                "INSERT INTO user_attributes (object_type, object_id, name, attr_type, \
                 str_value, int_value, float_value, date_value, time_value, datetime_value) \
                 VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            )?,
            sel_attrs_obj: db.prepare(
                "SELECT name, attr_type, str_value, int_value, float_value, date_value, \
                 time_value, datetime_value FROM user_attributes \
                 WHERE object_type = ? AND object_id = ? ORDER BY name",
            )?,
            del_attrs_obj: db
                .prepare("DELETE FROM user_attributes WHERE object_type = ? AND object_id = ?")?,
            del_attr_named: db.prepare(
                "DELETE FROM user_attributes \
                 WHERE object_type = ? AND object_id = ? AND name = ?",
            )?,
            ins_audit: db.prepare(
                "INSERT INTO audit_log (object_type, object_id, action, actor, at, details) \
                 VALUES (?, ?, ?, ?, ?, ?)",
            )?,
            sel_acl_obj: db.prepare(
                "SELECT principal, permission FROM acl_entries \
                 WHERE object_type = ? AND object_id = ?",
            )?,
            sel_attrdef: db.prepare(
                "SELECT name, attr_type, description FROM attribute_definitions WHERE name = ?",
            )?,
            sel_coll_by_id: db.prepare("SELECT * FROM logical_collections WHERE id = ?")?,
            sel_coll_by_name: db.prepare("SELECT * FROM logical_collections WHERE name = ?")?,
            files_in_coll: db
                .prepare("SELECT * FROM logical_files WHERE collection_id = ? ORDER BY name")?,
            sel_subcolls: db.prepare(
                "SELECT name FROM logical_collections WHERE parent_id = ? ORDER BY name",
            )?,
            count_subcolls: db.prepare(
                "SELECT COUNT(*) AS n FROM logical_collections WHERE parent_id = ?",
            )?,
            ins_coll: db.prepare(
                "INSERT INTO logical_collections \
                 (name, description, parent_id, creator, created) VALUES (?, ?, ?, ?, ?)",
            )?,
            del_coll_by_id: db.prepare("DELETE FROM logical_collections WHERE id = ?")?,
            del_annot_obj: db
                .prepare("DELETE FROM annotations WHERE object_type = ? AND object_id = ?")?,
            del_hist_file: db.prepare("DELETE FROM transformation_history WHERE file_id = ?")?,
            del_acl_obj: db
                .prepare("DELETE FROM acl_entries WHERE object_type = ? AND object_id = ?")?,
            del_view_member: db
                .prepare("DELETE FROM view_members WHERE member_type = ? AND member_id = ?")?,
            upd_file_coll: db.prepare(
                "UPDATE logical_files SET collection_id = ?, last_modifier = ?, \
                 last_modified = ? WHERE id = ?",
            )?,
        })
    }
}

/// Storage policy for a durably-opened catalog: how autocommit statements
/// sync ([`SyncPolicy`]) and how transaction commits sync
/// ([`Durability`]). The default — sync every write, one fsync per
/// commit — matches the paper's MySQL-with-binlog deployment; services
/// expecting many concurrent writers switch `durability` to
/// [`Durability::Group`] so commits share disk syncs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Per-statement sync behavior for autocommit writes.
    pub sync: relstore::SyncPolicy,
    /// Commit durability policy (per-transaction vs group commit).
    pub durability: relstore::Durability,
    /// Read cache sizing, `None` (the default) to disable — see
    /// [`crate::cache`]. Off by default so the 2003 figures reproduce
    /// byte-identical behavior.
    pub cache: Option<crate::cache::CacheConfig>,
    /// Number of hash-partitioned relstore backends ([`crate::shard`]).
    /// The default of 1 keeps today's single-database layout —
    /// byte-identical on disk; `> 1` makes [`Mcs::open_sharded`] lay the
    /// catalog out as `shard-0/..shard-N-1/` subdirectories, each with
    /// its own WAL, commit queue and epoch gate.
    pub shards: usize,
    /// Run the storage engine in MVCC mode: reads pin a snapshot epoch
    /// and traverse row version chains instead of taking shared table
    /// barriers, so readers never block behind writers (DESIGN.md §7.5).
    /// Off by default — the barrier engine's behavior is byte-identical
    /// to previous releases, and the WAL/snapshot formats are the same
    /// either way, so a catalog can be reopened with the flag flipped.
    pub mvcc: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            sync: relstore::SyncPolicy::EveryWrite,
            durability: relstore::Durability::Always,
            cache: None,
            shards: 1,
            mvcc: false,
        }
    }
}

impl StoreConfig {
    /// A config with group commit enabled at the given batching window.
    pub fn grouped(max_wait: std::time::Duration, max_batch: usize) -> StoreConfig {
        StoreConfig {
            durability: relstore::Durability::Group { max_wait, max_batch },
            ..StoreConfig::default()
        }
    }

    /// Builder: enable the read cache ([`crate::cache`]) at the given
    /// sizing.
    pub fn with_cache(mut self, cache: crate::cache::CacheConfig) -> StoreConfig {
        self.cache = Some(cache);
        self
    }

    /// Builder: partition the catalog across `n` relstore backends by a
    /// stable hash of the logical-file name (see [`crate::shard`]).
    pub fn sharded(mut self, n: usize) -> StoreConfig {
        self.shards = n.max(1);
        self
    }

    /// A config with asynchronous commit acknowledgement: writes return
    /// as soon as their WAL group is enqueued, carrying a commit epoch; a
    /// background flusher pays durability in batches. Clients turn the
    /// weak ack into a hard one with [`Mcs::wait_for_epoch`] or
    /// [`Mcs::sync_now`] — the paper's bulk loaders only need that one
    /// final barrier. See DESIGN.md §7.2 for what the ack does and does
    /// not promise.
    pub fn asynchronous(max_wait: std::time::Duration, max_batch: usize) -> StoreConfig {
        StoreConfig {
            durability: relstore::Durability::Async { max_wait, max_batch },
            ..StoreConfig::default()
        }
    }

    /// Builder: run the storage engine in MVCC mode (snapshot reads, no
    /// reader barriers). See [`StoreConfig::mvcc`] and DESIGN.md §7.5.
    pub fn with_mvcc(mut self) -> StoreConfig {
        self.mvcc = true;
        self
    }
}

/// The Metadata Catalog Service.
///
/// All operations take a [`Credential`] and enforce the ACL model of
/// paper §3/§5 (effective permissions are the union of object permissions
/// and those of the enclosing collection hierarchy).
pub struct Mcs {
    pub(crate) db: Arc<Database>,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) stmts: Statements,
    pub(crate) profile: IndexProfile,
    /// Version-validated read cache ([`crate::cache`]); `None` unless
    /// opened with [`StoreConfig::cache`] / [`Mcs::with_database_cached`].
    pub(crate) cache: Option<crate::cache::McsCache>,
    /// Trusted communities for CAS assertions (community -> shared secret).
    pub(crate) cas_trust: parking_lot::RwLock<std::collections::HashMap<String, u64>>,
}

impl Mcs {
    /// Create a catalog on a fresh in-memory database. `admin` receives
    /// Admin on the service object (the bootstrap superuser).
    pub fn new(admin: &Credential) -> Result<Mcs> {
        Mcs::with_options(admin, IndexProfile::Paper2003, Arc::new(SystemClock))
    }

    /// Create a catalog with an explicit index profile and clock.
    pub fn with_options(
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
    ) -> Result<Mcs> {
        Mcs::with_database(Arc::new(Database::new()), admin, profile, clock)
    }

    /// [`Mcs::with_options`] plus a read cache — the in-memory
    /// constructor the cache tests and benchmarks use.
    pub fn with_options_cached(
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cache: crate::cache::CacheConfig,
    ) -> Result<Mcs> {
        Mcs::with_database_cached(Arc::new(Database::new()), admin, profile, clock, Some(cache))
    }

    /// Open a durable catalog rooted at `dir` with an explicit
    /// [`StoreConfig`]: the database is opened (or recovered) via
    /// [`relstore::Database::open_durable_with`] and the catalog schema
    /// bootstrapped on first open. The convenience wrapper over
    /// [`Mcs::with_database`] that catalog services and benchmarks use to
    /// pick a commit durability policy.
    pub fn open_durable(
        dir: &std::path::Path,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cfg: StoreConfig,
    ) -> Result<Mcs> {
        let db = relstore::Database::open_durable_opts(dir, cfg.sync, cfg.durability, cfg.mvcc)?;
        if cfg.mvcc {
            db.start_vacuum(std::time::Duration::from_millis(100));
        }
        Mcs::with_database_cached(db, admin, profile, clock, cfg.cache)
    }

    /// Open a hash-partitioned catalog rooted at `dir` honoring
    /// [`StoreConfig::shards`]: `shards = 1` produces exactly the layout
    /// [`Mcs::open_durable`] would (the database lives at `dir` itself);
    /// `shards = N > 1` opens N independent databases under
    /// `dir/shard-0 .. dir/shard-N-1` and reconciles the mirrored global
    /// tables on open. See [`crate::shard`].
    pub fn open_sharded(
        dir: &std::path::Path,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cfg: StoreConfig,
    ) -> Result<crate::shard::ShardedCatalog> {
        crate::shard::ShardedCatalog::open(dir, admin, profile, clock, cfg)
    }

    /// Open a catalog on an existing database — e.g. one opened durably
    /// via [`relstore::Database::open_durable`], so catalog contents
    /// survive restarts. Bootstraps the schema and the admin's service
    /// ACL only when the database is fresh; an already-initialized
    /// database keeps its contents and policies.
    pub fn with_database(
        db: Arc<Database>,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
    ) -> Result<Mcs> {
        Mcs::with_database_cached(db, admin, profile, clock, None)
    }

    /// [`Mcs::with_database`] plus an optional read cache
    /// ([`crate::cache`]) — the constructor every other one funnels
    /// through.
    pub fn with_database_cached(
        db: Arc<Database>,
        admin: &Credential,
        profile: IndexProfile,
        clock: Arc<dyn Clock>,
        cache: Option<crate::cache::CacheConfig>,
    ) -> Result<Mcs> {
        let fresh = db.table("logical_files").is_err();
        if fresh {
            bootstrap(&db, profile)?;
        }
        let stmts = Statements::prepare(&db)?;
        let mcs = Mcs {
            db,
            clock,
            stmts,
            profile,
            cache: cache.as_ref().map(crate::cache::McsCache::new),
            cas_trust: parking_lot::RwLock::new(std::collections::HashMap::new()),
        };
        if fresh {
            // Bootstrap ACL: the admin can do everything on the service.
            mcs.db.transaction(&[("acl_entries", Access::Write)], |s| {
                for p in
                    [Permission::Read, Permission::Write, Permission::Delete, Permission::Admin]
                {
                    mcs.insert_ace_in(s, ObjectType::Service, 0, &admin.dn, p)?;
                }
                Ok::<_, McsError>(())
            })?;
        }
        Ok(mcs)
    }

    /// The index profile this catalog was created with.
    pub fn index_profile(&self) -> IndexProfile {
        self.profile
    }

    /// Access the underlying database (used by the evaluation harness to
    /// measure "direct MySQL" rates without the service layer).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    // ---------- commit durability / epochs (DESIGN.md §7.2) ----------

    /// Run `f` with `durability` overriding the store-wide commit policy
    /// for every commit `f` makes on this thread, and return `f`'s result
    /// together with the commit epoch of the *last* WAL unit it produced
    /// (0 if it wrote nothing — e.g. a pure read, or a failed operation
    /// that never reached commit). This is how the network layer maps a
    /// per-request `mcs:durability` header onto one catalog call and
    /// echoes the epoch back to the client.
    pub fn with_durability<R>(
        &self,
        durability: relstore::Durability,
        f: impl FnOnce(&Mcs) -> R,
    ) -> (R, u64) {
        let before = Database::last_commit_epoch();
        let r = self.db.with_durability(durability, || f(self));
        let after = Database::last_commit_epoch();
        (r, if after > before { after } else { 0 })
    }

    /// The most recently allocated commit epoch on the underlying
    /// database. See [`relstore::Database::commit_epoch`].
    pub fn commit_epoch(&self) -> u64 {
        self.db.commit_epoch()
    }

    /// The commit epoch of the last WAL unit **this thread** produced (0
    /// if none). See [`relstore::Database::last_commit_epoch`].
    pub fn last_commit_epoch() -> u64 {
        Database::last_commit_epoch()
    }

    /// The durable-epoch watermark. See
    /// [`relstore::Database::durable_epoch`].
    pub fn durable_epoch(&self) -> u64 {
        self.db.durable_epoch()
    }

    /// Park until the watermark covers `epoch` (a value previously echoed
    /// to the caller by an async-acknowledged write). Fails promptly with
    /// [`McsError::DurabilityLost`] if the log writer failed while the
    /// epoch was pending.
    pub fn wait_for_epoch(&self, epoch: u64) -> Result<()> {
        self.db.wait_for_epoch(epoch).map_err(McsError::from)
    }

    /// Make every acknowledged write durable now (the bulk-load final
    /// barrier); returns the epoch the barrier covered.
    pub fn sync_now(&self) -> Result<u64> {
        let epoch = self.db.commit_epoch();
        self.db.sync_now()?;
        Ok(epoch)
    }

    pub(crate) fn now(&self) -> Value {
        Value::DateTime(self.clock.now())
    }

    // ---------- row decoding ----------

    pub(crate) fn file_from_row(row: &[Value]) -> Result<LogicalFile> {
        let get_str = |v: &Value| -> Option<String> {
            match v {
                Value::Str(s) => Some(s.to_string()),
                _ => None,
            }
        };
        let get_dt = |v: &Value| match v {
            Value::DateTime(dt) => Some(*dt),
            _ => None,
        };
        Ok(LogicalFile {
            id: row[0].as_int()?,
            name: row[1].as_str()?.to_owned(),
            version: row[2].as_int()?,
            data_type: get_str(&row[3]),
            valid: row[4].as_bool()?,
            collection_id: match &row[5] {
                Value::Null => None,
                v => Some(v.as_int()?),
            },
            container_id: get_str(&row[6]),
            container_service: get_str(&row[7]),
            creator: row[8].as_str()?.to_owned(),
            created: get_dt(&row[9])
                .ok_or_else(|| McsError::Internal("bad created column".into()))?,
            last_modifier: get_str(&row[10]),
            last_modified: get_dt(&row[11]),
            master_copy: get_str(&row[12]),
            audit_enabled: row[13].as_bool()?,
        })
    }

    pub(crate) fn collection_from_row(row: &[Value]) -> Result<Collection> {
        Ok(Collection {
            id: row[0].as_int()?,
            name: row[1].as_str()?.to_owned(),
            description: match &row[2] {
                Value::Str(s) => s.to_string(),
                _ => String::new(),
            },
            parent_id: match &row[3] {
                Value::Null => None,
                v => Some(v.as_int()?),
            },
            creator: row[4].as_str()?.to_owned(),
            created: match &row[5] {
                Value::DateTime(dt) => *dt,
                _ => return Err(McsError::Internal("bad created column".into())),
            },
            last_modifier: match &row[6] {
                Value::Str(s) => Some(s.to_string()),
                _ => None,
            },
            last_modified: match &row[7] {
                Value::DateTime(dt) => Some(*dt),
                _ => None,
            },
            audit_enabled: row[8].as_bool()?,
        })
    }

    // ---------- object resolution ----------

    /// Look up a logical file by name. Errors with [`McsError::VersionConflict`]
    /// if several versions exist (the client must then supply the version).
    /// Served from the read cache when one is enabled; only successful
    /// resolutions are cached (errors always re-execute).
    pub(crate) fn resolve_file(&self, name: &str) -> Result<LogicalFile> {
        use crate::cache::{CacheKey, CacheValue, Lookup};
        let Some(cache) = self.read_cache() else {
            return self.resolve_file_uncached(name);
        };
        let key = CacheKey::FileByName(name.to_owned());
        let stamp = match cache.lookup(&self.db, &key) {
            Lookup::Hit(CacheValue::File(f)) => return Ok(f),
            Lookup::Hit(_) => return self.resolve_file_uncached(name),
            Lookup::Miss(stamp) => stamp,
        };
        let f = self.resolve_file_uncached(name)?;
        cache.insert(key, CacheValue::File(f.clone()), stamp);
        Ok(f)
    }

    fn resolve_file_uncached(&self, name: &str) -> Result<LogicalFile> {
        let rs = self.db.execute_prepared(&self.stmts.sel_file_versions, &[name.into()])?;
        let rows = rs.rows.expect("select");
        match rows.rows.len() {
            0 => Err(McsError::NotFound(ObjectRef::File(name.to_owned()))),
            1 => Self::file_from_row(&rows.rows[0]),
            n => Err(McsError::VersionConflict(format!(
                "`{name}` has {n} versions; specify one"
            ))),
        }
    }

    /// Look up a specific version of a logical file (cached like
    /// [`Mcs::resolve_file`]).
    pub(crate) fn resolve_file_version(&self, name: &str, version: i64) -> Result<LogicalFile> {
        use crate::cache::{CacheKey, CacheValue, Lookup};
        let Some(cache) = self.read_cache() else {
            return self.resolve_file_version_uncached(name, version);
        };
        let key = CacheKey::FileByNameVer(name.to_owned(), version);
        let stamp = match cache.lookup(&self.db, &key) {
            Lookup::Hit(CacheValue::File(f)) => return Ok(f),
            Lookup::Hit(_) => return self.resolve_file_version_uncached(name, version),
            Lookup::Miss(stamp) => stamp,
        };
        let f = self.resolve_file_version_uncached(name, version)?;
        cache.insert(key, CacheValue::File(f.clone()), stamp);
        Ok(f)
    }

    fn resolve_file_version_uncached(&self, name: &str, version: i64) -> Result<LogicalFile> {
        let rs = self
            .db
            .execute_prepared(&self.stmts.sel_file_name_ver, &[name.into(), version.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::file_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::FileVersion(name.to_owned(), version)))
    }

    pub(crate) fn resolve_file_by_id(&self, id: i64) -> Result<LogicalFile> {
        let rs = self.db.execute_prepared(&self.stmts.sel_file_by_id, &[id.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::file_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::File(format!("#{id}"))))
    }

    /// Look up a collection by name (cached like [`Mcs::resolve_file`]).
    pub(crate) fn resolve_collection(&self, name: &str) -> Result<Collection> {
        use crate::cache::{CacheKey, CacheValue, Lookup};
        let Some(cache) = self.read_cache() else {
            return self.resolve_collection_uncached(name);
        };
        let key = CacheKey::CollByName(name.to_owned());
        let stamp = match cache.lookup(&self.db, &key) {
            Lookup::Hit(CacheValue::Collection(c)) => return Ok(c),
            Lookup::Hit(_) => return self.resolve_collection_uncached(name),
            Lookup::Miss(stamp) => stamp,
        };
        let c = self.resolve_collection_uncached(name)?;
        cache.insert(key, CacheValue::Collection(c.clone()), stamp);
        Ok(c)
    }

    fn resolve_collection_uncached(&self, name: &str) -> Result<Collection> {
        let rs = self.db.execute_prepared(&self.stmts.sel_coll_by_name, &[name.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::collection_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::Collection(name.to_owned())))
    }

    pub(crate) fn resolve_collection_by_id(&self, id: i64) -> Result<Collection> {
        let rs = self.db.execute_prepared(&self.stmts.sel_coll_by_id, &[id.into()])?;
        let rows = rs.rows.expect("select");
        rows.rows
            .first()
            .map(|r| Self::collection_from_row(r))
            .transpose()?
            .ok_or_else(|| McsError::NotFound(ObjectRef::Collection(format!("#{id}"))))
    }

    // ---------- logical files ----------

    /// Create a logical file with its creation-time attributes
    /// (paper API: "Creating a logical file").
    ///
    /// Requires Write on the target collection when one is given, else
    /// Write on the service. The insert of the file row and its attribute
    /// rows is atomic.
    pub fn create_file(&self, cred: &Credential, spec: &FileSpec) -> Result<LogicalFile> {
        validate_name(&spec.name)?;
        let version = spec.version.unwrap_or(1);
        let collection = match &spec.collection {
            Some(cname) => {
                let c = self.resolve_collection(cname)?;
                self.require_collection_perm(cred, &c, Permission::Write)?;
                Some(c)
            }
            None => {
                self.require_service_perm(cred, Permission::Write)?;
                None
            }
        };
        // Type-check the attributes against their definitions up front.
        let attr_rows: Vec<[Value; 10]> = spec
            .attributes
            .iter()
            .map(|a| self.attr_row_values(ObjectType::File, a))
            .collect::<Result<_>>()?;

        let now = self.now();
        // One transaction: the file row, its attribute rows, and the audit
        // record commit together or not at all — a failure at any point
        // (and a crash at any statement boundary) leaves no trace.
        let id = self.db.transaction(
            &[
                ("audit_log", Access::Write),
                ("logical_files", Access::Write),
                ("user_attributes", Access::Write),
            ],
            |s| {
                let res = s.execute_prepared(
                    &self.stmts.ins_file,
                    &[
                        spec.name.as_str().into(),
                        version.into(),
                        opt_str(&spec.data_type),
                        true.into(),
                        collection.as_ref().map_or(Value::Null, |c| c.id.into()),
                        opt_str(&spec.container_id),
                        opt_str(&spec.container_service),
                        cred.dn.as_str().into(),
                        now.clone(),
                        opt_str(&spec.master_copy),
                        spec.audit.into(),
                    ],
                );
                let res = match res {
                    Err(relstore::Error::UniqueViolation { .. }) => {
                        return Err(McsError::AlreadyExists(format!(
                            "{}.v{}",
                            spec.name, version
                        )))
                    }
                    other => other?,
                };
                let id =
                    res.last_insert_id.ok_or_else(|| McsError::Internal("no insert id".into()))?;
                for (i, vals) in attr_rows.iter().enumerate() {
                    let mut params: Vec<Value> = Vec::with_capacity(10);
                    params.push(ObjectType::File.code().into());
                    params.push(id.into());
                    params.extend(vals[2..].iter().cloned());
                    // vals[0..2] are placeholders replaced by the two pushes above
                    if let Err(e) = s.execute_prepared(&self.stmts.ins_attr, &params) {
                        return Err(if matches!(e, relstore::Error::UniqueViolation { .. }) {
                            McsError::BadAttribute(format!(
                                "duplicate attribute `{}`",
                                spec.attributes[i].name
                            ))
                        } else {
                            e.into()
                        });
                    }
                }
                if spec.audit {
                    self.audit_action_in(s, ObjectType::File, id, "create", cred, &spec.name)?;
                }
                Ok(id)
            },
        )?;
        self.resolve_file_by_id(id)
    }

    /// Create a batch of logical files in **one** transaction — the bulk
    /// mutation behind the binary protocol's `createFiles` op (and the
    /// SOAP op of the same name). All-or-nothing: every spec is
    /// validated, authorized and type-checked up front, then all file
    /// rows, attribute rows and audit records commit as a single unit —
    /// the first failing spec aborts the whole batch with its error.
    /// Results come back in input order.
    pub fn create_files(&self, cred: &Credential, specs: &[FileSpec]) -> Result<Vec<LogicalFile>> {
        // Phase 1 (outside the transaction): per-spec validation,
        // collection resolution + authorization, attribute type-checks.
        struct Checked<'a> {
            spec: &'a FileSpec,
            version: i64,
            collection_id: Option<i64>,
            attr_rows: Vec<[Value; 10]>,
        }
        let mut checked = Vec::with_capacity(specs.len());
        for spec in specs {
            validate_name(&spec.name)?;
            let collection_id = match &spec.collection {
                Some(cname) => {
                    let c = self.resolve_collection(cname)?;
                    self.require_collection_perm(cred, &c, Permission::Write)?;
                    Some(c.id)
                }
                None => {
                    self.require_service_perm(cred, Permission::Write)?;
                    None
                }
            };
            let attr_rows: Vec<[Value; 10]> = spec
                .attributes
                .iter()
                .map(|a| self.attr_row_values(ObjectType::File, a))
                .collect::<Result<_>>()?;
            checked.push(Checked {
                spec,
                version: spec.version.unwrap_or(1),
                collection_id,
                attr_rows,
            });
        }

        let now = self.now();
        // Phase 2: one transaction for the whole batch — N file rows, all
        // their attribute rows and audit records, one commit (one fsync
        // under `Durability::Always`, which is where the bulk op's win
        // over N createFile round-trips comes from).
        let ids = self.db.transaction(
            &[
                ("audit_log", Access::Write),
                ("logical_files", Access::Write),
                ("user_attributes", Access::Write),
            ],
            |s| {
                let mut ids = Vec::with_capacity(checked.len());
                for c in &checked {
                    let spec = c.spec;
                    let res = s.execute_prepared(
                        &self.stmts.ins_file,
                        &[
                            spec.name.as_str().into(),
                            c.version.into(),
                            opt_str(&spec.data_type),
                            true.into(),
                            c.collection_id.map_or(Value::Null, Value::from),
                            opt_str(&spec.container_id),
                            opt_str(&spec.container_service),
                            cred.dn.as_str().into(),
                            now.clone(),
                            opt_str(&spec.master_copy),
                            spec.audit.into(),
                        ],
                    );
                    let res = match res {
                        Err(relstore::Error::UniqueViolation { .. }) => {
                            return Err(McsError::AlreadyExists(format!(
                                "{}.v{}",
                                spec.name, c.version
                            )))
                        }
                        other => other?,
                    };
                    let id = res
                        .last_insert_id
                        .ok_or_else(|| McsError::Internal("no insert id".into()))?;
                    for (i, vals) in c.attr_rows.iter().enumerate() {
                        let mut params: Vec<Value> = Vec::with_capacity(10);
                        params.push(ObjectType::File.code().into());
                        params.push(id.into());
                        params.extend(vals[2..].iter().cloned());
                        if let Err(e) = s.execute_prepared(&self.stmts.ins_attr, &params) {
                            return Err(if matches!(e, relstore::Error::UniqueViolation { .. }) {
                                McsError::BadAttribute(format!(
                                    "duplicate attribute `{}`",
                                    spec.attributes[i].name
                                ))
                            } else {
                                e.into()
                            });
                        }
                    }
                    if spec.audit {
                        self.audit_action_in(s, ObjectType::File, id, "create", cred, &spec.name)?;
                    }
                    ids.push(id);
                }
                Ok(ids)
            },
        )?;
        ids.into_iter().map(|id| self.resolve_file_by_id(id)).collect()
    }

    /// Delete a logical file (paper API: "Deleting a logical file").
    /// Removes its attributes, annotations, history, ACEs and view
    /// memberships. Requires Delete.
    pub fn delete_file(&self, cred: &Credential, name: &str) -> Result<()> {
        let f = self.resolve_file(name)?;
        self.delete_file_record(cred, &f)
    }

    /// Delete a specific version of a logical file.
    pub fn delete_file_version(&self, cred: &Credential, name: &str, version: i64) -> Result<()> {
        let f = self.resolve_file_version(name, version)?;
        self.delete_file_record(cred, &f)
    }

    fn delete_file_record(&self, cred: &Credential, f: &LogicalFile) -> Result<()> {
        self.require_file_perm(cred, f, Permission::Delete)?;
        // The file row and every dependent row (attributes, annotations,
        // history, ACEs, view memberships) go in one transaction: a crash
        // at any statement boundary leaves either the whole file or none
        // of it — never orphaned dependents.
        self.db.transaction(
            &[
                ("acl_entries", Access::Write),
                ("annotations", Access::Write),
                ("audit_log", Access::Write),
                ("logical_files", Access::Write),
                ("transformation_history", Access::Write),
                ("user_attributes", Access::Write),
                ("view_members", Access::Write),
            ],
            |s| {
                if f.audit_enabled {
                    self.audit_action_in(s, ObjectType::File, f.id, "delete", cred, &f.name)?;
                }
                s.execute_prepared(&self.stmts.del_file_by_id, &[f.id.into()])?;
                s.execute_prepared(
                    &self.stmts.del_attrs_obj,
                    &[ObjectType::File.code().into(), f.id.into()],
                )?;
                s.execute_prepared(
                    &self.stmts.del_annot_obj,
                    &[ObjectType::File.code().into(), f.id.into()],
                )?;
                s.execute_prepared(&self.stmts.del_hist_file, &[f.id.into()])?;
                s.execute_prepared(
                    &self.stmts.del_acl_obj,
                    &[ObjectType::File.code().into(), f.id.into()],
                )?;
                s.execute_prepared(
                    &self.stmts.del_view_member,
                    &[ObjectType::File.code().into(), f.id.into()],
                )?;
                Ok(())
            },
        )
    }

    /// Fetch a file's predefined ("static") metadata by logical name
    /// (paper API: "Querying the static attributes of a logical object").
    pub fn get_file(&self, cred: &Credential, name: &str) -> Result<LogicalFile> {
        let f = self.resolve_file(name)?;
        self.require_file_perm(cred, &f, Permission::Read)?;
        if f.audit_enabled {
            self.audit_action(ObjectType::File, f.id, "query", cred, &f.name)?;
        }
        Ok(f)
    }

    /// Fetch a specific version.
    pub fn get_file_version(
        &self,
        cred: &Credential,
        name: &str,
        version: i64,
    ) -> Result<LogicalFile> {
        let f = self.resolve_file_version(name, version)?;
        self.require_file_perm(cred, &f, Permission::Read)?;
        if f.audit_enabled {
            self.audit_action(ObjectType::File, f.id, "query", cred, &f.name)?;
        }
        Ok(f)
    }

    /// All versions of a logical name, ascending.
    pub fn get_file_versions(&self, cred: &Credential, name: &str) -> Result<Vec<LogicalFile>> {
        let rs = self.db.execute_prepared(&self.stmts.sel_file_versions, &[name.into()])?;
        let rows = rs.rows.expect("select");
        if rows.rows.is_empty() {
            return Err(McsError::NotFound(ObjectRef::File(name.to_owned())));
        }
        let mut out = Vec::with_capacity(rows.rows.len());
        for r in &rows.rows {
            let f = Self::file_from_row(r)?;
            self.require_file_perm(cred, &f, Permission::Read)?;
            out.push(f);
        }
        out.sort_by_key(|f| f.version);
        Ok(out)
    }

    /// Update predefined attributes of a file (paper API: "Modifying the
    /// attributes of a logical object"). Only data_type, valid,
    /// master_copy, container fields are modifiable here; user-defined
    /// attributes go through [`Mcs::set_attribute`].
    pub fn update_file(
        &self,
        cred: &Credential,
        name: &str,
        update: &FileUpdate,
    ) -> Result<LogicalFile> {
        let f = self.resolve_file(name)?;
        self.require_file_perm(cred, &f, Permission::Write)?;
        let mut sets: Vec<&str> = Vec::new();
        let mut params: Vec<Value> = Vec::new();
        if let Some(dt) = &update.data_type {
            sets.push("data_type = ?");
            params.push(dt.as_str().into());
        }
        if let Some(v) = update.valid {
            sets.push("valid = ?");
            params.push(v.into());
        }
        if let Some(mc) = &update.master_copy {
            sets.push("master_copy = ?");
            params.push(mc.as_str().into());
        }
        if let Some(c) = &update.container_id {
            sets.push("container_id = ?");
            params.push(c.as_str().into());
        }
        if let Some(cs) = &update.container_service {
            sets.push("container_service = ?");
            params.push(cs.as_str().into());
        }
        sets.push("last_modifier = ?");
        params.push(cred.dn.as_str().into());
        sets.push("last_modified = ?");
        params.push(self.now());
        params.push(f.id.into());
        let sql = format!("UPDATE logical_files SET {} WHERE id = ?", sets.join(", "));
        self.db.transaction(
            &[("audit_log", Access::Write), ("logical_files", Access::Write)],
            |s| {
                s.execute(&sql, &params)?;
                if f.audit_enabled {
                    self.audit_action_in(s, ObjectType::File, f.id, "modify", cred, &f.name)?;
                }
                Ok::<_, McsError>(())
            },
        )?;
        self.resolve_file_by_id(f.id)
    }

    /// Mark a file invalid (the paper's quick-invalidation use case for
    /// the `valid` attribute).
    pub fn invalidate_file(&self, cred: &Credential, name: &str) -> Result<()> {
        self.update_file(cred, name, &FileUpdate { valid: Some(false), ..Default::default() })?;
        Ok(())
    }

    // ---------- logical collections ----------

    /// Create a logical collection (paper API: "Creating a ...
    /// collection"). Top-level creation requires service Write; nesting
    /// requires Write on the parent.
    pub fn create_collection(
        &self,
        cred: &Credential,
        name: &str,
        parent: Option<&str>,
        description: &str,
    ) -> Result<Collection> {
        validate_name(name)?;
        let parent_id = match parent {
            Some(p) => {
                let pc = self.resolve_collection(p)?;
                self.require_collection_perm(cred, &pc, Permission::Write)?;
                Some(pc.id)
            }
            None => {
                self.require_service_perm(cred, Permission::Write)?;
                None
            }
        };
        let id = self.db.transaction(&[("logical_collections", Access::Write)], |s| {
            let res = s.execute_prepared(
                &self.stmts.ins_coll,
                &[
                    name.into(),
                    description.into(),
                    parent_id.map_or(Value::Null, Value::Int),
                    cred.dn.as_str().into(),
                    self.now(),
                ],
            );
            let res = match res {
                Err(relstore::Error::UniqueViolation { .. }) => {
                    return Err(McsError::AlreadyExists(name.to_owned()))
                }
                other => other?,
            };
            res.last_insert_id.ok_or_else(|| McsError::Internal("no insert id".into()))
        })?;
        self.resolve_collection_by_id(id)
    }

    /// Delete a collection. It must be empty (no files, no
    /// subcollections) — the paper's tree model has no cascading delete.
    pub fn delete_collection(&self, cred: &Credential, name: &str) -> Result<()> {
        let c = self.resolve_collection(name)?;
        self.require_collection_perm(cred, &c, Permission::Delete)?;
        // The emptiness checks run inside the transaction — `logical_files`
        // is claimed for read — so a concurrent create_file into this
        // collection cannot slip between check and delete.
        self.db.transaction(
            &[
                ("acl_entries", Access::Write),
                ("annotations", Access::Write),
                ("audit_log", Access::Write),
                ("logical_collections", Access::Write),
                ("logical_files", Access::Read),
                ("user_attributes", Access::Write),
                ("view_members", Access::Write),
            ],
            |s| {
                let files = s
                    .execute_prepared(&self.stmts.files_in_coll, &[c.id.into()])?
                    .rows
                    .ok_or_else(|| McsError::Internal("file query returned no rows".into()))?;
                if !files.rows.is_empty() {
                    return Err(McsError::CollectionNotEmpty(name.to_owned()));
                }
                let kids = s
                    .execute_prepared(&self.stmts.count_subcolls, &[c.id.into()])?
                    .rows
                    .ok_or_else(|| McsError::Internal("child query returned no rows".into()))?;
                if kids.rows[0][0] != Value::Int(0) {
                    return Err(McsError::CollectionNotEmpty(name.to_owned()));
                }
                if c.audit_enabled {
                    self.audit_action_in(s, ObjectType::Collection, c.id, "delete", cred, &c.name)?;
                }
                s.execute_prepared(&self.stmts.del_coll_by_id, &[c.id.into()])?;
                let obj = [Value::Int(ObjectType::Collection.code()), Value::Int(c.id)];
                s.execute_prepared(&self.stmts.del_attrs_obj, &obj)?;
                s.execute_prepared(&self.stmts.del_annot_obj, &obj)?;
                s.execute_prepared(&self.stmts.del_acl_obj, &obj)?;
                s.execute_prepared(&self.stmts.del_view_member, &obj)?;
                Ok(())
            },
        )
    }

    /// Fetch a collection's record.
    pub fn get_collection(&self, cred: &Credential, name: &str) -> Result<Collection> {
        let c = self.resolve_collection(name)?;
        self.require_collection_perm(cred, &c, Permission::Read)?;
        if c.audit_enabled {
            self.audit_action(ObjectType::Collection, c.id, "query", cred, &c.name)?;
        }
        Ok(c)
    }

    /// Move a file into a collection (or out, with `None`). Enforces the
    /// at-most-one-collection rule of the data model.
    pub fn assign_collection(
        &self,
        cred: &Credential,
        file: &str,
        collection: Option<&str>,
    ) -> Result<()> {
        let f = self.resolve_file(file)?;
        self.require_file_perm(cred, &f, Permission::Write)?;
        let new_id = match collection {
            Some(cname) => {
                if let Some(cur) = f.collection_id {
                    let cur = self.resolve_collection_by_id(cur)?;
                    return Err(McsError::AlreadyInCollection {
                        file: f.name.clone(),
                        collection: cur.name,
                    });
                }
                let c = self.resolve_collection(cname)?;
                self.require_collection_perm(cred, &c, Permission::Write)?;
                Value::Int(c.id)
            }
            None => Value::Null,
        };
        self.db.execute_prepared(
            &self.stmts.upd_file_coll,
            &[new_id, cred.dn.as_str().into(), self.now(), f.id.into()],
        )?;
        Ok(())
    }
}

/// Partial update of a logical file's predefined attributes.
#[derive(Debug, Clone, Default)]
pub struct FileUpdate {
    /// New data type.
    pub data_type: Option<String>,
    /// New validity.
    pub valid: Option<bool>,
    /// New master-copy location.
    pub master_copy: Option<String>,
    /// New container id.
    pub container_id: Option<String>,
    /// New container service.
    pub container_service: Option<String>,
}

pub(crate) fn opt_str(s: &Option<String>) -> Value {
    match s {
        Some(s) => s.as_str().into(),
        None => Value::Null,
    }
}
