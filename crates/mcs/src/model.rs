//! Catalog data model: the logical objects of the paper's Figure 3
//! (logical files, logical collections, logical views) and the records the
//! MCS schema associates with them.

use std::fmt;

use relstore::{DateTime, Value, ValueType};

/// Kinds of catalogued objects. Numeric codes are what the database
/// stores in `object_type` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectType {
    /// A logical file.
    File = 0,
    /// A logical collection.
    Collection = 1,
    /// A logical view.
    View = 2,
    /// The service itself (for service-level permissions).
    Service = 3,
}

impl ObjectType {
    /// Database code.
    pub fn code(self) -> i64 {
        self as i64
    }

    /// Decode a database code.
    pub fn from_code(c: i64) -> Option<ObjectType> {
        match c {
            0 => Some(ObjectType::File),
            1 => Some(ObjectType::Collection),
            2 => Some(ObjectType::View),
            3 => Some(ObjectType::Service),
            _ => None,
        }
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObjectType::File => "logical file",
            ObjectType::Collection => "logical collection",
            ObjectType::View => "logical view",
            ObjectType::Service => "service",
        })
    }
}

/// Reference to an object by name, used in errors and the public API.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectRef {
    /// A logical file by name (version 1 implied unless multi-versioned).
    File(String),
    /// A specific version of a logical file.
    FileVersion(String, i64),
    /// A logical collection by name.
    Collection(String),
    /// A logical view by name.
    View(String),
    /// The service itself.
    Service,
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectRef::File(n) => write!(f, "logical file `{n}`"),
            ObjectRef::FileVersion(n, v) => write!(f, "logical file `{n}` version {v}"),
            ObjectRef::Collection(n) => write!(f, "logical collection `{n}`"),
            ObjectRef::View(n) => write!(f, "logical view `{n}`"),
            ObjectRef::Service => write!(f, "the metadata catalog service"),
        }
    }
}

/// Permissions on catalog objects (paper §3: add, modify, query, delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Query metadata / list contents.
    Read = 0,
    /// Add mappings or modify attributes. On the service object this is
    /// the right to create new top-level objects.
    Write = 1,
    /// Delete the object.
    Delete = 2,
    /// Change the object's ACL.
    Admin = 3,
}

impl Permission {
    /// Database code.
    pub fn code(self) -> i64 {
        self as i64
    }

    /// Decode a database code.
    pub fn from_code(c: i64) -> Option<Permission> {
        match c {
            0 => Some(Permission::Read),
            1 => Some(Permission::Write),
            2 => Some(Permission::Delete),
            3 => Some(Permission::Admin),
            _ => None,
        }
    }
}

/// Principal wildcard granting a permission to everyone.
pub const ANYONE: &str = "*";

/// A caller identity: a Grid Security Infrastructure distinguished name
/// plus community (CAS-style) group memberships. Wire-level X.509 is
/// deliberately out of scope (see DESIGN.md substitutions); the trust
/// decisions are the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Distinguished name, e.g. `/O=Grid/OU=ISI/CN=Ewa Deelman`.
    pub dn: String,
    /// Group principals this identity holds (from a community
    /// authorization service).
    pub groups: Vec<String>,
}

impl Credential {
    /// Credential with no group memberships.
    pub fn new(dn: impl Into<String>) -> Credential {
        Credential { dn: dn.into(), groups: Vec::new() }
    }

    /// Credential with groups.
    pub fn with_groups(
        dn: impl Into<String>,
        groups: impl IntoIterator<Item = impl Into<String>>,
    ) -> Credential {
        Credential { dn: dn.into(), groups: groups.into_iter().map(Into::into).collect() }
    }

    /// All principals this credential can act as (DN first, then groups).
    pub fn principals(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.dn.as_str()).chain(self.groups.iter().map(String::as_str))
    }
}

/// Types a user-defined attribute may have (paper §5: "string, float,
/// date, time and date/time"; §7's workload adds integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// String.
    Str = 0,
    /// Integer.
    Int = 1,
    /// Float.
    Float = 2,
    /// Date.
    Date = 3,
    /// Time of day.
    Time = 4,
    /// Date and time.
    DateTime = 5,
}

impl AttrType {
    /// Database code.
    pub fn code(self) -> i64 {
        self as i64
    }

    /// Decode a database code.
    pub fn from_code(c: i64) -> Option<AttrType> {
        match c {
            0 => Some(AttrType::Str),
            1 => Some(AttrType::Int),
            2 => Some(AttrType::Float),
            3 => Some(AttrType::Date),
            4 => Some(AttrType::Time),
            5 => Some(AttrType::DateTime),
            _ => None,
        }
    }

    /// The storage type backing this attribute type.
    pub fn value_type(self) -> ValueType {
        match self {
            AttrType::Str => ValueType::Str,
            AttrType::Int => ValueType::Int,
            AttrType::Float => ValueType::Float,
            AttrType::Date => ValueType::Date,
            AttrType::Time => ValueType::Time,
            AttrType::DateTime => ValueType::DateTime,
        }
    }

    /// Classify a value.
    pub fn of_value(v: &Value) -> Option<AttrType> {
        match v {
            Value::Str(_) => Some(AttrType::Str),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Date(_) => Some(AttrType::Date),
            Value::Time(_) => Some(AttrType::Time),
            Value::DateTime(_) => Some(AttrType::DateTime),
            Value::Null | Value::Bool(_) => None,
        }
    }
}

/// Definition of a user-defined attribute (name + type, registered once
/// per catalog so an application ontology is shared and type-checked).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDefinition {
    /// Attribute name, unique within the catalog.
    pub name: String,
    /// Value type.
    pub attr_type: AttrType,
    /// Free-text description.
    pub description: String,
}

/// One attribute value attached to an object.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Typed value.
    pub value: Value,
}

/// A logical file record (the predefined schema of paper §5).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalFile {
    /// Catalog id.
    pub id: i64,
    /// Logical file name, unique together with `version`.
    pub name: String,
    /// Version number (1 unless versioned).
    pub version: i64,
    /// Data format, e.g. `binary`, `XML`, `html`.
    pub data_type: Option<String>,
    /// Validity flag (a virtual organization may invalidate bad data).
    pub valid: bool,
    /// Owning collection id, if any (at most one, enforced).
    pub collection_id: Option<i64>,
    /// External container identifier.
    pub container_id: Option<String>,
    /// External container service locator.
    pub container_service: Option<String>,
    /// DN of the creator.
    pub creator: String,
    /// Creation time.
    pub created: DateTime,
    /// DN of the last modifier.
    pub last_modifier: Option<String>,
    /// Last modification time.
    pub last_modified: Option<DateTime>,
    /// Physical location of the master copy (for consistency services).
    pub master_copy: Option<String>,
    /// Whether accesses to this file's metadata are audited.
    pub audit_enabled: bool,
}

/// A logical collection record.
#[derive(Debug, Clone, PartialEq)]
pub struct Collection {
    /// Catalog id.
    pub id: i64,
    /// Collection name, unique.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Parent collection (collections form an acyclic tree).
    pub parent_id: Option<i64>,
    /// DN of the creator.
    pub creator: String,
    /// Creation time.
    pub created: DateTime,
    /// DN of the last modifier.
    pub last_modifier: Option<String>,
    /// Last modification time.
    pub last_modified: Option<DateTime>,
    /// Whether accesses are audited.
    pub audit_enabled: bool,
}

/// A logical view record.
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    /// Catalog id.
    pub id: i64,
    /// View name, unique.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// DN of the creator.
    pub creator: String,
    /// Creation time.
    pub created: DateTime,
    /// DN of the last modifier.
    pub last_modifier: Option<String>,
    /// Last modification time.
    pub last_modified: Option<DateTime>,
    /// Whether accesses are audited.
    pub audit_enabled: bool,
}

/// A member of a logical view (files, collections or other views — the
/// paper's "symbolic link" analogy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewMember {
    /// Member kind.
    pub member_type: ObjectType,
    /// Member id.
    pub member_id: i64,
}

/// An annotation attached to an object.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Annotated object kind.
    pub object_type: ObjectType,
    /// Annotated object id.
    pub object_id: i64,
    /// Annotation text.
    pub text: String,
    /// DN of the annotator.
    pub creator: String,
    /// When the annotation was made.
    pub created: DateTime,
}

/// One audit-trail record.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Object kind.
    pub object_type: ObjectType,
    /// Object id.
    pub object_id: i64,
    /// Action performed (`create`, `query`, `modify`, `delete`...).
    pub action: String,
    /// DN of the actor.
    pub actor: String,
    /// When.
    pub at: DateTime,
    /// Extra detail.
    pub details: String,
}

/// One creation/transformation-history record for a logical file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// The file.
    pub file_id: i64,
    /// Textual description of the transformation (paper §5: "the history
    /// is a textual description of these operations").
    pub description: String,
    /// DN of the actor.
    pub actor: String,
    /// When.
    pub at: DateTime,
}

/// A registered metadata writer (paper §5 "User metadata").
#[derive(Debug, Clone, PartialEq)]
pub struct UserRecord {
    /// Distinguished name.
    pub dn: String,
    /// Free-text description.
    pub description: String,
    /// Institution.
    pub institution: String,
    /// Contact e-mail.
    pub email: String,
    /// Contact phone.
    pub phone: String,
}

/// A pointer to an external metadata catalog (paper §5 "External catalog
/// metadata").
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalCatalog {
    /// Catalog name, unique.
    pub name: String,
    /// Catalog type, e.g. `relational database`, `MCAT`, `RepMec`.
    pub catalog_type: String,
    /// Host name where it can be reached.
    pub host: String,
    /// IP address.
    pub ip: String,
    /// Free-text description.
    pub description: String,
}

/// Request to create a logical file.
#[derive(Debug, Clone, Default)]
pub struct FileSpec {
    /// Logical name (required).
    pub name: String,
    /// Version (defaults to 1).
    pub version: Option<i64>,
    /// Data format.
    pub data_type: Option<String>,
    /// Collection to add the file to.
    pub collection: Option<String>,
    /// Container identifier.
    pub container_id: Option<String>,
    /// Container service locator.
    pub container_service: Option<String>,
    /// Master-copy physical location.
    pub master_copy: Option<String>,
    /// Enable per-access auditing for this file.
    pub audit: bool,
    /// User-defined attributes to attach at creation.
    pub attributes: Vec<Attribute>,
}

impl FileSpec {
    /// Spec with just a name.
    pub fn named(name: impl Into<String>) -> FileSpec {
        FileSpec { name: name.into(), ..FileSpec::default() }
    }

    /// Builder: attach an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> FileSpec {
        self.attributes.push(Attribute { name: name.into(), value: value.into() });
        self
    }

    /// Builder: put the file in a collection.
    pub fn in_collection(mut self, c: impl Into<String>) -> FileSpec {
        self.collection = Some(c.into());
        self
    }
}

/// Comparison operator in an attribute query predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// SQL LIKE pattern match (string attributes only).
    Like,
}

/// One predicate of an attribute-based (complex) query.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrPredicate {
    /// Attribute name.
    pub name: String,
    /// Comparison operator.
    pub op: AttrOp,
    /// Comparison value.
    pub value: Value,
}

impl AttrPredicate {
    /// Equality predicate.
    pub fn eq(name: impl Into<String>, value: impl Into<Value>) -> AttrPredicate {
        AttrPredicate { name: name.into(), op: AttrOp::Eq, value: value.into() }
    }
}

/// Validate an object name: non-empty, ≤255 bytes, no control characters.
pub fn validate_name(name: &str) -> crate::error::Result<()> {
    if name.is_empty() || name.len() > 255 || name.chars().any(char::is_control) {
        return Err(crate::error::McsError::InvalidName(name.to_owned()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for ot in [ObjectType::File, ObjectType::Collection, ObjectType::View, ObjectType::Service]
        {
            assert_eq!(ObjectType::from_code(ot.code()), Some(ot));
        }
        for p in [Permission::Read, Permission::Write, Permission::Delete, Permission::Admin] {
            assert_eq!(Permission::from_code(p.code()), Some(p));
        }
        for t in [
            AttrType::Str,
            AttrType::Int,
            AttrType::Float,
            AttrType::Date,
            AttrType::Time,
            AttrType::DateTime,
        ] {
            assert_eq!(AttrType::from_code(t.code()), Some(t));
        }
        assert_eq!(ObjectType::from_code(99), None);
    }

    #[test]
    fn attr_type_of_value() {
        assert_eq!(AttrType::of_value(&Value::Int(1)), Some(AttrType::Int));
        assert_eq!(AttrType::of_value(&Value::from("x")), Some(AttrType::Str));
        assert_eq!(AttrType::of_value(&Value::Null), None);
        assert_eq!(AttrType::of_value(&Value::Bool(true)), None);
    }

    #[test]
    fn credential_principals() {
        let c = Credential::with_groups("/CN=a", ["g1", "g2"]);
        let ps: Vec<&str> = c.principals().collect();
        assert_eq!(ps, vec!["/CN=a", "g1", "g2"]);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok_name.dat").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a\nb").is_err());
        assert!(validate_name(&"x".repeat(256)).is_err());
        assert!(validate_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn file_spec_builder() {
        let s = FileSpec::named("f").attr("band", 42i64).in_collection("c");
        assert_eq!(s.name, "f");
        assert_eq!(s.attributes.len(), 1);
        assert_eq!(s.collection.as_deref(), Some("c"));
    }
}
