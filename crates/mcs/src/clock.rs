//! Injectable time source so catalog timestamps are deterministic in tests.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use relstore::DateTime;

/// A source of "now" for created/modified/audit timestamps.
pub trait Clock: Send + Sync {
    /// Current wall-clock time.
    fn now(&self) -> DateTime;
}

/// The real system clock.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> DateTime {
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        DateTime::from_seconds_from_epoch(secs)
    }
}

/// A manually-advanced clock for tests; starts at the paper's publication
/// week (SC'03, November 15 2003) because every timestamp has to start
/// somewhere.
#[derive(Debug)]
pub struct ManualClock {
    epoch_secs: AtomicI64,
}

impl Default for ManualClock {
    fn default() -> Self {
        // 2003-11-15 00:00:00 UTC
        ManualClock { epoch_secs: AtomicI64::new(1_068_854_400) }
    }
}

impl ManualClock {
    /// Clock starting at the given epoch second.
    pub fn starting_at(secs: i64) -> ManualClock {
        ManualClock { epoch_secs: AtomicI64::new(secs) }
    }

    /// Advance by `secs` seconds.
    pub fn advance(&self, secs: i64) {
        self.epoch_secs.fetch_add(secs, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> DateTime {
        DateTime::from_seconds_from_epoch(self.epoch_secs.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::default();
        let t0 = c.now();
        c.advance(3600);
        let t1 = c.now();
        assert!(t1 > t0);
        assert_eq!(t1.seconds_from_epoch() - t0.seconds_from_epoch(), 3600);
    }

    #[test]
    fn manual_clock_default_is_sc03() {
        let c = ManualClock::default();
        let t = c.now();
        assert_eq!(t.date.year, 2003);
        assert_eq!(t.date.month, 11);
        assert_eq!(t.date.day, 15);
    }

    #[test]
    fn system_clock_is_sane() {
        let t = SystemClock.now();
        assert!(t.date.year >= 2024);
    }
}
