//! Community Authorization Service integration — paper §5/§9.
//!
//! The paper's design "modeled integration of the MCS with the Community
//! Authorization Service \[8\]" but left it unimplemented. Here it is: a
//! [`CommunityAuthorizationService`] manages group membership for a
//! virtual organization and issues signed assertions; an MCS that has
//! been told to trust a community (by a service admin) accepts those
//! assertions and turns them into credentials carrying community-scoped
//! group principals, which the ordinary ACL machinery then matches.
//!
//! The signature is a keyed hash, not real cryptography — the same
//! substitution as the DN-based GSI model (see DESIGN.md): what's
//! reproduced is the *trust flow* (user → CAS → assertion → MCS), not
//! the X.509 mechanics.

use std::collections::{BTreeSet, HashMap};

use parking_lot::RwLock;

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::{Credential, Permission};

/// A community's group-membership authority.
pub struct CommunityAuthorizationService {
    community: String,
    secret: u64,
    members: RwLock<HashMap<String, BTreeSet<String>>>,
}

/// A signed statement: "`dn` holds `groups` in `community`".
#[derive(Debug, Clone, PartialEq)]
pub struct CasAssertion {
    /// Community (virtual organization) name.
    pub community: String,
    /// Subject distinguished name.
    pub dn: String,
    /// Groups held, sorted.
    pub groups: Vec<String>,
    /// Keyed hash over (community, dn, groups).
    pub signature: u64,
}

fn keyed_hash(secret: u64, community: &str, dn: &str, groups: &[String]) -> u64 {
    let mut h = secret ^ 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(community.as_bytes());
    eat(dn.as_bytes());
    for g in groups {
        eat(g.as_bytes());
    }
    h
}

impl CommunityAuthorizationService {
    /// A CAS for `community` with a shared signing secret.
    pub fn new(community: impl Into<String>, secret: u64) -> CommunityAuthorizationService {
        CommunityAuthorizationService {
            community: community.into(),
            secret,
            members: RwLock::new(HashMap::new()),
        }
    }

    /// The community name.
    pub fn community(&self) -> &str {
        &self.community
    }

    /// Add `dn` to `group`.
    pub fn add_member(&self, dn: &str, group: &str) {
        self.members.write().entry(dn.to_owned()).or_default().insert(group.to_owned());
    }

    /// Remove `dn` from `group`; true if it was a member.
    pub fn remove_member(&self, dn: &str, group: &str) -> bool {
        let mut members = self.members.write();
        match members.get_mut(dn) {
            Some(gs) => {
                let was = gs.remove(group);
                if gs.is_empty() {
                    members.remove(dn);
                }
                was
            }
            None => false,
        }
    }

    /// Issue an assertion for `dn` (empty group list if unknown — a
    /// community member with no roles).
    pub fn issue(&self, dn: &str) -> CasAssertion {
        let groups: Vec<String> = self
            .members
            .read()
            .get(dn)
            .map(|g| g.iter().cloned().collect())
            .unwrap_or_default();
        CasAssertion {
            community: self.community.clone(),
            dn: dn.to_owned(),
            groups: groups.clone(),
            signature: keyed_hash(self.secret, &self.community, dn, &groups),
        }
    }
}

impl CasAssertion {
    /// Group principals this assertion grants, community-scoped
    /// (`ligo:scientists`), so two communities' same-named groups never
    /// collide in ACLs.
    pub fn scoped_groups(&self) -> Vec<String> {
        self.groups.iter().map(|g| format!("{}:{g}", self.community)).collect()
    }
}

impl Mcs {
    /// Trust a community's CAS (requires service Admin). Assertions from
    /// this community signed with `secret` will be accepted by
    /// [`Mcs::credential_from_assertion`].
    pub fn trust_community(&self, cred: &Credential, community: &str, secret: u64) -> Result<()> {
        self.require_service_perm(cred, Permission::Admin)?;
        self.cas_trust.write().insert(community.to_owned(), secret);
        Ok(())
    }

    /// Stop trusting a community (requires service Admin).
    pub fn revoke_community_trust(&self, cred: &Credential, community: &str) -> Result<()> {
        self.require_service_perm(cred, Permission::Admin)?;
        self.cas_trust.write().remove(community);
        Ok(())
    }

    /// Verify a CAS assertion against the trusted communities and build a
    /// credential carrying the community-scoped groups.
    pub fn credential_from_assertion(&self, assertion: &CasAssertion) -> Result<Credential> {
        let trust = self.cas_trust.read();
        let secret = trust.get(&assertion.community).ok_or_else(|| {
            McsError::PermissionDenied {
                principal: assertion.dn.clone(),
                needed: Permission::Read,
                object: crate::model::ObjectRef::Service,
            }
        })?;
        let expect = keyed_hash(*secret, &assertion.community, &assertion.dn, &assertion.groups);
        if expect != assertion.signature {
            return Err(McsError::PermissionDenied {
                principal: assertion.dn.clone(),
                needed: Permission::Read,
                object: crate::model::ObjectRef::Service,
            });
        }
        Ok(Credential { dn: assertion.dn.clone(), groups: assertion.scoped_groups() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileSpec, ObjectRef, Permission, ANYONE};
    use std::sync::Arc;

    fn setup() -> (Mcs, Credential, CommunityAuthorizationService) {
        let a = Credential::new("/CN=admin");
        let m = Mcs::with_options(
            &a,
            crate::schema::IndexProfile::Paper2003,
            Arc::new(crate::clock::ManualClock::default()),
        )
        .unwrap();
        let cas = CommunityAuthorizationService::new("ligo", 0xdead_beef);
        m.trust_community(&a, "ligo", 0xdead_beef).unwrap();
        (m, a, cas)
    }

    #[test]
    fn assertion_grants_group_access() {
        let (m, a, cas) = setup();
        m.create_file(&a, &FileSpec::named("f")).unwrap();
        m.grant(&a, &ObjectRef::File("f".into()), "ligo:scientists", Permission::Read).unwrap();
        cas.add_member("/CN=alice", "scientists");
        let alice = m.credential_from_assertion(&cas.issue("/CN=alice")).unwrap();
        assert!(m.get_file(&alice, "f").is_ok());
        // bob is in the community but not the group
        let bob = m.credential_from_assertion(&cas.issue("/CN=bob")).unwrap();
        assert!(m.get_file(&bob, "f").is_err());
    }

    #[test]
    fn forged_or_tampered_assertions_rejected() {
        let (m, _a, cas) = setup();
        cas.add_member("/CN=alice", "scientists");
        let mut forged = cas.issue("/CN=alice");
        forged.groups.push("admins".into()); // privilege escalation attempt
        assert!(m.credential_from_assertion(&forged).is_err());
        let mut wrong_sig = cas.issue("/CN=alice");
        wrong_sig.signature ^= 1;
        assert!(m.credential_from_assertion(&wrong_sig).is_err());
        // assertion from an untrusted community
        let other = CommunityAuthorizationService::new("esg", 0x1234);
        assert!(m.credential_from_assertion(&other.issue("/CN=alice")).is_err());
    }

    #[test]
    fn community_scoping_prevents_group_collisions() {
        let (m, a, ligo_cas) = setup();
        let esg_cas = CommunityAuthorizationService::new("esg", 0x5555);
        m.trust_community(&a, "esg", 0x5555).unwrap();
        m.create_file(&a, &FileSpec::named("f")).unwrap();
        // only LIGO's `scientists` group may read
        m.grant(&a, &ObjectRef::File("f".into()), "ligo:scientists", Permission::Read).unwrap();
        esg_cas.add_member("/CN=carol", "scientists"); // same bare group name!
        let carol = m.credential_from_assertion(&esg_cas.issue("/CN=carol")).unwrap();
        assert!(m.get_file(&carol, "f").is_err(), "esg:scientists must not match ligo:scientists");
        ligo_cas.add_member("/CN=dave", "scientists");
        let dave = m.credential_from_assertion(&ligo_cas.issue("/CN=dave")).unwrap();
        assert!(m.get_file(&dave, "f").is_ok());
    }

    #[test]
    fn membership_revocation_and_trust_revocation() {
        let (m, a, cas) = setup();
        m.create_file(&a, &FileSpec::named("f")).unwrap();
        m.grant(&a, &ObjectRef::File("f".into()), "ligo:ops", Permission::Read).unwrap();
        cas.add_member("/CN=eve", "ops");
        let eve1 = m.credential_from_assertion(&cas.issue("/CN=eve")).unwrap();
        assert!(m.get_file(&eve1, "f").is_ok());
        // CAS-side revocation: the next assertion no longer carries the group
        assert!(cas.remove_member("/CN=eve", "ops"));
        assert!(!cas.remove_member("/CN=eve", "ops"));
        let eve2 = m.credential_from_assertion(&cas.issue("/CN=eve")).unwrap();
        assert!(m.get_file(&eve2, "f").is_err());
        // MCS-side trust revocation: assertions stop verifying at all
        m.revoke_community_trust(&a, "ligo").unwrap();
        assert!(m.credential_from_assertion(&cas.issue("/CN=eve")).is_err());
    }

    #[test]
    fn only_admin_manages_trust() {
        let (m, a, _cas) = setup();
        let user = Credential::new("/CN=user");
        assert!(m.trust_community(&user, "x", 1).is_err());
        assert!(m.revoke_community_trust(&user, "ligo").is_err());
        // even a service-writer isn't enough
        m.insert_ace(crate::model::ObjectType::Service, 0, ANYONE, Permission::Write).unwrap();
        assert!(m.trust_community(&user, "x", 1).is_err());
        let _ = a;
    }
}
