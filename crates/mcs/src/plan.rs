//! Cost-based planning for conjunctive attribute queries.
//!
//! Under the [`IndexProfile::ValueIndexed`] profile every attribute type
//! has a composite `(name, value)` index, so each predicate of a
//! conjunction has up to three access paths:
//!
//! * a **point lookup** on the composite index (`=`),
//! * a **range scan** on the composite index (`<`, `<=`, `>`, `>=`, and
//!   `LIKE` patterns with a literal prefix),
//! * a **posting scan** of the attribute-name index `ua_name` (the 2003
//!   evaluation — walk every row carrying the name and compare values).
//!
//! [`plan_conjunction`] estimates the cardinality of each predicate with
//! a capped *index dive* (exact counts below [`DIVE_CAP`] entries, a
//! statistics extrapolation above it), seeds the candidate set from the
//! most selective one, and then decides per remaining predicate whether
//! to **intersect** (walk its own index entries) or evaluate it as a
//! **residual** (probe the unique `ua_object` index once per surviving
//! candidate) — whichever touches fewer rows. Estimates are advisory:
//! they pick the plan shape, never change answers.
//!
//! [`Mcs::with_planner_bypass`] disables the planner on the current
//! thread (and skips the read cache) so tests and benchmarks can compare
//! the planned evaluation against the naive posting-scan oracle on the
//! same store.
//!
//! [`IndexProfile::ValueIndexed`]: crate::schema::IndexProfile::ValueIndexed
//! [`DIVE_CAP`]: relstore::planner::DIVE_CAP

use std::cell::Cell;
use std::collections::HashSet;
use std::ops::Bound;

use relstore::planner::DIVE_CAP;
use relstore::predicate::like_match;
use relstore::{IndexKey, Table, Value};

use crate::catalog::Mcs;
use crate::error::{McsError, Result};
use crate::model::{AttrOp, AttrPredicate, AttrType, Credential, ObjectType, Permission};
use crate::schema::IndexProfile;

thread_local! {
    /// Per-thread planner bypass; see [`Mcs::with_planner_bypass`].
    static PLANNER_BYPASS: Cell<bool> = const { Cell::new(false) };
}

/// Whether this thread is inside a [`Mcs::with_planner_bypass`] scope.
/// Read by the query paths (to fall back to pure posting scans) and by
/// the scatter-gather fan-out, so a request-scoped bypass follows the
/// query onto every shard's worker thread.
pub(crate) fn bypass_active() -> bool {
    PLANNER_BYPASS.with(Cell::get)
}

/// The composite `(name, value)` index serving one attribute type.
pub(crate) fn value_index_name(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Str => "ua_name_str",
        AttrType::Int => "ua_name_int",
        AttrType::Float => "ua_name_float",
        AttrType::Date => "ua_name_date",
        AttrType::Time => "ua_name_time",
        AttrType::DateTime => "ua_name_datetime",
    }
}

/// Coerce the comparison literal the way the attribute store does:
/// integer literals compare against Float attributes as floats.
pub(crate) fn coerced_value(p: &AttrPredicate, ty: AttrType) -> Value {
    match (&p.value, ty) {
        (Value::Int(i), AttrType::Float) => Value::Float(*i as f64),
        (v, _) => v.clone(),
    }
}

/// An access path on the composite `(name, value)` index of a
/// predicate's type.
#[derive(Debug, Clone)]
pub(crate) enum Access {
    /// Full-key equality lookup: `(name, value)`.
    Point(Value),
    /// Range over the value column under the name prefix. `like` is set
    /// when the range came from a LIKE literal prefix and the full
    /// pattern must still be re-checked on each row.
    Range {
        /// Low bound on the value column.
        low: Bound<Value>,
        /// High bound on the value column.
        high: Bound<Value>,
        /// Residual LIKE match still required after the prefix range.
        like: bool,
    },
}

/// How one predicate participates in the plan.
#[derive(Debug, Clone)]
enum Role {
    /// Produce the initial candidate set from the composite index.
    SeedIndex(Access),
    /// Produce the initial candidate set from the `ua_name` posting
    /// list (no predicate in the conjunction is index-accessible).
    SeedPosting,
    /// Evaluate via the composite index and intersect.
    Intersect(Access),
    /// Filter surviving candidates with per-candidate `ua_object`
    /// probes instead of walking this predicate's own rows.
    Residual,
}

/// One planned evaluation step.
struct Step {
    /// Position in the caller's checked-predicate slice.
    pred: usize,
    role: Role,
    /// Estimated rows this step touches (index entries for seeds and
    /// intersections, surviving candidates for residuals).
    est: usize,
    /// Whether `est` came from an exact dive rather than statistics.
    exact: bool,
}

/// A compiled plan for a conjunction of attribute predicates.
pub(crate) struct AttrPlan {
    steps: Vec<Step>,
}

impl AttrPlan {
    /// Human-readable plan, one line per step (the `explain` surface —
    /// plan-shape tests pin these strings, so keep them stable).
    pub(crate) fn lines(&self, checked: &[(&AttrPredicate, AttrType)]) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| {
                let (p, ty) = checked[s.pred];
                let tilde = if s.exact { "" } else { "~" };
                match &s.role {
                    Role::SeedIndex(a) => format!(
                        "seed: {} {} via index {} {} ({tilde}{} rows)",
                        p.name,
                        op_sym(p.op),
                        value_index_name(ty),
                        a.shape(),
                        s.est
                    ),
                    Role::SeedPosting => format!(
                        "seed: {} {} via posting scan ua_name ({tilde}{} rows)",
                        p.name,
                        op_sym(p.op),
                        s.est
                    ),
                    Role::Intersect(a) => format!(
                        "intersect: {} {} via index {} {} ({tilde}{} rows)",
                        p.name,
                        op_sym(p.op),
                        value_index_name(ty),
                        a.shape(),
                        s.est
                    ),
                    Role::Residual => format!(
                        "residual: {} {} via ua_object probes (~{} candidates)",
                        p.name,
                        op_sym(p.op),
                        s.est
                    ),
                }
            })
            .collect()
    }
}

impl Access {
    fn shape(&self) -> &'static str {
        match self {
            Access::Point(_) => "eq",
            Access::Range { like: true, .. } => "prefix-range",
            Access::Range { .. } => "range",
        }
    }
}

fn op_sym(op: AttrOp) -> &'static str {
    match op {
        AttrOp::Eq => "=",
        AttrOp::Ne => "!=",
        AttrOp::Lt => "<",
        AttrOp::Le => "<=",
        AttrOp::Gt => ">",
        AttrOp::Ge => ">=",
        AttrOp::Like => "LIKE",
    }
}

/// The literal prefix of a LIKE pattern (characters before the first
/// wildcard). Empty when the pattern starts with a wildcard.
fn like_literal_prefix(pat: &str) -> String {
    pat.chars().take_while(|c| *c != '%' && *c != '_').collect()
}

/// Smallest string strictly greater than every string starting with `s`
/// (increment the last char, carrying left past unassignable code
/// points). `None` means no such string exists — the range is unbounded
/// above.
fn str_successor(s: &str) -> Option<String> {
    let mut chars: Vec<char> = s.chars().collect();
    while let Some(c) = chars.pop() {
        let mut u = c as u32 + 1;
        while u <= char::MAX as u32 {
            if let Some(next) = char::from_u32(u) {
                chars.push(next);
                return Some(chars.into_iter().collect());
            }
            u += 1;
        }
        // char::MAX in this position: drop it and carry into the
        // previous one.
    }
    None
}

/// The composite-index access path for one predicate, if it has one.
/// `Ne` never does (the matching rows are everything *but* one key);
/// `LIKE` only when the pattern has a literal prefix to range over.
pub(crate) fn access_for(p: &AttrPredicate, ty: AttrType, value: &Value) -> Option<Access> {
    let range = |low, high| Some(Access::Range { low, high, like: false });
    match p.op {
        AttrOp::Eq => Some(Access::Point(value.clone())),
        AttrOp::Ne => None,
        AttrOp::Lt => range(Bound::Unbounded, Bound::Excluded(value.clone())),
        AttrOp::Le => range(Bound::Unbounded, Bound::Included(value.clone())),
        AttrOp::Gt => range(Bound::Excluded(value.clone()), Bound::Unbounded),
        AttrOp::Ge => range(Bound::Included(value.clone()), Bound::Unbounded),
        AttrOp::Like => {
            if ty != AttrType::Str {
                return None; // callers type-check LIKE to Str already
            }
            let prefix = like_literal_prefix(value.as_str().ok()?);
            if prefix.is_empty() {
                return None;
            }
            let high = match str_successor(&prefix) {
                Some(s) => Bound::Excluded(Value::from(s.as_str())),
                None => Bound::Unbounded,
            };
            Some(Access::Range {
                low: Bound::Included(Value::from(prefix.as_str())),
                high,
                like: true,
            })
        }
    }
}

/// Estimate how many index entries `access` visits: an exact dive when
/// the count fits under [`DIVE_CAP`], otherwise the capped dive floor
/// widened by the table's statistics (range selectivity × this name's
/// posting count). Returns `(estimate, exact)`.
fn estimate(t: &Table, ty: AttrType, name: &str, access: &Access) -> Result<(usize, bool)> {
    let ix = t
        .index(value_index_name(ty))
        .ok_or_else(|| McsError::Internal(format!("missing index {}", value_index_name(ty))))?;
    Ok(match access {
        Access::Point(v) => {
            (ix.count_eq(&IndexKey(vec![Value::from(name), v.clone()])), true)
        }
        Access::Range { low, high, .. } => {
            let prefix = [Value::from(name)];
            let (n, capped) =
                ix.count_prefix_range(&prefix, low.as_ref(), high.as_ref(), DIVE_CAP);
            if !capped {
                (n, true)
            } else {
                let posting = t
                    .index("ua_name")
                    .map_or(n, |nx| nx.count_eq(&IndexKey(vec![Value::from(name)])));
                let sel = t.statistics().range_selectivity(ty.full_row_column());
                (((posting as f64 * sel) as usize).max(n), false)
            }
        }
    })
}

/// Build a plan for a conjunction of type-checked predicates. Pure
/// estimation — no candidate rows are touched.
pub(crate) fn plan_conjunction(
    t: &Table,
    checked: &[(&AttrPredicate, AttrType)],
) -> Result<AttrPlan> {
    struct Info {
        access: Option<Access>,
        est: usize,
        exact: bool,
        posting: usize,
    }
    let name_ix = t
        .index("ua_name")
        .ok_or_else(|| McsError::Internal("missing index ua_name".into()))?;
    let mut infos = Vec::with_capacity(checked.len());
    for (p, ty) in checked {
        let value = coerced_value(p, *ty);
        let access = access_for(p, *ty, &value);
        let posting = name_ix.count_eq(&IndexKey(vec![Value::from(p.name.as_str())]));
        let (est, exact) = match &access {
            Some(a) => estimate(t, *ty, &p.name, a)?,
            None => (posting, true),
        };
        infos.push(Info { access, est, exact, posting });
    }

    // Seed from the cheapest index-accessible predicate; when none is
    // accessible (all-`!=` conjunctions), from the smallest posting
    // list — never a full scan of rows that can't match.
    let seed = (0..infos.len())
        .filter(|&i| infos[i].access.is_some())
        .min_by_key(|&i| infos[i].est)
        .unwrap_or_else(|| {
            (0..infos.len()).min_by_key(|&i| infos[i].posting).expect("non-empty conjunction")
        });

    let mut steps = Vec::with_capacity(infos.len());
    let mut running = match infos[seed].access.clone() {
        Some(a) => {
            let (est, exact) = (infos[seed].est, infos[seed].exact);
            steps.push(Step { pred: seed, role: Role::SeedIndex(a), est, exact });
            est
        }
        None => {
            let est = infos[seed].posting;
            steps.push(Step { pred: seed, role: Role::SeedPosting, est, exact: true });
            est
        }
    };

    // Remaining predicates cheapest-first so the candidate set shrinks
    // as early as possible; each either walks its own index entries
    // (intersect) or probes `ua_object` once per surviving candidate
    // (residual) — whichever is estimated to touch fewer rows.
    let mut rest: Vec<usize> = (0..infos.len()).filter(|&i| i != seed).collect();
    rest.sort_by_key(|&i| infos[i].est);
    for i in rest {
        match infos[i].access.clone() {
            Some(a) if infos[i].est < running => {
                let (est, exact) = (infos[i].est, infos[i].exact);
                steps.push(Step { pred: i, role: Role::Intersect(a), est, exact });
                running = running.min(est);
            }
            _ => steps.push(Step { pred: i, role: Role::Residual, est: running, exact: false }),
        }
    }
    Ok(AttrPlan { steps })
}

impl Mcs {
    /// Run `f` with the cost-based attribute planner bypassed on this
    /// thread: conjunctive queries evaluate every predicate by a pure
    /// `ua_name` posting scan (the 2003 evaluation), and the read cache
    /// is skipped so the comparison measures real work. The flag is
    /// restored on exit, including across panics. Twin tests and the
    /// figure-17 A/B benchmark use this as the planner's oracle.
    pub fn with_planner_bypass<R>(&self, f: impl FnOnce(&Mcs) -> R) -> R {
        struct Restore(bool);
        impl Drop for Restore {
            fn drop(&mut self) {
                PLANNER_BYPASS.with(|b| b.set(self.0));
            }
        }
        let _restore = Restore(PLANNER_BYPASS.with(|b| b.replace(true)));
        f(self)
    }

    /// EXPLAIN for [`Mcs::query_by_attributes`]: the plan the cost-based
    /// planner would choose right now, one line per step, without
    /// executing it. Under the `Paper2003` profile (or a planner bypass)
    /// every predicate reports the posting scan it would run.
    pub fn explain_query(
        &self,
        cred: &Credential,
        preds: &[AttrPredicate],
    ) -> Result<Vec<String>> {
        self.require_service_perm(cred, Permission::Read)?;
        if preds.is_empty() {
            return Err(McsError::BadAttribute("query needs at least one predicate".into()));
        }
        let checked = self.check_predicates(preds)?;
        if self.profile != IndexProfile::ValueIndexed || bypass_active() {
            return Ok(checked
                .iter()
                .map(|(p, _)| format!("posting scan: {} {} via ua_name", p.name, op_sym(p.op)))
                .collect());
        }
        let handle = self.db.table("user_attributes")?;
        let t = handle.read();
        let plan = plan_conjunction(&t, &checked)?;
        Ok(plan.lines(&checked))
    }

    /// Execute a compiled plan, returning matching **file** object ids.
    pub(crate) fn run_attr_plan(
        &self,
        t: &Table,
        checked: &[(&AttrPredicate, AttrType)],
        plan: &AttrPlan,
    ) -> Result<HashSet<i64>> {
        let mut acc: Option<HashSet<i64>> = None;
        for step in &plan.steps {
            let (p, ty) = checked[step.pred];
            let value = coerced_value(p, ty);
            acc = Some(match (&step.role, acc) {
                (Role::SeedIndex(a), None) => self.eval_access(t, p, ty, &value, a)?,
                (Role::SeedPosting, None) => {
                    self.posting_scan(t, p, ty, ty.full_row_column(), &value)?
                }
                (Role::Intersect(a), Some(prev)) => {
                    let ids = self.eval_access(t, p, ty, &value, a)?;
                    prev.intersection(&ids).copied().collect()
                }
                (Role::Residual, Some(prev)) => self.residual_filter(t, prev, p, ty, &value)?,
                _ => return Err(McsError::Internal("malformed attribute plan".into())),
            });
            if acc.as_ref().is_some_and(HashSet::is_empty) {
                break;
            }
        }
        Ok(acc.unwrap_or_default())
    }

    /// Evaluate one access path on the composite index of `ty`,
    /// returning matching file object ids. Includes the MVCC stale-entry
    /// re-check and the residual LIKE match for prefix ranges.
    pub(crate) fn eval_access(
        &self,
        t: &Table,
        p: &AttrPredicate,
        ty: AttrType,
        value: &Value,
        access: &Access,
    ) -> Result<HashSet<i64>> {
        let ix = t.index(value_index_name(ty)).ok_or_else(|| {
            McsError::Internal(format!("missing index {}", value_index_name(ty)))
        })?;
        let name_val = Value::from(p.name.as_str());
        let ids: Vec<relstore::RowId> = match access {
            Access::Point(v) => ix.get_eq(&IndexKey(vec![name_val, v.clone()])).collect(),
            Access::Range { low, high, .. } => {
                ix.iter_prefix_range(vec![name_val], low.clone(), high.clone()).collect()
            }
        };
        let needs_like = matches!(access, Access::Range { like: true, .. });
        let val_col = ty.full_row_column();
        let mut out = HashSet::new();
        for id in ids {
            // Under MVCC a deleted row's index entries linger until
            // vacuum and a pending row is not yet visible — both read
            // back as `None` and are skipped. On the barrier engine a
            // dangling entry is a corruption signal.
            let Some(row) = relstore::snapshot_row(t, id) else {
                if t.is_mvcc() {
                    continue;
                }
                return Err(McsError::Internal("dangling index".into()));
            };
            if row[1] != Value::Int(ObjectType::File.code()) {
                continue;
            }
            if t.is_mvcc() {
                // Stale entries may describe a superseded image —
                // re-check the *full* predicate on what this snapshot
                // actually sees (this also covers the LIKE residual).
                if !matches!(&row[3], Value::Str(s) if s.as_ref() == p.name) {
                    continue;
                }
                let ok = match p.op {
                    AttrOp::Like => like_match(row[val_col].as_str()?, value.as_str()?),
                    op => row[val_col]
                        .sql_cmp(value)
                        .is_some_and(|ord| cmp_matches(op, ord)),
                };
                if !ok {
                    continue;
                }
            } else if needs_like && !like_match(row[val_col].as_str()?, value.as_str()?) {
                // The range only guaranteed the literal prefix; the
                // pattern's tail may still reject the row.
                continue;
            }
            out.insert(row[2].as_int()?);
        }
        Ok(out)
    }

    /// Residual evaluation: keep the candidates whose `(File, id, name)`
    /// attribute row — found via the unique `ua_object` index, one probe
    /// per candidate — satisfies the predicate. Same semantics as a
    /// posting scan: the attribute must exist on the file (so `!=`
    /// means "exists with a different value").
    fn residual_filter(
        &self,
        t: &Table,
        prev: HashSet<i64>,
        p: &AttrPredicate,
        ty: AttrType,
        value: &Value,
    ) -> Result<HashSet<i64>> {
        let ix = t
            .index("ua_object")
            .ok_or_else(|| McsError::Internal("missing index ua_object".into()))?;
        let val_col = ty.full_row_column();
        let file_code = Value::Int(ObjectType::File.code());
        let mut out = HashSet::with_capacity(prev.len());
        for oid in prev {
            let key =
                IndexKey(vec![file_code.clone(), Value::Int(oid), Value::from(p.name.as_str())]);
            for id in ix.get_eq(&key) {
                let Some(row) = relstore::snapshot_row(t, id) else {
                    if t.is_mvcc() {
                        continue;
                    }
                    return Err(McsError::Internal("dangling index".into()));
                };
                // Under MVCC the visible image may no longer match the
                // stale index key it was found through.
                if t.is_mvcc()
                    && (row[1] != file_code
                        || row[2] != Value::Int(oid)
                        || !matches!(&row[3], Value::Str(s) if s.as_ref() == p.name))
                {
                    continue;
                }
                let matched = match p.op {
                    AttrOp::Like => like_match(row[val_col].as_str()?, value.as_str()?),
                    op => row[val_col].sql_cmp(value).is_some_and(|ord| cmp_matches(op, ord)),
                };
                if matched {
                    out.insert(oid);
                }
                break; // at most one image of (file, name) is visible
            }
        }
        Ok(out)
    }

    /// Type-check one predicate against the attribute definitions,
    /// returning its declared type. Shared by every query entry point so
    /// all paths reject the same malformed predicates identically.
    pub(crate) fn check_predicate_type(&self, p: &AttrPredicate) -> Result<AttrType> {
        let def = self
            .attribute_definition(&p.name)?
            .ok_or_else(|| McsError::BadAttribute(format!("`{}` is not defined", p.name)))?;
        let given = AttrType::of_value(&p.value).ok_or_else(|| {
            McsError::BadAttribute(format!("`{}`: unsupported comparison value", p.name))
        })?;
        let ok =
            given == def.attr_type || (given == AttrType::Int && def.attr_type == AttrType::Float);
        if !ok {
            return Err(McsError::BadAttribute(format!(
                "`{}` is {:?}, got {given:?}",
                p.name, def.attr_type
            )));
        }
        if p.op == AttrOp::Like && def.attr_type != AttrType::Str {
            return Err(McsError::BadAttribute(format!(
                "LIKE requires a string attribute, `{}` is {:?}",
                p.name, def.attr_type
            )));
        }
        Ok(def.attr_type)
    }

    /// [`Mcs::check_predicate_type`] over a slice, preserving order.
    pub(crate) fn check_predicates<'p>(
        &self,
        preds: &'p [AttrPredicate],
    ) -> Result<Vec<(&'p AttrPredicate, AttrType)>> {
        preds.iter().map(|p| Ok((p, self.check_predicate_type(p)?))).collect()
    }
}

fn cmp_matches(op: AttrOp, ord: std::cmp::Ordering) -> bool {
    match op {
        AttrOp::Eq => ord.is_eq(),
        AttrOp::Ne => ord.is_ne(),
        AttrOp::Lt => ord.is_lt(),
        AttrOp::Le => ord.is_le(),
        AttrOp::Gt => ord.is_gt(),
        AttrOp::Ge => ord.is_ge(),
        AttrOp::Like => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_literal_prefix("run_%"), "run");
        assert_eq!(like_literal_prefix("H1%"), "H1");
        assert_eq!(like_literal_prefix("%suffix"), "");
        assert_eq!(like_literal_prefix("plain"), "plain");
    }

    #[test]
    fn str_successor_increments_last_char() {
        assert_eq!(str_successor("abc").as_deref(), Some("abd"));
        assert_eq!(str_successor("a\u{10FFFF}").as_deref(), Some("b"));
        assert_eq!(str_successor("\u{10FFFF}"), None);
        assert_eq!(str_successor(""), None);
    }

    #[test]
    fn successor_bounds_every_prefixed_string() {
        for p in ["run", "z", "a\u{10FFFF}"] {
            let succ = str_successor(p).unwrap();
            assert!(succ.as_str() > p);
            let extended = format!("{p}\u{10FFFF}\u{10FFFF}");
            assert!(extended.as_str() < succ.as_str(), "{extended:?} !< {succ:?}");
        }
    }
}
