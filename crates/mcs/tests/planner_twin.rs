//! Property test for the cost-based planner contract (DESIGN.md §7.6):
//! under the `ValueIndexed` profile, a conjunctive (or general boolean)
//! attribute query evaluated through the planner — composite-index
//! seeds, intersections, residual probes — must return exactly what the
//! naive per-predicate posting-scan evaluation returns on the same
//! catalog. Statistics and index dives choose the plan shape; they must
//! never change the answer.
//!
//! Each step either mutates the catalog or runs a random query twice —
//! once normally (planned) and once inside `with_planner_bypass` (the
//! posting-scan oracle) — and asserts byte-identical results. The whole
//! mix runs under three configurations: the default barrier engine, the
//! MVCC engine (stale index entries + vacuum), and a 4-shard catalog
//! (scatter-gather with bypass propagation onto pool threads).
//!
//! The driver is single-threaded so a seed replays the interleaving.
//! Deliberately hand-rolled xorshift PRNG: the property must not depend
//! on a test-only dependency. Reproduce a failure with
//! `MCS_PLANNER_SEED=<seed> cargo test -p mcs --test planner_twin`.

use std::fmt::Debug;
use std::sync::Arc;

use mcs::{
    AttrOp, AttrPredicate, AttrType, Attribute, Credential, FileSpec, IndexProfile, ManualClock,
    ObjectRef, QueryExpr, ShardedCatalog, StaticPredicate,
};
use relstore::Value;

/// xorshift64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn norm<T: Debug>(r: &mcs::Result<T>) -> String {
    format!("{r:?}")
}

fn file_name(i: u64) -> String {
    format!("f{i:02}.dat")
}

fn random_value(rng: &mut Rng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.below(6) as i64),
        AttrType::Str => Value::from(format!("s{}", rng.below(5)).as_str()),
        AttrType::Float => Value::Float(rng.below(5) as f64 / 2.0),
        _ => unreachable!("test uses int/str/float only"),
    }
}

/// A random predicate over the three defined attributes. LIKE patterns
/// (string attribute only) cover the planner's prefix-range path, the
/// posting fallback (leading wildcard), and exact-pattern corner cases.
fn random_pred(rng: &mut Rng) -> AttrPredicate {
    let (name, ty) = match rng.below(3) {
        0 => ("run", AttrType::Int),
        1 => ("site", AttrType::Str),
        _ => ("quality", AttrType::Float),
    };
    if ty == AttrType::Str && rng.below(4) == 0 {
        let pat = ["s%", "s1%", "%1", "s_", "s2", "_%"][rng.below(6) as usize];
        return AttrPredicate { name: name.into(), op: AttrOp::Like, value: pat.into() };
    }
    let op = match rng.below(6) {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Le,
        3 => AttrOp::Ge,
        4 => AttrOp::Lt,
        _ => AttrOp::Gt,
    };
    AttrPredicate { name: name.into(), op, value: random_value(rng, ty) }
}

/// A random boolean tree whose leaves only reference defined attributes
/// and existing collections, so both evaluation orders succeed and the
/// comparison is about answers, not error precedence.
fn random_expr(rng: &mut Rng, depth: u64) -> QueryExpr {
    match rng.below(if depth == 0 { 4 } else { 6 }) {
        0..=2 if depth < 2 => {
            let n = 2 + rng.below(2);
            let mut subs: Vec<QueryExpr> = (0..n).map(|_| random_expr(rng, depth + 1)).collect();
            if rng.below(4) == 0 {
                subs.push(QueryExpr::Static(StaticPredicate::InCollection(
                    format!("c{}", rng.below(2)),
                )));
            }
            if rng.below(2) == 0 {
                QueryExpr::And(subs)
            } else {
                QueryExpr::Or(subs)
            }
        }
        3 if depth > 0 && rng.below(3) == 0 => {
            QueryExpr::Not(Box::new(QueryExpr::Attr(random_pred(rng))))
        }
        _ => QueryExpr::Attr(random_pred(rng)),
    }
}

struct Config {
    tag: &'static str,
    shards: usize,
    mvcc: bool,
}

const CONFIGS: [Config; 3] = [
    Config { tag: "default", shards: 1, mvcc: false },
    Config { tag: "mvcc", shards: 1, mvcc: true },
    Config { tag: "sharded4", shards: 4, mvcc: false },
];

fn check_case(cfg: &Config, seed: u64) {
    eprintln!("planner_twin: config = {}, seed = {seed}", cfg.tag);
    let a = admin();
    let m = ShardedCatalog::in_memory_opts(
        cfg.shards,
        &a,
        IndexProfile::ValueIndexed,
        Arc::new(ManualClock::default()),
        None,
        cfg.mvcc,
    )
    .unwrap();
    m.define_attribute(&a, "run", AttrType::Int, "").unwrap();
    m.define_attribute(&a, "site", AttrType::Str, "").unwrap();
    m.define_attribute(&a, "quality", AttrType::Float, "").unwrap();
    m.create_collection(&a, "c0", None, "").unwrap();
    m.create_collection(&a, "c1", None, "").unwrap();

    let mut rng = Rng::new(seed);
    let mut queries = 0u32;
    for step in 0..400 {
        match rng.below(10) {
            // 0–2: create a file with random attributes (small name pool
            // → AlreadyExists churn), sometimes into a collection.
            0..=2 => {
                let mut spec = FileSpec::named(file_name(rng.below(40)));
                for _ in 0..rng.below(4) {
                    let p = random_pred(&mut rng);
                    if p.op == AttrOp::Like {
                        continue; // patterns are query-side only
                    }
                    spec = spec.attr(p.name, p.value);
                }
                if rng.below(3) == 0 {
                    spec = spec.in_collection(format!("c{}", rng.below(2)));
                }
                let _ = m.create_file(&a, &spec);
            }
            // 3: attribute churn — updates create superseded versions
            // whose stale index entries the planned paths must re-check.
            3 => {
                let obj = ObjectRef::File(file_name(rng.below(40)));
                if rng.below(3) == 0 {
                    let name = ["run", "site", "quality"][rng.below(3) as usize];
                    let _ = m.remove_attribute(&a, &obj, name);
                } else {
                    let p = random_pred(&mut rng);
                    if p.op != AttrOp::Like {
                        let _ = m.set_attribute(&a, &obj, &Attribute { name: p.name, value: p.value });
                    }
                }
            }
            // 4: delete or invalidate — dangling entries under MVCC.
            4 => {
                let f = file_name(rng.below(40));
                if rng.below(2) == 0 {
                    let _ = m.delete_file(&a, &f);
                } else {
                    let _ = m.invalidate_file(&a, &f);
                }
            }
            // 5: vacuum (MVCC reclamation mid-run; no-op elsewhere).
            5 => {
                for k in 0..m.shards() {
                    m.shard(k).database().vacuum();
                }
            }
            // 6–8: the conjunctive query, planned vs posting-scan twin.
            6..=8 => {
                let n = 1 + rng.below(4);
                let preds: Vec<AttrPredicate> = (0..n).map(|_| random_pred(&mut rng)).collect();
                let planned = norm(&m.query_by_attributes(&a, &preds));
                let naive =
                    m.with_planner_bypass(|m| norm(&m.query_by_attributes(&a, &preds)));
                assert_eq!(
                    planned, naive,
                    "config {} seed {seed} step {step}: planner diverged from \
                     posting-scan oracle on {preds:?}",
                    cfg.tag
                );
                // The explain surface must describe every predicate of a
                // well-formed conjunction without executing anything.
                let plan = m.explain_query(&a, &preds).unwrap();
                let body_lines = plan.iter().filter(|l| !l.starts_with("scatter")).count();
                assert_eq!(body_lines, preds.len(), "{plan:?}");
                queries += 1;
            }
            // 9: the general boolean query, same twin comparison.
            _ => {
                let q = random_expr(&mut rng, 0);
                let planned = norm(&m.general_query(&a, &q));
                let naive = m.with_planner_bypass(|m| norm(&m.general_query(&a, &q)));
                assert_eq!(
                    planned, naive,
                    "config {} seed {seed} step {step}: general query diverged on {q:?}",
                    cfg.tag
                );
                queries += 1;
            }
        }
    }
    assert!(queries >= 100, "op mix failed to exercise the twin: {queries} queries");
}

/// Random interleavings under several fixed seeds (or one from
/// `MCS_PLANNER_SEED`, for replaying a CI failure) across all three
/// configurations.
#[test]
fn planner_equals_posting_scan_oracle() {
    if let Some(seed) = std::env::var("MCS_PLANNER_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    {
        for cfg in &CONFIGS {
            check_case(cfg, seed);
        }
        return;
    }
    for cfg in &CONFIGS {
        for seed in [42, 0xBADC_0DE, 7_777_777] {
            check_case(cfg, seed);
        }
    }
}
