//! Behavioural tests for the Metadata Catalog Service: the full paper API
//! surface — files, collections, views, attributes, queries, policies.

use std::sync::Arc;

use mcs::*;
use relstore::{Date, Value};

fn admin() -> Credential {
    Credential::new("/O=Grid/OU=ISI/CN=admin")
}

fn setup() -> (Mcs, Credential) {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m = Mcs::with_options(&a, IndexProfile::Paper2003, clock).unwrap();
    (m, a)
}

/// Catalog with the LIGO-ish attribute ontology defined.
fn setup_with_attrs() -> (Mcs, Credential) {
    let (m, a) = setup();
    m.define_attribute(&a, "channel", AttrType::Str, "detector channel").unwrap();
    m.define_attribute(&a, "frequency", AttrType::Float, "center frequency Hz").unwrap();
    m.define_attribute(&a, "gps_start", AttrType::Int, "GPS start second").unwrap();
    m.define_attribute(&a, "run_date", AttrType::Date, "observation date").unwrap();
    (m, a)
}

// ---------------- logical files ----------------

#[test]
fn create_and_get_file_roundtrips_static_metadata() {
    let (m, a) = setup();
    let spec = FileSpec {
        name: "f1.gwf".into(),
        data_type: Some("binary".into()),
        master_copy: Some("gsiftp://ldas.ligo.caltech.edu/f1.gwf".into()),
        container_id: Some("tar-0007".into()),
        container_service: Some("http://containers.isi.edu".into()),
        ..Default::default()
    };
    let f = m.create_file(&a, &spec).unwrap();
    assert_eq!(f.version, 1);
    assert!(f.valid);
    assert_eq!(f.creator, a.dn);
    let got = m.get_file(&a, "f1.gwf").unwrap();
    assert_eq!(got, f);
    assert_eq!(got.data_type.as_deref(), Some("binary"));
    assert_eq!(got.master_copy.as_deref(), Some("gsiftp://ldas.ligo.caltech.edu/f1.gwf"));
    assert_eq!(got.container_id.as_deref(), Some("tar-0007"));
}

#[test]
fn duplicate_name_version_rejected() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    assert!(matches!(
        m.create_file(&a, &FileSpec::named("f")),
        Err(McsError::AlreadyExists(_))
    ));
    // same name, different version is fine
    m.create_file(&a, &FileSpec { version: Some(2), ..FileSpec::named("f") }).unwrap();
}

#[test]
fn versions_must_be_disambiguated() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.create_file(&a, &FileSpec { version: Some(2), ..FileSpec::named("f") }).unwrap();
    assert!(matches!(m.get_file(&a, "f"), Err(McsError::VersionConflict(_))));
    assert_eq!(m.get_file_version(&a, "f", 2).unwrap().version, 2);
    let versions = m.get_file_versions(&a, "f").unwrap();
    assert_eq!(versions.len(), 2);
    assert!(versions[0].version < versions[1].version);
}

#[test]
fn invalid_names_rejected() {
    let (m, a) = setup();
    assert!(matches!(m.create_file(&a, &FileSpec::named("")), Err(McsError::InvalidName(_))));
    assert!(m.create_file(&a, &FileSpec::named("a\tb")).is_err());
}

#[test]
fn update_file_fields_and_invalidate() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    let f = m
        .update_file(
            &a,
            "f",
            &FileUpdate { data_type: Some("XML".into()), ..Default::default() },
        )
        .unwrap();
    assert_eq!(f.data_type.as_deref(), Some("XML"));
    assert_eq!(f.last_modifier.as_deref(), Some(a.dn.as_str()));
    assert!(f.last_modified.is_some());
    m.invalidate_file(&a, "f").unwrap();
    assert!(!m.get_file(&a, "f").unwrap().valid);
}

#[test]
fn delete_file_removes_everything() {
    let (m, a) = setup_with_attrs();
    m.create_file(&a, &FileSpec::named("f").attr("channel", "H1")).unwrap();
    m.annotate(&a, &ObjectRef::File("f".into()), "nice data").unwrap();
    m.add_history(&a, "f", "calibrated v3").unwrap();
    m.delete_file(&a, "f").unwrap();
    assert!(matches!(m.get_file(&a, "f"), Err(McsError::NotFound(_))));
    // attribute rows must be gone: a fresh file with the same attrs works
    // and queries see nothing stale
    let hits = m.query_by_attributes(&a, &[AttrPredicate::eq("channel", "H1")]).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn missing_file_not_found() {
    let (m, a) = setup();
    assert!(matches!(m.get_file(&a, "ghost"), Err(McsError::NotFound(_))));
    assert!(matches!(m.delete_file(&a, "ghost"), Err(McsError::NotFound(_))));
}

// ---------------- collections ----------------

#[test]
fn collection_tree_and_listing() {
    let (m, a) = setup();
    m.create_collection(&a, "ligo", None, "top").unwrap();
    m.create_collection(&a, "ligo/s1", Some("ligo"), "science run 1").unwrap();
    m.create_file(&a, &FileSpec::named("f1").in_collection("ligo/s1")).unwrap();
    m.create_file(&a, &FileSpec::named("f2").in_collection("ligo/s1")).unwrap();
    let c = m.list_collection(&a, "ligo/s1").unwrap();
    assert_eq!(c.files, vec![("f1".to_string(), 1), ("f2".to_string(), 1)]);
    let top = m.list_collection(&a, "ligo").unwrap();
    assert_eq!(top.subcollections, vec!["ligo/s1"]);
    assert!(top.files.is_empty());
}

#[test]
fn file_belongs_to_at_most_one_collection() {
    let (m, a) = setup();
    m.create_collection(&a, "c1", None, "").unwrap();
    m.create_collection(&a, "c2", None, "").unwrap();
    m.create_file(&a, &FileSpec::named("f").in_collection("c1")).unwrap();
    let err = m.assign_collection(&a, "f", Some("c2"));
    assert!(matches!(err, Err(McsError::AlreadyInCollection { .. })));
    // removing from c1 then adding to c2 works
    m.assign_collection(&a, "f", None).unwrap();
    m.assign_collection(&a, "f", Some("c2")).unwrap();
    assert_eq!(m.list_collection(&a, "c2").unwrap().files.len(), 1);
}

#[test]
fn nonempty_collection_cannot_be_deleted() {
    let (m, a) = setup();
    m.create_collection(&a, "c", None, "").unwrap();
    m.create_file(&a, &FileSpec::named("f").in_collection("c")).unwrap();
    assert!(matches!(
        m.delete_collection(&a, "c"),
        Err(McsError::CollectionNotEmpty(_))
    ));
    m.delete_file(&a, "f").unwrap();
    m.delete_collection(&a, "c").unwrap();
    // parent with child collection also protected
    m.create_collection(&a, "p", None, "").unwrap();
    m.create_collection(&a, "p/k", Some("p"), "").unwrap();
    assert!(m.delete_collection(&a, "p").is_err());
}

#[test]
fn duplicate_collection_rejected() {
    let (m, a) = setup();
    m.create_collection(&a, "c", None, "").unwrap();
    assert!(matches!(
        m.create_collection(&a, "c", None, ""),
        Err(McsError::AlreadyExists(_))
    ));
}

// ---------------- views ----------------

#[test]
fn views_aggregate_and_list() {
    let (m, a) = setup();
    m.create_collection(&a, "c", None, "").unwrap();
    m.create_file(&a, &FileSpec::named("f1")).unwrap();
    m.create_file(&a, &FileSpec::named("f2").in_collection("c")).unwrap();
    m.create_view(&a, "pulsars", "interesting pulsar candidates").unwrap();
    m.add_to_view(&a, "pulsars", &ObjectRef::File("f1".into())).unwrap();
    m.add_to_view(&a, "pulsars", &ObjectRef::File("f2".into())).unwrap();
    m.add_to_view(&a, "pulsars", &ObjectRef::Collection("c".into())).unwrap();
    let v = m.list_view(&a, "pulsars").unwrap();
    assert_eq!(v.files, vec![("f1".to_string(), 1), ("f2".to_string(), 1)]);
    assert_eq!(v.collections, vec!["c"]);
    // files/collections may belong to many views
    m.create_view(&a, "other", "").unwrap();
    m.add_to_view(&a, "other", &ObjectRef::File("f1".into())).unwrap();
}

#[test]
fn view_membership_duplicates_and_removal() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.create_view(&a, "v", "").unwrap();
    let fref = ObjectRef::File("f".into());
    m.add_to_view(&a, "v", &fref).unwrap();
    assert!(matches!(m.add_to_view(&a, "v", &fref), Err(McsError::AlreadyExists(_))));
    assert!(m.remove_from_view(&a, "v", &fref).unwrap());
    assert!(!m.remove_from_view(&a, "v", &fref).unwrap());
}

#[test]
fn view_cycles_rejected() {
    let (m, a) = setup();
    m.create_view(&a, "v1", "").unwrap();
    m.create_view(&a, "v2", "").unwrap();
    m.create_view(&a, "v3", "").unwrap();
    m.add_to_view(&a, "v1", &ObjectRef::View("v2".into())).unwrap();
    m.add_to_view(&a, "v2", &ObjectRef::View("v3".into())).unwrap();
    // v3 -> v1 closes the loop
    assert!(matches!(
        m.add_to_view(&a, "v3", &ObjectRef::View("v1".into())),
        Err(McsError::CycleDetected(_))
    ));
    // self-membership
    assert!(matches!(
        m.add_to_view(&a, "v1", &ObjectRef::View("v1".into())),
        Err(McsError::CycleDetected(_))
    ));
}

#[test]
fn deleting_view_does_not_delete_members() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.create_view(&a, "v", "").unwrap();
    m.add_to_view(&a, "v", &ObjectRef::File("f".into())).unwrap();
    m.delete_view(&a, "v").unwrap();
    assert!(m.get_file(&a, "f").is_ok());
    assert!(matches!(m.list_view(&a, "v"), Err(McsError::NotFound(_))));
}

// ---------------- user-defined attributes ----------------

#[test]
fn attribute_definitions_enforced() {
    let (m, a) = setup_with_attrs();
    // undefined attribute
    let err = m.create_file(&a, &FileSpec::named("f").attr("nope", 1i64));
    assert!(matches!(err, Err(McsError::BadAttribute(_))));
    // wrong type
    let err = m.create_file(&a, &FileSpec::named("f").attr("channel", 42i64));
    assert!(matches!(err, Err(McsError::BadAttribute(_))));
    // failed create must not leave the file behind
    assert!(matches!(m.get_file(&a, "f"), Err(McsError::NotFound(_))));
    // redefinition with a different type
    assert!(m.define_attribute(&a, "channel", AttrType::Int, "").is_err());
    // idempotent same-type redefinition
    m.define_attribute(&a, "channel", AttrType::Str, "").unwrap();
    assert_eq!(m.attribute_definitions().unwrap().len(), 4);
}

#[test]
fn attributes_roundtrip_all_types() {
    let (m, a) = setup();
    m.define_attribute(&a, "s", AttrType::Str, "").unwrap();
    m.define_attribute(&a, "i", AttrType::Int, "").unwrap();
    m.define_attribute(&a, "x", AttrType::Float, "").unwrap();
    m.define_attribute(&a, "d", AttrType::Date, "").unwrap();
    m.define_attribute(&a, "t", AttrType::Time, "").unwrap();
    m.define_attribute(&a, "dt", AttrType::DateTime, "").unwrap();
    let spec = FileSpec::named("f")
        .attr("s", "hello")
        .attr("i", 42i64)
        .attr("x", 2.5f64)
        .attr("d", Value::Date(Date::new(2003, 11, 15).unwrap()))
        .attr("t", Value::parse_as("08:30:00", relstore::ValueType::Time).unwrap())
        .attr("dt", Value::parse_as("2003-11-15 08:30:00", relstore::ValueType::DateTime).unwrap());
    m.create_file(&a, &spec).unwrap();
    let attrs = m.get_attributes(&a, &ObjectRef::File("f".into())).unwrap();
    assert_eq!(attrs.len(), 6);
    let by_name = |n: &str| attrs.iter().find(|x| x.name == n).unwrap().value.clone();
    assert_eq!(by_name("s"), Value::from("hello"));
    assert_eq!(by_name("i"), Value::Int(42));
    assert_eq!(by_name("x"), Value::Float(2.5));
    assert!(matches!(by_name("d"), Value::Date(_)));
    assert!(matches!(by_name("t"), Value::Time(_)));
    assert!(matches!(by_name("dt"), Value::DateTime(_)));
}

#[test]
fn set_remove_attribute_upserts() {
    let (m, a) = setup_with_attrs();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    let fref = ObjectRef::File("f".into());
    m.set_attribute(&a, &fref, &Attribute { name: "channel".into(), value: "H1".into() })
        .unwrap();
    m.set_attribute(&a, &fref, &Attribute { name: "channel".into(), value: "L1".into() })
        .unwrap();
    assert_eq!(
        m.get_attribute(&a, &fref, "channel").unwrap().unwrap().value,
        Value::from("L1")
    );
    assert!(m.remove_attribute(&a, &fref, "channel").unwrap());
    assert!(!m.remove_attribute(&a, &fref, "channel").unwrap());
    assert!(m.get_attribute(&a, &fref, "channel").unwrap().is_none());
}

#[test]
fn int_widens_to_float_attribute() {
    let (m, a) = setup_with_attrs();
    m.create_file(&a, &FileSpec::named("f").attr("frequency", 100i64)).unwrap();
    let got = m.get_attribute(&a, &ObjectRef::File("f".into()), "frequency").unwrap().unwrap();
    assert_eq!(got.value, Value::Float(100.0));
}

#[test]
fn duplicate_attribute_in_spec_rejected_atomically() {
    let (m, a) = setup_with_attrs();
    let err =
        m.create_file(&a, &FileSpec::named("f").attr("channel", "H1").attr("channel", "L1"));
    assert!(matches!(err, Err(McsError::BadAttribute(_))));
    assert!(matches!(m.get_file(&a, "f"), Err(McsError::NotFound(_))));
}

#[test]
fn attributes_on_collections_and_views() {
    let (m, a) = setup_with_attrs();
    m.create_collection(&a, "c", None, "").unwrap();
    m.create_view(&a, "v", "").unwrap();
    let cref = ObjectRef::Collection("c".into());
    let vref = ObjectRef::View("v".into());
    m.set_attribute(&a, &cref, &Attribute { name: "channel".into(), value: "H1".into() })
        .unwrap();
    m.set_attribute(&a, &vref, &Attribute { name: "channel".into(), value: "L1".into() })
        .unwrap();
    assert_eq!(m.get_attributes(&a, &cref).unwrap().len(), 1);
    assert_eq!(m.get_attributes(&a, &vref).unwrap().len(), 1);
    // collection/view attributes never alias file queries
    let hits = m.query_by_attributes(&a, &[AttrPredicate::eq("channel", "H1")]).unwrap();
    assert!(hits.is_empty());
}

// ---------------- attribute-based queries ----------------

#[test]
fn complex_query_conjunction() {
    let (m, a) = setup_with_attrs();
    for (name, ch, f) in [("a", "H1", 10.0), ("b", "H1", 20.0), ("c", "L1", 10.0)] {
        m.create_file(&a, &FileSpec::named(name).attr("channel", ch).attr("frequency", f))
            .unwrap();
    }
    let hits = m
        .query_by_attributes(
            &a,
            &[AttrPredicate::eq("channel", "H1"), AttrPredicate::eq("frequency", 10.0f64)],
        )
        .unwrap();
    assert_eq!(hits, vec![("a".to_string(), 1)]);
}

#[test]
fn range_and_like_queries() {
    let (m, a) = setup_with_attrs();
    for (name, gps) in [("r1", 100i64), ("r2", 200), ("r3", 300)] {
        m.create_file(
            &a,
            &FileSpec::named(name).attr("gps_start", gps).attr("channel", format!("ch_{name}")),
        )
        .unwrap();
    }
    let ge = m
        .query_by_attributes(
            &a,
            &[AttrPredicate { name: "gps_start".into(), op: AttrOp::Ge, value: 200i64.into() }],
        )
        .unwrap();
    assert_eq!(ge.len(), 2);
    let lt = m
        .query_by_attributes(
            &a,
            &[AttrPredicate { name: "gps_start".into(), op: AttrOp::Lt, value: 200i64.into() }],
        )
        .unwrap();
    assert_eq!(lt, vec![("r1".to_string(), 1)]);
    let like = m
        .query_by_attributes(
            &a,
            &[AttrPredicate { name: "channel".into(), op: AttrOp::Like, value: "ch_r%".into() }],
        )
        .unwrap();
    assert_eq!(like.len(), 3);
    let ne = m
        .query_by_attributes(
            &a,
            &[AttrPredicate { name: "gps_start".into(), op: AttrOp::Ne, value: 200i64.into() }],
        )
        .unwrap();
    assert_eq!(ne.len(), 2);
}

#[test]
fn invalidated_files_are_not_discoverable() {
    let (m, a) = setup_with_attrs();
    m.create_file(&a, &FileSpec::named("f").attr("channel", "H1")).unwrap();
    m.invalidate_file(&a, "f").unwrap();
    let hits = m.query_by_attributes(&a, &[AttrPredicate::eq("channel", "H1")]).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn query_type_errors() {
    let (m, a) = setup_with_attrs();
    assert!(m.query_by_attributes(&a, &[]).is_err());
    assert!(m
        .query_by_attributes(&a, &[AttrPredicate::eq("undefined_attr", 1i64)])
        .is_err());
    assert!(m.query_by_attributes(&a, &[AttrPredicate::eq("channel", 1i64)]).is_err());
    // LIKE on a non-string attribute
    assert!(m
        .query_by_attributes(
            &a,
            &[AttrPredicate { name: "gps_start".into(), op: AttrOp::Like, value: "1%".into() }]
        )
        .is_err());
}

#[test]
fn value_indexed_profile_agrees_with_paper_profile() {
    let a = admin();
    let clock = Arc::new(ManualClock::default());
    let m1 = Mcs::with_options(&a, IndexProfile::Paper2003, clock.clone()).unwrap();
    let m2 = Mcs::with_options(&a, IndexProfile::ValueIndexed, clock).unwrap();
    for m in [&m1, &m2] {
        m.define_attribute(&a, "x", AttrType::Int, "").unwrap();
        m.define_attribute(&a, "s", AttrType::Str, "").unwrap();
        for i in 0..50i64 {
            m.create_file(
                &a,
                &FileSpec::named(format!("f{i}")).attr("x", i % 7).attr("s", format!("v{}", i % 3)),
            )
            .unwrap();
        }
    }
    for preds in [
        vec![AttrPredicate::eq("x", 3i64)],
        vec![AttrPredicate::eq("x", 3i64), AttrPredicate::eq("s", "v1")],
        vec![AttrPredicate { name: "x".into(), op: AttrOp::Ge, value: 5i64.into() }],
        vec![AttrPredicate { name: "x".into(), op: AttrOp::Ne, value: 5i64.into() }],
        vec![AttrPredicate { name: "x".into(), op: AttrOp::Lt, value: 2i64.into() }],
    ] {
        let h1 = m1.query_by_attributes(&a, &preds).unwrap();
        let h2 = m2.query_by_attributes(&a, &preds).unwrap();
        assert_eq!(h1, h2, "profiles disagree on {preds:?}");
    }
}

// ---------------- authorization ----------------

#[test]
fn unknown_user_is_denied() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    let stranger = Credential::new("/CN=stranger");
    assert!(matches!(
        m.get_file(&stranger, "f"),
        Err(McsError::PermissionDenied { .. })
    ));
    assert!(matches!(
        m.create_file(&stranger, &FileSpec::named("g")),
        Err(McsError::PermissionDenied { .. })
    ));
}

#[test]
fn collection_permission_unions_up_the_hierarchy() {
    let (m, a) = setup();
    m.create_collection(&a, "top", None, "").unwrap();
    m.create_collection(&a, "top/mid", Some("top"), "").unwrap();
    m.create_file(&a, &FileSpec::named("f").in_collection("top/mid")).unwrap();
    let user = Credential::new("/CN=reader");
    // grant Read on the *top* collection only
    m.grant(&a, &ObjectRef::Collection("top".into()), &user.dn, Permission::Read).unwrap();
    // effective permission reaches the file through two levels
    assert!(m.get_file(&user, "f").is_ok());
    // but write is still denied
    assert!(matches!(
        m.update_file(&user, "f", &FileUpdate::default()),
        Err(McsError::PermissionDenied { .. })
    ));
}

#[test]
fn group_principals_grant_access() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.grant(&a, &ObjectRef::File("f".into()), "ligo-scientists", Permission::Read).unwrap();
    let member = Credential::with_groups("/CN=alice", ["ligo-scientists"]);
    assert!(m.get_file(&member, "f").is_ok());
    let nonmember = Credential::new("/CN=bob");
    assert!(m.get_file(&nonmember, "f").is_err());
}

#[test]
fn anyone_wildcard_and_revoke() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.grant(&a, &ObjectRef::File("f".into()), ANYONE, Permission::Read).unwrap();
    let user = Credential::new("/CN=u");
    assert!(m.get_file(&user, "f").is_ok());
    m.revoke(&a, &ObjectRef::File("f".into()), ANYONE, Permission::Read).unwrap();
    assert!(m.get_file(&user, "f").is_err());
}

#[test]
fn only_admin_may_grant() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    let user = Credential::new("/CN=u");
    assert!(matches!(
        m.grant(&user, &ObjectRef::File("f".into()), &user.dn, Permission::Read),
        Err(McsError::PermissionDenied { .. })
    ));
    // delegated object admin can grant on that object
    m.grant(&a, &ObjectRef::File("f".into()), &user.dn, Permission::Admin).unwrap();
    m.grant(&user, &ObjectRef::File("f".into()), "/CN=other", Permission::Read).unwrap();
    let acl = m.acl(&user, &ObjectRef::File("f".into())).unwrap();
    assert!(acl.iter().any(|(p, perm)| p == "/CN=other" && *perm == Permission::Read));
}

#[test]
fn allow_anyone_opens_service() {
    let (m, a) = setup_with_attrs();
    m.allow_anyone(&a).unwrap();
    let user = Credential::new("/CN=u");
    m.create_file(&user, &FileSpec::named("f").attr("channel", "H1")).unwrap();
    assert_eq!(
        m.query_by_attributes(&user, &[AttrPredicate::eq("channel", "H1")]).unwrap().len(),
        1
    );
}

#[test]
fn views_do_not_confer_permissions_on_members() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.create_view(&a, "v", "").unwrap();
    m.add_to_view(&a, "v", &ObjectRef::File("f".into())).unwrap();
    let user = Credential::new("/CN=u");
    m.grant(&a, &ObjectRef::View("v".into()), &user.dn, Permission::Read).unwrap();
    // user can list the view...
    assert!(m.list_view(&user, "v").is_ok());
    // ...but still cannot read the member file (paper: views do not
    // affect authorization)
    assert!(matches!(m.get_file(&user, "f"), Err(McsError::PermissionDenied { .. })));
}

// ---------------- audit, annotations, history ----------------

#[test]
fn audit_trail_records_accesses() {
    let (m, a) = setup();
    let spec = FileSpec { audit: true, ..FileSpec::named("f") };
    m.create_file(&a, &spec).unwrap();
    m.get_file(&a, "f").unwrap();
    m.update_file(&a, "f", &FileUpdate { valid: Some(false), ..Default::default() }).unwrap();
    let trail = m.get_audit_trail(&a, &ObjectRef::File("f".into())).unwrap();
    let actions: Vec<&str> = trail.iter().map(|r| r.action.as_str()).collect();
    assert_eq!(actions, vec!["create", "query", "modify"]);
    assert!(trail.iter().all(|r| r.actor == a.dn));
}

#[test]
fn audit_disabled_by_default() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.get_file(&a, "f").unwrap();
    assert!(m.get_audit_trail(&a, &ObjectRef::File("f".into())).unwrap().is_empty());
    // flipping it on starts recording
    m.set_audit(&a, &ObjectRef::File("f".into()), true).unwrap();
    m.get_file(&a, "f").unwrap();
    assert_eq!(m.get_audit_trail(&a, &ObjectRef::File("f".into())).unwrap().len(), 1);
}

#[test]
fn annotations_roundtrip_with_timestamps() {
    let (m, a) = setup();
    let clock = Arc::new(ManualClock::default());
    let m2 = Mcs::with_options(&a, IndexProfile::Paper2003, clock.clone()).unwrap();
    let _ = m; // the default-clock catalog is unused here
    m2.create_file(&a, &FileSpec::named("f")).unwrap();
    m2.annotate(&a, &ObjectRef::File("f".into()), "first").unwrap();
    clock.advance(60);
    m2.annotate(&a, &ObjectRef::File("f".into()), "second").unwrap();
    let anns = m2.get_annotations(&a, &ObjectRef::File("f".into())).unwrap();
    assert_eq!(anns.len(), 2);
    assert_eq!(anns[0].text, "first");
    assert!(anns[0].created < anns[1].created);
    assert_eq!(anns[0].creator, a.dn);
}

#[test]
fn annotation_requires_only_read() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    let user = Credential::new("/CN=u");
    m.grant(&a, &ObjectRef::File("f".into()), &user.dn, Permission::Read).unwrap();
    m.annotate(&user, &ObjectRef::File("f".into()), "observed a glitch").unwrap();
    assert_eq!(m.get_annotations(&user, &ObjectRef::File("f".into())).unwrap().len(), 1);
}

#[test]
fn history_records_transformations() {
    let (m, a) = setup();
    m.create_file(&a, &FileSpec::named("f")).unwrap();
    m.add_history(&a, "f", "produced by pulsar-search --band 40-60Hz").unwrap();
    m.add_history(&a, "f", "recalibrated with v2 tables").unwrap();
    let h = m.get_history(&a, "f").unwrap();
    assert_eq!(h.len(), 2);
    assert!(h[0].description.contains("pulsar-search"));
}

// ---------------- users & external catalogs ----------------

#[test]
fn user_registry_upserts() {
    let (m, a) = setup();
    let u = UserRecord {
        dn: "/CN=ewa".into(),
        description: "workflow planner".into(),
        institution: "ISI".into(),
        email: "ewa@isi.edu".into(),
        phone: "+1".into(),
    };
    m.register_user(&a, &u).unwrap();
    m.register_user(&a, &UserRecord { institution: "USC/ISI".into(), ..u.clone() }).unwrap();
    let got = m.get_user(&a, "/CN=ewa").unwrap();
    assert_eq!(got.institution, "USC/ISI");
    assert_eq!(m.list_users(&a).unwrap().len(), 1);
}

#[test]
fn external_catalogs_registry() {
    let (m, a) = setup();
    let cat = ExternalCatalog {
        name: "mcat-sdsc".into(),
        catalog_type: "MCAT".into(),
        host: "srb.sdsc.edu".into(),
        ip: "132.249.1.1".into(),
        description: "SRB metadata catalog".into(),
    };
    m.register_external_catalog(&a, &cat).unwrap();
    assert!(matches!(
        m.register_external_catalog(&a, &cat),
        Err(McsError::AlreadyExists(_))
    ));
    let cats = m.list_external_catalogs(&a).unwrap();
    assert_eq!(cats.len(), 1);
    assert_eq!(cats[0].catalog_type, "MCAT");
}
