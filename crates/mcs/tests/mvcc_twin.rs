//! Property test for the MVCC engine contract (DESIGN.md §7.5): a
//! catalog opened with [`StoreConfig::with_mvcc`] and fed an operation
//! stream must be observationally identical to a barrier-engine catalog
//! fed the same stream — same answers, same errors, same audit trails —
//! even though reads traverse version chains instead of taking shared
//! barriers, deletes defer index cleanup to vacuum, and a background
//! vacuum thread reclaims versions mid-run.
//!
//! The driver is single-threaded so a seed replays the exact
//! interleaving. Deliberately hand-rolled xorshift PRNG: the property
//! must not depend on a test-only dependency being present. Reproduce a
//! failure with
//! `MCS_MVCC_SEED=<seed> cargo test -p mcs --test mvcc_twin`.

use std::fmt::Debug;
use std::path::PathBuf;
use std::sync::Arc;

use mcs::{
    AttrOp, AttrPredicate, AttrType, Attribute, Credential, FileSpec, FileUpdate, IndexProfile,
    ManualClock, Mcs, ObjectRef, QueryExpr, StoreConfig,
};
use relstore::Value;

/// xorshift64 — deterministic, seedable, no dependencies. Seed must be
/// non-zero (0 is mapped to a fixed constant).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mcs_mvcc_twin_{}_{tag}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Collapse a result to a comparable form: success payloads must match
/// exactly (both twins are single databases fed the same stream, so even
/// row ids agree), and failures must be the *same* failure.
fn norm<T: Debug>(r: &mcs::Result<T>) -> String {
    format!("{r:?}")
}

fn file_name(i: u64) -> String {
    format!("f{i:02}.dat")
}

fn coll_name(i: u64) -> String {
    format!("c{i}")
}

fn random_value(rng: &mut Rng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.below(5) as i64),
        AttrType::Str => Value::from(format!("s{}", rng.below(4)).as_str()),
        AttrType::Float => Value::Float(rng.below(4) as f64 / 2.0),
        _ => unreachable!("test uses int/str/float only"),
    }
}

fn random_pred(rng: &mut Rng) -> AttrPredicate {
    let (name, ty) = match rng.below(3) {
        0 => ("run", AttrType::Int),
        1 => ("site", AttrType::Str),
        _ => ("quality", AttrType::Float),
    };
    let op = match rng.below(5) {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Le,
        3 => AttrOp::Ge,
        _ => AttrOp::Lt,
    };
    AttrPredicate { name: name.into(), op, value: random_value(rng, ty) }
}

fn open_twin(dir: &std::path::Path, mvcc: bool) -> Mcs {
    let cfg = if mvcc { StoreConfig::default().with_mvcc() } else { StoreConfig::default() };
    Mcs::open_durable(
        dir,
        &admin(),
        IndexProfile::Paper2003,
        Arc::new(ManualClock::default()),
        cfg,
    )
    .unwrap()
}

fn check_case(seed: u64) {
    eprintln!("mvcc_twin: seed = {seed}");
    let a = admin();
    let dirs = [tmpdir("barrier"), tmpdir("mvcc")];
    let barrier = open_twin(&dirs[0], false);
    let mvcc = open_twin(&dirs[1], true);
    assert!(mvcc.database().is_mvcc());
    assert!(!barrier.database().is_mvcc());

    for m in [&barrier, &mvcc] {
        m.define_attribute(&a, "run", AttrType::Int, "").unwrap();
        m.define_attribute(&a, "site", AttrType::Str, "").unwrap();
        m.define_attribute(&a, "quality", AttrType::Float, "").unwrap();
    }

    let mut rng = Rng::new(seed);
    for step in 0..400 {
        let twins = [&barrier, &mvcc];
        let outcome: [String; 2] = match rng.below(14) {
            // 0–2: create a file (small name pool → AlreadyExists
            // collisions), sometimes into a collection.
            0..=2 => {
                let mut spec = FileSpec::named(file_name(rng.below(14)));
                for _ in 0..rng.below(3) {
                    let p = random_pred(&mut rng);
                    spec = spec.attr(p.name, p.value);
                }
                if rng.below(2) == 0 {
                    spec = spec.in_collection(coll_name(rng.below(3)));
                }
                twins.map(|m| norm(&m.create_file(&a, &spec)))
            }
            // 3: set/remove/read attributes — updates create versions and
            // (under MVCC) stale index entries the reads must not see.
            3..=4 => {
                let obj = ObjectRef::File(file_name(rng.below(14)));
                match rng.below(3) {
                    0 => {
                        let p = random_pred(&mut rng);
                        let attr = Attribute { name: p.name, value: p.value };
                        twins.map(|m| norm(&m.set_attribute(&a, &obj, &attr)))
                    }
                    1 => {
                        let name = ["run", "site", "quality"][rng.below(3) as usize];
                        twins.map(|m| norm(&m.remove_attribute(&a, &obj, name)))
                    }
                    _ => twins.map(|m| norm(&m.get_attributes(&a, &obj))),
                }
            }
            // 5: delete a file — deferred index cleanup under MVCC.
            5 => {
                let f = file_name(rng.below(14));
                twins.map(|m| norm(&m.delete_file(&a, &f)))
            }
            // 6: collection churn (multi-statement transactions).
            6 => {
                let c = coll_name(rng.below(3));
                if rng.below(2) == 0 {
                    twins.map(|m| norm(&m.create_collection(&a, &c, None, "").map(|c| c.name)))
                } else {
                    twins.map(|m| norm(&m.delete_collection(&a, &c)))
                }
            }
            // 7: move a file between collections — key churn in the
            // lf_collection index, exercising the stale-entry re-check.
            7 => {
                let f = file_name(rng.below(14));
                let c = coll_name(rng.below(3));
                let target = if rng.below(3) == 0 { None } else { Some(c.as_str()) };
                twins.map(|m| norm(&m.assign_collection(&a, &f, target)))
            }
            // 8: resolve a file (SQL select path).
            8 => {
                let f = file_name(rng.below(14));
                twins.map(|m| norm(&m.get_file(&a, &f)))
            }
            // 9: list a collection.
            9 => {
                let c = coll_name(rng.below(3));
                twins.map(|m| norm(&m.list_collection(&a, &c)))
            }
            // 10: update predefined attributes (UPDATE statements).
            10 => {
                let f = file_name(rng.below(14));
                let upd = FileUpdate {
                    valid: Some(rng.below(4) != 0),
                    data_type: Some(format!("t{}", rng.below(3))),
                    ..Default::default()
                };
                twins.map(|m| norm(&m.update_file(&a, &f, &upd)))
            }
            // 11: the general boolean query (raw scan paths).
            11 => {
                let q = QueryExpr::Attr(random_pred(&mut rng))
                    .or(QueryExpr::Attr(random_pred(&mut rng)).not());
                twins.map(|m| norm(&m.general_query(&a, &q)))
            }
            // 12: explicit vacuum on the MVCC twin (no-op on barrier) —
            // answers must be identical before and after reclamation.
            12 => {
                twins.map(|m| {
                    m.database().vacuum();
                    norm(&m.file_count())
                })
            }
            // 13: the complex conjunctive query.
            _ => {
                let n = 1 + rng.below(3);
                let preds: Vec<AttrPredicate> = (0..n).map(|_| random_pred(&mut rng)).collect();
                twins.map(|m| norm(&m.query_by_attributes(&a, &preds)))
            }
        };
        assert_eq!(
            outcome[0], outcome[1],
            "seed {seed} step {step}: MVCC catalog diverged from barrier-engine twin"
        );
    }

    // Audit trails must agree object by object, verbatim.
    for i in 0..14 {
        let obj = ObjectRef::File(file_name(i));
        let trails = [&barrier, &mvcc].map(|m| norm(&m.get_audit_trail(&a, &obj)));
        assert_eq!(trails[0], trails[1], "seed {seed}: audit trail diverged for {obj:?}");
    }

    // After a full vacuum (horizon = everything committed) the MVCC store
    // must pass the same physical integrity checks as the barrier store.
    mvcc.database().vacuum();
    for db in [barrier.database(), mvcc.database()] {
        for table in ["logical_files", "user_attributes", "logical_collections"] {
            db.table(table).unwrap().read().check_integrity().unwrap_or_else(|e| {
                panic!("seed {seed}: {table} failed integrity: {e}");
            });
        }
    }

    // The property is vacuous unless version chains actually formed.
    assert!(
        mvcc.database().wal_stats().versions_created_count() > 0,
        "seed {seed}: the op mix never created a superseded version"
    );

    drop(barrier);
    drop(mvcc);
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Random interleavings under several fixed seeds (or one from
/// `MCS_MVCC_SEED`, for replaying a CI failure).
#[test]
fn mvcc_catalog_equals_barrier_twin() {
    if let Some(seed) = std::env::var("MCS_MVCC_SEED").ok().and_then(|s| s.parse::<u64>().ok()) {
        check_case(seed);
        return;
    }
    for seed in [42, 0xDEAD_BEEF, 7, 1_000_003] {
        check_case(seed);
    }
}

/// The targeted snapshot-isolation contract at the catalog level: a
/// snapshot pinned *before* a commit never sees it, one pinned *after*
/// always does — regardless of when the read actually executes.
#[test]
fn snapshot_pinned_before_commit_never_sees_it() {
    let a = admin();
    let dir = tmpdir("pin");
    let m = open_twin(&dir, true);
    let db = Arc::clone(m.database());

    m.create_file(&a, &FileSpec::named("before.dat")).unwrap();
    let pin_before = db.pin_snapshot().expect("mvcc databases pin");
    m.create_file(&a, &FileSpec::named("after.dat")).unwrap();
    let pin_after = db.pin_snapshot().expect("mvcc databases pin");

    // Reads at the early snapshot never see the later commit, no matter
    // how long after it they run; reads at the later snapshot always do.
    let at = |epoch: u64| db.with_snapshot_at(epoch, || m.file_count().unwrap());
    assert_eq!(at(pin_before.epoch()), 1);
    assert_eq!(at(pin_after.epoch()), 2);
    let seen = db.with_snapshot_at(pin_before.epoch(), || {
        m.get_file(&a, "after.dat").is_ok()
    });
    assert!(!seen, "snapshot pinned before the commit saw it");
    assert!(db.with_snapshot_at(pin_after.epoch(), || m.get_file(&a, "after.dat").is_ok()));

    // The pins hold the vacuum horizon: with them dropped, vacuum may
    // reclaim and a fresh read sees the latest state.
    drop(pin_before);
    drop(pin_after);
    db.vacuum();
    assert_eq!(m.file_count().unwrap(), 2);

    drop(m);
    let _ = std::fs::remove_dir_all(dir);
}
