//! Plan-shape regression tests: `explain_query` pins the access path the
//! cost-based planner chooses for canonical conjunctions, so an
//! accidental cost-model change shows up as a readable string diff — plus
//! statistics edge cases (empty catalog, all-duplicate and NULL-heavy
//! columns, staleness after bulk deletes) that the estimates must survive
//! without panicking or mis-planning.

use std::sync::Arc;

use mcs::{
    AttrOp, AttrPredicate, AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs,
};
use relstore::Value;

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

fn catalog() -> Mcs {
    let a = admin();
    let m =
        Mcs::with_options(&a, IndexProfile::ValueIndexed, Arc::new(ManualClock::default()))
            .unwrap();
    m.define_attribute(&a, "run", AttrType::Int, "").unwrap();
    m.define_attribute(&a, "site", AttrType::Str, "").unwrap();
    m
}

/// `n` files; every file carries site = s<i % sites> and run = i.
fn load(m: &Mcs, n: usize, sites: usize) {
    let a = admin();
    for i in 0..n {
        m.create_file(
            &a,
            &FileSpec::named(format!("f{i:04}"))
                .attr("site", format!("s{}", i % sites))
                .attr("run", i as i64),
        )
        .unwrap();
    }
}

fn pred(name: &str, op: AttrOp, value: impl Into<Value>) -> AttrPredicate {
    AttrPredicate { name: name.into(), op, value: value.into() }
}

#[test]
fn selective_eq_seeds_unselective_eq_probes() {
    let m = catalog();
    load(&m, 60, 30); // site: 2 rows per value; run: unique
    let a = admin();
    let plan = m
        .explain_query(&a, &[pred("site", AttrOp::Eq, "s3"), pred("run", AttrOp::Eq, 3i64)])
        .unwrap();
    // run = 3 hits exactly one row — it seeds; site = s3 (2 rows) would
    // still cost an index walk ≥ the single survivor, so it probes.
    assert_eq!(
        plan,
        vec![
            "seed: run = via index ua_name_int eq (1 rows)".to_string(),
            "residual: site = via ua_object probes (~1 candidates)".to_string(),
        ]
    );
}

#[test]
fn broad_range_intersects_when_cheaper_than_probes() {
    let m = catalog();
    load(&m, 40, 2); // site: 20 rows per value; run: unique
    let a = admin();
    let plan = m
        .explain_query(
            &a,
            &[pred("site", AttrOp::Eq, "s0"), pred("run", AttrOp::Lt, 5i64)],
        )
        .unwrap();
    // run < 5 keeps 5 of 40 and seeds; site = s0 matches 20, dearer than
    // probing the 5 survivors.
    assert_eq!(
        plan,
        vec![
            "seed: run < via index ua_name_int range (5 rows)".to_string(),
            "residual: site = via ua_object probes (~5 candidates)".to_string(),
        ]
    );
    // Flip the selectivities: now the equality seeds and the wide range
    // is the residual.
    let plan = m
        .explain_query(
            &a,
            &[pred("site", AttrOp::Eq, "s0"), pred("run", AttrOp::Lt, 1_000i64)],
        )
        .unwrap();
    assert_eq!(
        plan,
        vec![
            "seed: site = via index ua_name_str eq (20 rows)".to_string(),
            "residual: run < via ua_object probes (~20 candidates)".to_string(),
        ]
    );
}

#[test]
fn ne_never_seeds_when_an_indexed_predicate_exists() {
    let m = catalog();
    load(&m, 50, 25);
    let a = admin();
    // Regression for the old behavior of scanning the full posting list
    // for the negated predicate: `!=` must ride as a residual probe off
    // the selective equality, not drive the evaluation.
    let plan = m
        .explain_query(&a, &[pred("run", AttrOp::Ne, 7i64), pred("site", AttrOp::Eq, "s3")])
        .unwrap();
    assert_eq!(
        plan,
        vec![
            "seed: site = via index ua_name_str eq (2 rows)".to_string(),
            "residual: run != via ua_object probes (~2 candidates)".to_string(),
        ]
    );
    // Alone, `!=` has no access path and falls back to its posting list.
    let plan = m.explain_query(&a, &[pred("run", AttrOp::Ne, 7i64)]).unwrap();
    assert_eq!(plan, vec!["seed: run != via posting scan ua_name (50 rows)".to_string()]);
}

#[test]
fn like_literal_prefix_ranges_the_composite_index() {
    let m = catalog();
    let a = admin();
    for i in 0..30 {
        m.create_file(
            &a,
            &FileSpec::named(format!("f{i:04}"))
                .attr("site", if i < 3 { format!("edge{i}") } else { format!("bulk{i}") }),
        )
        .unwrap();
    }
    // A literal prefix turns LIKE into a bounded range over
    // (name, value) — 3 rows, not the 30-row posting list.
    let plan = m.explain_query(&a, &[pred("site", AttrOp::Like, "edge%")]).unwrap();
    assert_eq!(
        plan,
        vec!["seed: site LIKE via index ua_name_str prefix-range (3 rows)".to_string()]
    );
    assert_eq!(
        m.query_by_attributes(&a, &[pred("site", AttrOp::Like, "edge%")]).unwrap().len(),
        3
    );
    // A leading wildcard has no usable prefix: posting scan.
    let plan = m.explain_query(&a, &[pred("site", AttrOp::Like, "%9")]).unwrap();
    assert_eq!(plan, vec!["seed: site LIKE via posting scan ua_name (30 rows)".to_string()]);
    // The pattern tail still filters inside the prefix range.
    assert_eq!(
        m.query_by_attributes(&a, &[pred("site", AttrOp::Like, "edge_")]).unwrap().len(),
        3
    );
    assert_eq!(
        m.query_by_attributes(&a, &[pred("site", AttrOp::Like, "edge1")]).unwrap().len(),
        1
    );
}

#[test]
fn paper2003_profile_keeps_posting_scans() {
    let a = admin();
    let m = Mcs::with_options(&a, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
        .unwrap();
    m.define_attribute(&a, "site", AttrType::Str, "").unwrap();
    let plan = m.explain_query(&a, &[pred("site", AttrOp::Eq, "s1")]).unwrap();
    assert_eq!(plan, vec!["posting scan: site = via ua_name".to_string()]);
}

#[test]
fn empty_catalog_plans_cleanly() {
    let m = catalog();
    let a = admin();
    // No rows anywhere: estimates are 0, nothing panics, the query is
    // answered (empty) through the same plan.
    let plan = m
        .explain_query(&a, &[pred("site", AttrOp::Eq, "s1"), pred("run", AttrOp::Ge, 2i64)])
        .unwrap();
    assert_eq!(plan.len(), 2);
    assert!(plan[0].contains("(0 rows)"), "{plan:?}");
    assert!(m
        .query_by_attributes(&a, &[pred("site", AttrOp::Eq, "s1")])
        .unwrap()
        .is_empty());
}

#[test]
fn all_duplicate_column_estimates_stay_exact() {
    let m = catalog();
    let a = admin();
    for i in 0..80 {
        m.create_file(
            &a,
            &FileSpec::named(format!("f{i:04}")).attr("site", "same").attr("run", i as i64),
        )
        .unwrap();
    }
    // Every site value identical: the eq dive reports the full 80 and
    // the planner correctly prefers the unique run attribute.
    let plan = m
        .explain_query(&a, &[pred("site", AttrOp::Eq, "same"), pred("run", AttrOp::Eq, 5i64)])
        .unwrap();
    assert_eq!(plan[0], "seed: run = via index ua_name_int eq (1 rows)");
    let hits = m
        .query_by_attributes(&a, &[pred("site", AttrOp::Eq, "same"), pred("run", AttrOp::Eq, 5i64)])
        .unwrap();
    assert_eq!(hits, vec![("f0005".to_string(), 1)]);
}

#[test]
fn null_heavy_value_columns_do_not_skew_ranges() {
    let m = catalog();
    let a = admin();
    // 90 string-attribute rows leave int_value NULL; 10 int rows carry
    // values. A range over `run` must see only the 10 real rows — in the
    // answer *and* in the estimate (NULLs sort below every value but
    // never satisfy a range).
    for i in 0..90 {
        m.create_file(&a, &FileSpec::named(format!("s{i:04}")).attr("site", format!("v{i}")))
            .unwrap();
    }
    for i in 0..10 {
        m.create_file(&a, &FileSpec::named(format!("i{i:04}")).attr("run", i as i64)).unwrap();
    }
    let plan = m.explain_query(&a, &[pred("run", AttrOp::Ge, 0i64)]).unwrap();
    assert_eq!(plan, vec!["seed: run >= via index ua_name_int range (10 rows)".to_string()]);
    assert_eq!(m.query_by_attributes(&a, &[pred("run", AttrOp::Ge, 0i64)]).unwrap().len(), 10);
}

#[test]
fn stats_stay_honest_after_bulk_delete() {
    let m = catalog();
    let a = admin();
    load(&m, 300, 3);
    m.database().analyze_table("user_attributes").unwrap();
    for i in 0..280 {
        m.delete_file(&a, &format!("f{i:04}")).unwrap();
    }
    // The analyzed snapshot is 280 writes stale, but plans come from
    // live index dives: estimates reflect the 20 surviving files, and
    // answers are exact.
    let plan = m.explain_query(&a, &[pred("site", AttrOp::Eq, "s0")]).unwrap();
    assert_eq!(plan, vec!["seed: site = via index ua_name_str eq (6 rows)".to_string()]);
    // The lazy re-analyze threshold has long been crossed; the next
    // statistics read rebuilds from the surviving rows (2 per file).
    let handle = m.database().table("user_attributes").unwrap();
    let stats = handle.read().statistics();
    assert_eq!(stats.analyzed_rows, 40);
}
