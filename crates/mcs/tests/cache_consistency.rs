//! Property test for the read-cache consistency contract (DESIGN.md
//! §7.3): under seeded random interleavings of file creates, attribute
//! writes, deletes, collection churn and queries, a **cached** catalog
//! must return exactly what an **uncached twin** fed the same operation
//! stream returns — at every step, for every operation, including
//! errors. The cache is deliberately tiny so eviction and refill are
//! exercised, not just warm hits.
//!
//! The driver is single-threaded so a seed replays the exact
//! interleaving. Deliberately hand-rolled xorshift PRNG: the property
//! must not depend on a test-only dependency being present. Reproduce a
//! failure with
//! `MCS_CACHE_SEED=<seed> cargo test -p mcs --test cache_consistency`.

use std::fmt::Debug;
use std::sync::Arc;

use mcs::{
    AttrOp, AttrPredicate, AttrType, Attribute, CacheConfig, Credential, FileSpec, IndexProfile,
    ManualClock, Mcs, ObjectRef,
};
use relstore::Value;

/// xorshift64 — deterministic, seedable, no dependencies. Seed must be
/// non-zero (0 is mapped to a fixed constant).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

/// Collapse a result to a comparable form: success payloads must match
/// exactly, and failures must be the *same* failure.
fn norm<T: Debug>(r: &mcs::Result<T>) -> String {
    format!("{r:?}")
}

fn file_name(i: u64) -> String {
    format!("f{i:02}.dat")
}

fn random_value(rng: &mut Rng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.below(5) as i64),
        AttrType::Str => Value::from(format!("s{}", rng.below(4)).as_str()),
        AttrType::Float => Value::Float(rng.below(4) as f64 / 2.0),
        _ => unreachable!("test uses int/str/float only"),
    }
}

fn random_pred(rng: &mut Rng) -> AttrPredicate {
    let (name, ty) = match rng.below(3) {
        0 => ("run", AttrType::Int),
        1 => ("site", AttrType::Str),
        _ => ("quality", AttrType::Float),
    };
    let op = match rng.below(5) {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Le,
        3 => AttrOp::Ge,
        _ => AttrOp::Lt,
    };
    AttrPredicate { name: name.into(), op, value: random_value(rng, ty) }
}

fn check_case(seed: u64, profile: IndexProfile) {
    eprintln!("cache_consistency: seed = {seed}, profile = {profile:?}");
    let a = admin();
    // Tiny cache: 16 entries across 2 shards, so steady-state operation
    // constantly evicts and refills.
    let cached = Mcs::with_options_cached(
        &a,
        profile,
        Arc::new(ManualClock::default()),
        CacheConfig { capacity: 16, shards: 2 },
    )
    .unwrap();
    let plain =
        Mcs::with_options(&a, profile, Arc::new(ManualClock::default())).unwrap();
    assert!(cached.cache_enabled() && !plain.cache_enabled());

    for (catalog, name, ty) in [
        (&cached, "run", AttrType::Int),
        (&plain, "run", AttrType::Int),
        (&cached, "site", AttrType::Str),
        (&plain, "site", AttrType::Str),
        (&cached, "quality", AttrType::Float),
        (&plain, "quality", AttrType::Float),
    ] {
        catalog.define_attribute(&a, name, ty, "").unwrap();
    }

    let mut rng = Rng::new(seed);
    for step in 0..400 {
        let twins: [&Mcs; 2] = [&cached, &plain];
        let outcome: [String; 2] = match rng.below(12) {
            // 0–2: create a file (small name pool → AlreadyExists races)
            0..=2 => {
                let mut spec = FileSpec::named(file_name(rng.below(12)));
                let n_attrs = rng.below(3);
                for _ in 0..n_attrs {
                    let p = random_pred(&mut rng);
                    spec = spec.attr(p.name, p.value);
                }
                twins.map(|m| norm(&m.create_file(&a, &spec)))
            }
            // 3–4: set an attribute on a (maybe missing) file
            3..=4 => {
                let obj = ObjectRef::File(file_name(rng.below(12)));
                let p = random_pred(&mut rng);
                let attr = Attribute { name: p.name, value: p.value };
                twins.map(|m| norm(&m.set_attribute(&a, &obj, &attr)))
            }
            // 5: remove an attribute
            5 => {
                let obj = ObjectRef::File(file_name(rng.below(12)));
                let name = ["run", "site", "quality"][rng.below(3) as usize];
                twins.map(|m| norm(&m.remove_attribute(&a, &obj, name)))
            }
            // 6: delete a file
            6 => {
                let f = file_name(rng.below(12));
                twins.map(|m| norm(&m.delete_file(&a, &f)))
            }
            // 7: collection churn (logical_collections writes)
            7 => {
                let c = format!("c{}", rng.below(3));
                if rng.below(2) == 0 {
                    twins.map(|m| norm(&m.create_collection(&a, &c, None, "")))
                } else {
                    twins.map(|m| norm(&m.delete_collection(&a, &c)))
                }
            }
            // 8: resolve a file (hot resolution cache path)
            8 => {
                let f = file_name(rng.below(12));
                twins.map(|m| norm(&m.get_file(&a, &f)))
            }
            // 9: resolve a collection
            9 => {
                let c = format!("c{}", rng.below(3));
                twins.map(|m| norm(&m.get_collection(&a, &c)))
            }
            // 10–11: the complex query, 1–3 random predicates
            _ => {
                let n = 1 + rng.below(3);
                let preds: Vec<AttrPredicate> =
                    (0..n).map(|_| random_pred(&mut rng)).collect();
                let r_cached = cached.query_by_attributes(&a, &preds);
                // Every query also runs bypassed on the cached catalog:
                // the bypass path must behave like the uncached twin.
                let r_bypass =
                    cached.with_cache_bypass(|m| m.query_by_attributes(&a, &preds));
                assert_eq!(
                    norm(&r_cached),
                    norm(&r_bypass),
                    "seed {seed} step {step}: bypass diverged from cached"
                );
                [norm(&r_cached), norm(&plain.query_by_attributes(&a, &preds))]
            }
        };
        assert_eq!(
            outcome[0], outcome[1],
            "seed {seed} step {step}: cached catalog diverged from uncached twin"
        );
    }

    // The cache must actually have been exercised for this to mean much.
    let stats = cached.cache_stats().unwrap();
    assert!(stats.hits > 0, "seed {seed}: no cache hits in 400 steps");
    assert!(stats.misses > 0, "seed {seed}: no cache misses in 400 steps");
}

/// Random interleavings under several fixed seeds (or one from
/// `MCS_CACHE_SEED`, for replaying a CI failure).
#[test]
fn cached_catalog_equals_uncached_twin() {
    if let Some(seed) =
        std::env::var("MCS_CACHE_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    {
        check_case(seed, IndexProfile::Paper2003);
        check_case(seed, IndexProfile::ValueIndexed);
        return;
    }
    for seed in [42, 0xDEAD_BEEF, 7] {
        check_case(seed, IndexProfile::Paper2003);
    }
    for seed in [1_000_003, 0x9E37_79B9_7F4A_7C15] {
        check_case(seed, IndexProfile::ValueIndexed);
    }
}

/// A commit invalidates exactly the cached entries whose input tables it
/// touched: a write to `user_attributes` revalidates the query entry but
/// leaves collection and attribute-definition entries warm.
#[test]
fn writes_invalidate_only_touched_tables() {
    let a = admin();
    let m = Mcs::with_options_cached(
        &a,
        IndexProfile::Paper2003,
        Arc::new(ManualClock::default()),
        CacheConfig::default(),
    )
    .unwrap();
    m.define_attribute(&a, "run", AttrType::Int, "").unwrap();
    m.create_file(&a, &FileSpec::named("a.dat").attr("run", 1i64)).unwrap();
    m.create_file(&a, &FileSpec::named("b.dat").attr("run", 2i64)).unwrap();
    m.create_collection(&a, "c0", None, "").unwrap();

    let preds = [AttrPredicate { name: "run".into(), op: AttrOp::Eq, value: 1i64.into() }];
    // Fill three kinds of entries, then read them once more so each is a
    // confirmed hit before the write.
    for _ in 0..2 {
        m.query_by_attributes(&a, &preds).unwrap();
        m.get_collection(&a, "c0").unwrap();
        m.attribute_definition("run").unwrap();
    }
    let warm = m.cache_stats().unwrap();
    assert!(warm.hits >= 3, "warm-up should hit on the second pass: {warm:?}");

    // Write to user_attributes only.
    m.set_attribute(
        &a,
        &ObjectRef::File("b.dat".into()),
        &Attribute { name: "run".into(), value: 1i64.into() },
    )
    .unwrap();

    // The query entry is stale (its vector covers user_attributes)...
    let hits = m.query_by_attributes(&a, &preds).unwrap();
    assert_eq!(hits, vec![("a.dat".to_owned(), 1), ("b.dat".to_owned(), 1)]);
    let after_query = m.cache_stats().unwrap();
    assert_eq!(
        after_query.stale,
        warm.stale + 1,
        "exactly the query entry must go stale: {warm:?} -> {after_query:?}"
    );

    // ...but entries over untouched tables are still warm hits.
    m.get_collection(&a, "c0").unwrap();
    m.attribute_definition("run").unwrap();
    let still_warm = m.cache_stats().unwrap();
    assert_eq!(
        still_warm.stale, after_query.stale,
        "collection/attrdef entries must not be invalidated: {still_warm:?}"
    );
    assert!(still_warm.hits >= after_query.hits + 2);
}
