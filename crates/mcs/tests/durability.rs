//! The catalog on a durable database: metadata, attributes, policies and
//! audit trails survive a restart (the implicit durability MySQL gave the
//! 2003 deployment).

use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs, ObjectRef,
    Permission,
};
use relstore::{Database, SyncPolicy};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(dir: &std::path::Path, admin: &Credential) -> Mcs {
    let db = Database::open_durable(dir, SyncPolicy::OsBuffered).unwrap();
    Mcs::with_database(db, admin, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
        .unwrap()
}

#[test]
fn catalog_survives_restart() {
    let dir = tmpdir("basic");
    let admin = Credential::new("/CN=admin");
    {
        let m = open(&dir, &admin);
        m.define_attribute(&admin, "ch", AttrType::Str, "").unwrap();
        m.create_collection(&admin, "run", None, "science run").unwrap();
        m.create_file(&admin, &FileSpec::named("f1").in_collection("run").attr("ch", "H1"))
            .unwrap();
        m.annotate(&admin, &ObjectRef::File("f1".into()), "note").unwrap();
        m.grant(&admin, &ObjectRef::File("f1".into()), "/CN=reader", Permission::Read).unwrap();
    } // crash: process drops the catalog with no checkpoint

    let m = open(&dir, &admin);
    // metadata intact
    let f = m.get_file(&admin, "f1").unwrap();
    assert_eq!(f.collection_id, Some(1));
    // attributes queryable
    let hits = m.query_by_attributes(&admin, &[AttrPredicate::eq("ch", "H1")]).unwrap();
    assert_eq!(hits, vec![("f1".to_string(), 1)]);
    // annotations intact
    assert_eq!(m.get_annotations(&admin, &ObjectRef::File("f1".into())).unwrap().len(), 1);
    // policies intact: the reader's grant survived, a stranger is denied
    let reader = Credential::new("/CN=reader");
    assert!(m.get_file(&reader, "f1").is_ok());
    let stranger = Credential::new("/CN=stranger");
    assert!(m.get_file(&stranger, "f1").is_err());
    // and the admin's bootstrap ACL was not re-granted away / duplicated
    m.create_file(&admin, &FileSpec::named("f2").attr("ch", "L1")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_more_writes_then_crash() {
    let dir = tmpdir("ckpt");
    let admin = Credential::new("/CN=admin");
    {
        let m = open(&dir, &admin);
        m.define_attribute(&admin, "n", AttrType::Int, "").unwrap();
        for i in 0..20i64 {
            m.create_file(&admin, &FileSpec::named(format!("f{i}")).attr("n", i)).unwrap();
        }
        m.database().checkpoint().unwrap();
        for i in 20..30i64 {
            m.create_file(&admin, &FileSpec::named(format!("f{i}")).attr("n", i)).unwrap();
        }
        m.delete_file(&admin, "f0").unwrap();
    }
    let m = open(&dir, &admin);
    assert_eq!(m.file_count().unwrap(), 29);
    let hits = m
        .query_by_attributes(
            &admin,
            &[AttrPredicate { name: "n".into(), op: mcs::AttrOp::Ge, value: 25i64.into() }],
        )
        .unwrap();
    assert_eq!(hits.len(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_admin_does_not_hijack_existing_catalog() {
    let dir = tmpdir("hijack");
    let admin = Credential::new("/CN=admin");
    {
        let m = open(&dir, &admin);
        m.create_file(&admin, &FileSpec::named("f")).unwrap();
    }
    // an attacker reopening the durable directory with their own DN must
    // not become an admin: bootstrap ACLs only apply to a fresh database
    let attacker = Credential::new("/CN=attacker");
    let m = open(&dir, &attacker);
    assert!(m.get_file(&attacker, "f").is_err());
    assert!(m.create_file(&attacker, &FileSpec::named("g")).is_err());
    // the real admin still works
    assert!(m.get_file(&admin, "f").is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
