//! Property-based tests: the catalog against a reference model under
//! random operation sequences, and query-path equivalences.

use std::collections::HashMap;
use std::sync::Arc;

use mcs::{
    AttrPredicate, AttrType, Attribute, Credential, FileSpec, IndexProfile, ManualClock,
    McsError, Mcs, ObjectRef,
};
use proptest::prelude::*;
use relstore::Value;

fn admin() -> Credential {
    Credential::new("/CN=admin")
}

fn catalog(profile: IndexProfile) -> Mcs {
    let m = Mcs::with_options(&admin(), profile, Arc::new(ManualClock::default())).unwrap();
    m.define_attribute(&admin(), "s", AttrType::Str, "").unwrap();
    m.define_attribute(&admin(), "n", AttrType::Int, "").unwrap();
    m
}

#[derive(Debug, Clone)]
enum Op {
    Create { name: String, s: String, n: i64 },
    Delete { name: String },
    SetAttr { name: String, n: i64 },
    Invalidate { name: String },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // tiny name space to force collisions and reuse
    let name = "[ab][0-3]";
    prop_oneof![
        (name, "[xy]", 0i64..5).prop_map(|(name, s, n)| Op::Create { name, s, n }),
        name.prop_map(|name| Op::Delete { name }),
        (name, 0i64..5).prop_map(|(name, n)| Op::SetAttr { name, n }),
        name.prop_map(|name| Op::Invalidate { name }),
    ]
}

#[derive(Debug, Clone, PartialEq)]
struct ModelFile {
    s: String,
    n: i64,
    valid: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    /// The catalog agrees with an in-memory reference model under random
    /// create/delete/set/invalidate sequences, for both index profiles.
    #[test]
    fn catalog_matches_model(ops in prop::collection::vec(arb_op(), 1..40)) {
        let a = admin();
        for profile in [IndexProfile::Paper2003, IndexProfile::ValueIndexed] {
            let m = catalog(profile);
            let mut model: HashMap<String, ModelFile> = HashMap::new();
            for op in &ops {
                match op {
                    Op::Create { name, s, n } => {
                        let spec = FileSpec::named(name)
                            .attr("s", s.as_str())
                            .attr("n", *n);
                        let r = m.create_file(&a, &spec);
                        if model.contains_key(name) {
                            prop_assert!(matches!(r, Err(McsError::AlreadyExists(_))));
                        } else {
                            prop_assert!(r.is_ok(), "{r:?}");
                            model.insert(name.clone(), ModelFile { s: s.clone(), n: *n, valid: true });
                        }
                    }
                    Op::Delete { name } => {
                        let r = m.delete_file(&a, name);
                        if model.remove(name).is_some() {
                            prop_assert!(r.is_ok());
                        } else {
                            prop_assert!(matches!(r, Err(McsError::NotFound(_))));
                        }
                    }
                    Op::SetAttr { name, n } => {
                        let r = m.set_attribute(
                            &a,
                            &ObjectRef::File(name.clone()),
                            &Attribute { name: "n".into(), value: Value::Int(*n) },
                        );
                        match model.get_mut(name) {
                            Some(f) => {
                                prop_assert!(r.is_ok());
                                f.n = *n;
                            }
                            None => prop_assert!(matches!(r, Err(McsError::NotFound(_)))),
                        }
                    }
                    Op::Invalidate { name } => {
                        let r = m.invalidate_file(&a, name);
                        match model.get_mut(name) {
                            Some(f) => {
                                prop_assert!(r.is_ok());
                                f.valid = false;
                            }
                            None => prop_assert!(matches!(r, Err(McsError::NotFound(_)))),
                        }
                    }
                }
            }
            // final state agrees
            prop_assert_eq!(m.file_count().unwrap(), model.len());
            for (name, mf) in &model {
                let f = m.get_file(&a, name).unwrap();
                prop_assert_eq!(f.valid, mf.valid);
                let attrs = m.get_attributes(&a, &ObjectRef::File(name.clone())).unwrap();
                let n = attrs.iter().find(|x| x.name == "n").unwrap();
                prop_assert_eq!(&n.value, &Value::Int(mf.n));
            }
            // every query result agrees with a model-side filter
            for probe in 0i64..5 {
                let hits = m
                    .query_by_attributes(&a, &[AttrPredicate::eq("n", probe)])
                    .unwrap();
                let mut expect: Vec<(String, i64)> = model
                    .iter()
                    .filter(|(_, f)| f.n == probe && f.valid)
                    .map(|(name, _)| (name.clone(), 1))
                    .collect();
                expect.sort();
                prop_assert_eq!(hits, expect, "profile {:?} probe {}", profile, probe);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]
    /// Attribute round-trip: any representable value set on a file comes
    /// back identical through the public API.
    #[test]
    fn attribute_values_roundtrip(sv in "\\PC{0,24}", nv in any::<i64>(), fv in any::<f64>()) {
        prop_assume!(!fv.is_nan()); // NaN ≠ NaN under PartialEq
        let a = admin();
        let m = catalog(IndexProfile::Paper2003);
        m.define_attribute(&a, "f", AttrType::Float, "").unwrap();
        m.create_file(
            &a,
            &FileSpec::named("file")
                .attr("s", sv.as_str())
                .attr("n", nv)
                .attr("f", fv),
        )
        .unwrap();
        let attrs = m.get_attributes(&a, &ObjectRef::File("file".into())).unwrap();
        let get = |k: &str| attrs.iter().find(|x| x.name == k).unwrap().value.clone();
        prop_assert_eq!(get("s"), Value::from(sv));
        prop_assert_eq!(get("n"), Value::Int(nv));
        prop_assert_eq!(get("f"), Value::Float(fv));
    }

    /// Range queries partition the space: every file matches exactly one
    /// of (< k), (= k), (> k).
    #[test]
    fn range_predicates_partition(values in prop::collection::vec(0i64..20, 1..25), k in 0i64..20) {
        let a = admin();
        let m = catalog(IndexProfile::Paper2003);
        for (i, v) in values.iter().enumerate() {
            m.create_file(&a, &FileSpec::named(format!("f{i}")).attr("n", *v)).unwrap();
        }
        let q = |op| {
            m.query_by_attributes(&a, &[AttrPredicate { name: "n".into(), op, value: k.into() }])
                .unwrap()
                .len()
        };
        let (lt, eq, gt) = (q(mcs::AttrOp::Lt), q(mcs::AttrOp::Eq), q(mcs::AttrOp::Gt));
        prop_assert_eq!(lt + eq + gt, values.len());
        prop_assert_eq!(q(mcs::AttrOp::Le), lt + eq);
        prop_assert_eq!(q(mcs::AttrOp::Ge), gt + eq);
        prop_assert_eq!(q(mcs::AttrOp::Ne), lt + gt);
    }
}
