//! Byte-granular crash matrix for the MVCC engine: the WAL of an
//! MVCC-flagged catalog is truncated at *every byte offset* across a
//! `create_file` and a `delete_file` transaction, and each copy is
//! reopened — with the flag on AND off. Recovery must
//!
//! * keep each transaction atomic (whole or absent, exactly as on the
//!   barrier engine),
//! * rebuild **single-version** state: the post-replay vacuum reclaims
//!   every version chain recovery created, so an immediate explicit
//!   vacuum finds nothing left, and the physical integrity checks pass,
//! * be flag-agnostic: the WAL format is identical either way, so the
//!   MVCC reopen and the barrier reopen of the same truncated copy must
//!   answer identically (the on-disk log carries no version metadata).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mcs::{
    AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs, ObjectRef, StoreConfig,
};

const WAL: &str = "wal.log";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-mvcc-cut-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(dir: &Path, admin: &Credential, mvcc: bool) -> Mcs {
    let cfg = if mvcc { StoreConfig::default().with_mvcc() } else { StoreConfig::default() };
    Mcs::open_durable(dir, admin, IndexProfile::Paper2003, Arc::new(ManualClock::default()), cfg)
        .unwrap()
}

/// Copy `src` into a fresh `dst`, then truncate the WAL copy to `wal_len`.
fn copy_truncated(src: &Path, dst: &Path, wal_len: u64) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    let wal = std::fs::OpenOptions::new().write(true).open(dst.join(WAL)).unwrap();
    wal.set_len(wal_len).unwrap();
}

fn wal_len(dir: &Path) -> u64 {
    std::fs::metadata(dir.join(WAL)).unwrap().len()
}

/// A catalog's observable state, flag-independent: file name → attribute
/// multiset, plus which files exist at all.
fn observe(m: &Mcs, admin: &Credential, names: &[&str]) -> Vec<String> {
    names
        .iter()
        .map(|n| {
            let file = m.get_file(admin, n);
            let attrs = m.get_attributes(admin, &ObjectRef::File((*n).into()));
            format!("{n}: file={:?} attrs={:?}", file.map(|f| f.name), attrs)
        })
        .collect()
}

#[test]
fn mvcc_recovery_is_atomic_and_single_version_under_any_wal_truncation() {
    let dir = tmpdir("live");
    let admin = Credential::new("/CN=admin");
    {
        // Build phase runs under MVCC too: checkpoint must serialize the
        // single visible version of every row, not the chains.
        let m = open(&dir, &admin, true);
        for i in 0..3 {
            m.define_attribute(&admin, &format!("a{i}"), AttrType::Str, "").unwrap();
        }
        m.create_collection(&admin, "c", None, "").unwrap();
        let mut spec = FileSpec::named("doomed.dat").in_collection("c");
        for i in 0..3 {
            spec = spec.attr(format!("a{i}"), format!("old{i}"));
        }
        m.create_file(&admin, &spec).unwrap();
        // churn a version chain, then checkpoint over it
        m.set_attribute(
            &admin,
            &ObjectRef::File("doomed.dat".into()),
            &mcs::Attribute { name: "a0".into(), value: "new0".into() },
        )
        .unwrap();
        m.database().vacuum();
        m.database().checkpoint().unwrap();
    }
    let before = wal_len(&dir);

    // The window under test: one create (3 attributes, into the
    // collection) and one delete — both multi-statement transactions.
    let mid;
    {
        let m = open(&dir, &admin, true);
        let mut spec = FileSpec::named("fresh.dat").in_collection("c");
        for i in 0..3 {
            spec = spec.attr(format!("a{i}"), format!("v{i}"));
        }
        m.create_file(&admin, &spec).unwrap();
        mid = wal_len(&dir);
        m.delete_file(&admin, "doomed.dat").unwrap();
    }
    let after = wal_len(&dir);
    assert!(after > mid && mid > before, "both transactions must journal");

    let cut_mvcc = tmpdir("cut-mvcc");
    let cut_barrier = tmpdir("cut-barrier");
    for cut in before..=after {
        let ctx = format!("cut at {cut} (frames at {before}/{mid}/{after})");
        copy_truncated(&dir, &cut_mvcc, cut);
        copy_truncated(&dir, &cut_barrier, cut);

        let m = open(&cut_mvcc, &admin, true);
        let db = m.database();
        assert!(db.is_mvcc());

        // Atomicity: each transaction is all-or-nothing at its frame.
        let fresh = m.get_file(&admin, "fresh.dat");
        if cut < mid {
            assert!(fresh.is_err(), "{ctx}: torn create leaked");
        } else {
            assert!(fresh.is_ok(), "{ctx}: framed create lost");
            let attrs = m.get_attributes(&admin, &ObjectRef::File("fresh.dat".into())).unwrap();
            assert_eq!(attrs.len(), 3, "{ctx}: committed create missing attributes");
        }
        let doomed = m.get_file(&admin, "doomed.dat");
        if cut < after {
            assert!(doomed.is_ok(), "{ctx}: file lost without a framed delete");
        } else {
            assert!(doomed.is_err(), "{ctx}: framed delete lost");
        }

        // Single-version state: replay ran entirely before the oldest
        // possible snapshot, so the post-replay vacuum already reclaimed
        // every chain recovery built — nothing is left to collect, and
        // the physical integrity checks pass with the chains gone.
        assert_eq!(db.vacuum(), 0, "{ctx}: recovery left unreclaimed versions");
        for table in ["logical_files", "user_attributes", "logical_collections"] {
            db.table(table).unwrap().read().check_integrity().unwrap_or_else(|e| {
                panic!("{ctx}: {table} failed integrity after recovery: {e}");
            });
        }

        // Flag-agnostic recovery: a barrier-engine reopen of the very
        // same truncated copy answers identically.
        let b = open(&cut_barrier, &admin, false);
        assert!(!b.database().is_mvcc());
        let names = ["fresh.dat", "doomed.dat"];
        assert_eq!(
            observe(&m, &admin, &names),
            observe(&b, &admin, &names),
            "{ctx}: MVCC and barrier recovery disagree"
        );
    }

    for d in [dir, cut_mvcc, cut_barrier] {
        let _ = std::fs::remove_dir_all(d);
    }
}
