//! Fault injection for multi-statement catalog operations: the WAL is
//! truncated at *every byte offset* inside a `create_file` and a
//! `delete_file` transaction, the copy is reopened durably, and the
//! catalog must show either the whole operation or none of it — never a
//! file missing half its attributes, never attribute/ACL/annotation/view
//! rows pointing at a file that does not exist.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mcs::{
    AttrType, Credential, FileSpec, IndexProfile, ManualClock, Mcs, ObjectRef, Permission,
};
use relstore::{Access, Database, Durability, SyncPolicy};

const WAL: &str = "wal.log";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(dir: &Path, admin: &Credential) -> Mcs {
    let db = Database::open_durable(dir, SyncPolicy::OsBuffered).unwrap();
    Mcs::with_database(db, admin, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
        .unwrap()
}

/// Copy `src` into a fresh `dst`, then truncate the WAL copy to `wal_len`.
fn copy_truncated(src: &Path, dst: &Path, wal_len: u64) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    let wal = std::fs::OpenOptions::new().write(true).open(dst.join(WAL)).unwrap();
    wal.set_len(wal_len).unwrap();
}

fn wal_len(dir: &Path) -> u64 {
    std::fs::metadata(dir.join(WAL)).unwrap().len()
}

fn int_rows(db: &Database, sql: &str) -> Vec<Vec<i64>> {
    db.execute(sql, &[])
        .unwrap()
        .rows
        .expect("select")
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
        .collect()
}

fn file_ids(db: &Database) -> HashSet<i64> {
    int_rows(db, "SELECT id FROM logical_files").into_iter().map(|r| r[0]).collect()
}

/// Rows in `table` whose (type, id) pair claims a logical file that does
/// not exist. `ObjectType::File` encodes as 0.
fn file_orphans(db: &Database, table: &str, type_col: &str, id_col: &str) -> usize {
    let files = file_ids(db);
    int_rows(db, &format!("SELECT {type_col}, {id_col} FROM {table}"))
        .iter()
        .filter(|r| r[0] == 0 && !files.contains(&r[1]))
        .count()
}

fn assert_no_file_orphans(db: &Database, ctx: &str) {
    for (table, tc, ic) in [
        ("user_attributes", "object_type", "object_id"),
        ("acl_entries", "object_type", "object_id"),
        ("annotations", "object_type", "object_id"),
        ("view_members", "member_type", "member_id"),
    ] {
        assert_eq!(file_orphans(db, table, tc, ic), 0, "{ctx}: orphans in {table}");
    }
}

/// Audit rows for one file id, by action.
fn audit_actions(db: &Database, id: i64) -> Vec<String> {
    db.execute(
        "SELECT action FROM audit_log WHERE object_type = ? AND object_id = ?",
        &[0i64.into(), id.into()],
    )
    .unwrap()
    .rows
    .expect("select")
    .rows
    .iter()
    .map(|r| r[0].as_str().unwrap().to_owned())
    .collect()
}

#[test]
fn create_file_is_atomic_under_any_wal_truncation() {
    let dir = tmpdir("create");
    let admin = Credential::new("/CN=admin");
    {
        let m = open(&dir, &admin);
        for i in 0..4 {
            m.define_attribute(&admin, &format!("a{i}"), AttrType::Str, "").unwrap();
        }
        m.create_collection(&admin, "c", None, "").unwrap();
        m.database().checkpoint().unwrap();
    }
    let before = wal_len(&dir);
    {
        let m = open(&dir, &admin);
        let mut spec = FileSpec::named("g").in_collection("c");
        for i in 0..4 {
            spec = spec.attr(format!("a{i}"), format!("v{i}"));
        }
        spec.audit = true;
        m.create_file(&admin, &spec).unwrap();
    }
    let after = wal_len(&dir);
    assert!(after > before, "create_file must journal something");

    let scratch = tmpdir("create-cut");
    for cut in before..=after {
        copy_truncated(&dir, &scratch, cut);
        let m = open(&scratch, &admin);
        let ctx = format!("cut at {cut} of {after}");
        assert_no_file_orphans(m.database(), &ctx);
        // look at the raw row: get_file would itself audit the access
        let gid = m
            .database()
            .execute("SELECT id FROM logical_files WHERE name = ?", &["g".into()])
            .unwrap()
            .rows
            .expect("select")
            .rows
            .first()
            .map(|r| r[0].as_int().unwrap());
        match gid {
            Some(id) => {
                assert_eq!(cut, after, "{ctx}: file visible before the commit frame");
                assert_eq!(audit_actions(m.database(), id), vec!["create".to_string()], "{ctx}");
                let attrs = m.get_attributes(&admin, &ObjectRef::File("g".into())).unwrap();
                assert_eq!(attrs.len(), 4, "{ctx}: committed file missing attributes");
            }
            None => {
                assert_ne!(cut, after, "{ctx}: fully committed create must survive");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn delete_file_is_atomic_under_any_wal_truncation() {
    let dir = tmpdir("delete");
    let admin = Credential::new("/CN=admin");
    let file_id;
    {
        let m = open(&dir, &admin);
        for i in 0..3 {
            m.define_attribute(&admin, &format!("a{i}"), AttrType::Str, "").unwrap();
        }
        m.create_collection(&admin, "c", None, "").unwrap();
        m.create_view(&admin, "v", "").unwrap();
        let mut spec = FileSpec::named("d").in_collection("c");
        for i in 0..3 {
            spec = spec.attr(format!("a{i}"), format!("v{i}"));
        }
        spec.audit = true;
        file_id = m.create_file(&admin, &spec).unwrap().id;
        m.grant(&admin, &ObjectRef::File("d".into()), "/CN=reader", Permission::Read).unwrap();
        m.annotate(&admin, &ObjectRef::File("d".into()), "note").unwrap();
        m.add_to_view(&admin, "v", &ObjectRef::File("d".into())).unwrap();
        m.database().checkpoint().unwrap();
    }
    let before = wal_len(&dir);
    {
        let m = open(&dir, &admin);
        m.delete_file(&admin, "d").unwrap();
    }
    let after = wal_len(&dir);
    assert!(after > before, "delete_file must journal something");

    let scratch = tmpdir("delete-cut");
    let reader = Credential::new("/CN=reader");
    for cut in before..=after {
        copy_truncated(&dir, &scratch, cut);
        let m = open(&scratch, &admin);
        let ctx = format!("cut at {cut} of {after}");
        assert_no_file_orphans(m.database(), &ctx);
        let deleted = audit_actions(m.database(), file_id).contains(&"delete".to_string());
        if cut < after {
            // the delete group is torn: the file must be fully intact
            assert!(!deleted, "{ctx}: delete audit row visible before commit");
            assert!(m.get_file(&admin, "d").is_ok(), "{ctx}: file lost without commit");
            assert!(m.get_file(&reader, "d").is_ok(), "{ctx}: grant lost without commit");
            let attrs = m.get_attributes(&admin, &ObjectRef::File("d".into())).unwrap();
            assert_eq!(attrs.len(), 3, "{ctx}: attributes lost without commit");
            assert_eq!(
                m.get_annotations(&admin, &ObjectRef::File("d".into())).unwrap().len(),
                1,
                "{ctx}: annotation lost without commit"
            );
            let members = int_rows(
                m.database(),
                "SELECT member_type, member_id FROM view_members",
            );
            assert!(
                members.iter().any(|r| r == &vec![0, file_id]),
                "{ctx}: view membership lost without commit"
            );
        } else {
            // the commit frame is intact: every trace is gone, and the
            // delete was audited in the same transaction
            assert!(deleted, "{ctx}: committed delete must be audited");
            assert!(m.get_file(&admin, "d").is_err(), "{ctx}: committed delete must stick");
            for (table, tc, ic) in [
                ("user_attributes", "object_type", "object_id"),
                ("acl_entries", "object_type", "object_id"),
                ("annotations", "object_type", "object_id"),
                ("view_members", "member_type", "member_id"),
            ] {
                let rows = int_rows(m.database(), &format!("SELECT {tc}, {ic} FROM {table}"));
                assert!(
                    !rows.iter().any(|r| r == &vec![0, file_id]),
                    "{ctx}: {table} row survived the delete"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Group commit writes several transactions' WAL groups in ONE physical
/// write — this matrix proves recovery treats each group independently:
/// truncating that write at *every byte offset* must keep exactly the
/// fully-framed prefix of groups and discard the torn tail as a unit,
/// never applying half a transaction.
///
/// Determinism: three writers on disjoint same-length tables commit under
/// `Durability::Group { max_batch: 3 }` with a generous `max_wait`, so
/// the leader provably waits for all three groups and batches them into
/// one write (asserted via the sync/batch counters). Equal-length SQL
/// texts make the three encoded groups byte-identical in size, so the
/// truncation offset tells us exactly how many complete groups survive.
#[test]
fn batched_group_write_recovers_framed_prefix_under_any_truncation() {
    let dir = tmpdir("batch");
    {
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        for t in ["t1", "t2", "t3"] {
            db.execute(&format!("CREATE TABLE {t} (v INTEGER)"), &[]).unwrap();
        }
        db.checkpoint().unwrap();
    }
    let before = wal_len(&dir);
    {
        // EveryWrite so the sync counters prove the batch paid one sync
        // (under OsBuffered the batch is still one write, but unsynced).
        let db = Database::open_durable_with(
            &dir,
            SyncPolicy::EveryWrite,
            Durability::Group { max_wait: Duration::from_secs(30), max_batch: 3 },
        )
        .unwrap();
        let syncs0 = db.wal_stats().sync_count();
        let batches0 = db.wal_stats().batch_count();
        let writers: Vec<_> = (1..=3)
            .map(|i| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let table = format!("t{i}");
                    db.transaction(&[(table.as_str(), Access::Write)], |s| {
                        s.execute(&format!("INSERT INTO t{i} (v) VALUES ({}1)", i), &[])?;
                        s.execute(&format!("INSERT INTO t{i} (v) VALUES ({}2)", i), &[])?;
                        Ok::<_, relstore::Error>(())
                    })
                    .unwrap();
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(
            db.wal_stats().batch_count() - batches0,
            1,
            "3 concurrent commits must coalesce into one physical write"
        );
        assert_eq!(
            db.wal_stats().sync_count() - syncs0,
            1,
            "3 concurrent commits must share one sync"
        );
    }
    let after = wal_len(&dir);
    assert!(after > before, "the batch must journal something");
    assert_eq!((after - before) % 3, 0, "the 3 groups must be equal-sized");
    let group = (after - before) / 3;

    let scratch = tmpdir("batch-cut");
    for cut in before..=after {
        copy_truncated(&dir, &scratch, cut);
        let db = Database::open_durable(&scratch, SyncPolicy::OsBuffered).unwrap();
        let ctx = format!("cut at {cut} of {after} (group size {group})");
        let complete = ((cut - before) / group) as usize;
        let mut applied = 0usize;
        for t in ["t1", "t2", "t3"] {
            let rows: Vec<i64> = int_rows(&db, &format!("SELECT v FROM {t} ORDER BY v"))
                .into_iter()
                .map(|r| r[0])
                .collect();
            assert!(
                rows.is_empty() || rows.len() == 2,
                "{ctx}: {t} shows a half-applied transaction: {rows:?}"
            );
            if rows.len() == 2 {
                let i: i64 = t[1..].parse().unwrap();
                assert_eq!(rows, vec![i * 10 + 1, i * 10 + 2], "{ctx}: {t} rows corrupted");
                applied += 1;
            }
        }
        assert_eq!(
            applied, complete,
            "{ctx}: recovery must keep exactly the fully-framed prefix of groups"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Mixed-durability crash matrix for the epoch/ack contract (DESIGN.md
/// §7.2): a deterministic interleaving of `Always`, `Group` and `Async`
/// commits on ONE table, with the durable-epoch watermark and the on-disk
/// WAL length sampled after every commit. The WAL is then truncated at
/// *every byte offset* and replayed, asserting both directions of the
/// contract:
///
/// * **(a) durable acks survive.** For every sample `(len, watermark)`
///   taken during the run: any cut that keeps at least `len` bytes must
///   recover every commit whose epoch was ≤ `watermark` at that moment —
///   `wait_for_epoch(e)` returning is a real durability promise.
/// * **(b) weak acks are lost whole.** Every commit (async ones
///   included) inserts two rows; at every cut each commit shows both
///   rows or neither — a torn or unflushed group never leaks half a
///   transaction. The final async commit is acked but *never* flushed
///   (its flusher window is hours long and nothing drains it before the
///   snapshot), so it must be absent at every cut.
///
/// Determinism: commits are sequential (modes interleave, threads don't),
/// the flusher's window is far longer than the test so it never writes on
/// its own, and every write that does happen is forced synchronously by
/// an `Always` direct append (drains the queue ahead of itself), a
/// `Group` leader (the flusher yields its window to parked committers),
/// or the final `sync_now`.
#[test]
fn mixed_durability_epoch_contract_under_any_truncation() {
    use relstore::Value;

    let dir = tmpdir("epoch");
    {
        let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
        db.execute("CREATE TABLE t (v INTEGER)", &[]).unwrap();
        db.checkpoint().unwrap();
    }
    let base = wal_len(&dir);
    let huge = Duration::from_secs(3600);
    let weak = Durability::Async { max_wait: huge, max_batch: 1024 };

    // (epoch, v) per commit; each commit inserts rows v and v + 1000.
    let mut commits: Vec<(u64, i64)> = Vec::new();
    // (wal_len, durable_epoch) observed right after each commit returned.
    let mut samples: Vec<(u64, u64)> = Vec::new();
    let lost_val: i64 = 99;
    let snap = tmpdir("epoch-snap");
    let final_len;
    {
        // EveryWrite so wal_len() reflects exactly what a crash would keep.
        let db = Database::open_durable_with(&dir, SyncPolicy::EveryWrite, weak).unwrap();
        let modes: &[&str] = &[
            "async", "async", "always", "group", "async", "always", "async", "async", "group",
            "always",
        ];
        for (i, mode) in modes.iter().enumerate() {
            let v = i as i64 + 1;
            let d = match *mode {
                "always" => Durability::Always,
                "group" => Durability::Group { max_wait: Duration::from_millis(50), max_batch: 1 },
                _ => weak,
            };
            db.with_durability(d, || {
                db.transaction(&[("t", Access::Write)], |s| {
                    s.execute(&format!("INSERT INTO t (v) VALUES ({v})"), &[])?;
                    s.execute(&format!("INSERT INTO t (v) VALUES ({})", v + 1000), &[])?;
                    Ok::<_, relstore::Error>(())
                })
            })
            .unwrap();
            commits.push((Database::last_commit_epoch(), v));
            samples.push((wal_len(&dir), db.durable_epoch()));
        }
        // Harness sanity: epochs strictly increase, samples never regress,
        // and the interleaving really produced a lagging watermark.
        assert!(commits.windows(2).all(|w| w[0].0 < w[1].0), "epochs not increasing: {commits:?}");
        assert!(
            samples.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1),
            "samples regressed: {samples:?}"
        );
        assert!(
            commits.iter().zip(&samples).any(|(&(e, _), &(_, d))| d < e),
            "no commit was ever acked ahead of the watermark; matrix proves nothing"
        );

        // Final async commit: acked with an epoch, never flushed.
        db.with_durability(weak, || {
            db.transaction(&[("t", Access::Write)], |s| {
                s.execute(&format!("INSERT INTO t (v) VALUES ({lost_val})"), &[])?;
                s.execute(&format!("INSERT INTO t (v) VALUES ({})", lost_val + 1000), &[])?;
                Ok::<_, relstore::Error>(())
            })
        })
        .unwrap();
        let lost_epoch = Database::last_commit_epoch();
        assert!(lost_epoch > db.durable_epoch(), "the straggler must be acked, not durable");
        assert!(db.wal_stats().acked_not_durable_count() >= 1);

        // Snapshot the dir NOW — the straggler's bytes are only in memory,
        // so the snapshot is exactly what a crash at this instant keeps.
        final_len = wal_len(&dir);
        copy_truncated(&dir, &snap, final_len);

        // Unblock cleanly: sync_now cuts the flusher's window short and
        // flushes the straggler (into `dir`, not the snapshot).
        db.sync_now().unwrap();
        assert_eq!(db.durable_epoch(), db.commit_epoch());
    }
    assert!(final_len > base, "the run must have journalled something");

    let scratch = tmpdir("epoch-cut");
    for cut in base..=final_len {
        copy_truncated(&snap, &scratch, cut);
        let db = Database::open_durable(&scratch, SyncPolicy::OsBuffered).unwrap();
        let ctx = format!("cut at {cut} of {final_len}");
        let present: HashSet<i64> = db
            .query("SELECT v FROM t", &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        // (b) all-or-nothing per commit, including the never-flushed one
        for &(_, v) in commits.iter().chain([&(0u64, lost_val)]) {
            assert_eq!(
                present.contains(&v),
                present.contains(&(v + 1000)),
                "{ctx}: commit {v} half-applied"
            );
        }
        assert!(!present.contains(&lost_val), "{ctx}: unflushed async commit leaked into the log");
        // (a) every epoch at or below a watermark sampled at ≤ this length
        // must have survived the cut
        for &(len_s, durable_s) in &samples {
            if len_s > cut {
                continue;
            }
            for &(epoch, v) in &commits {
                if epoch <= durable_s {
                    assert!(
                        present.contains(&v),
                        "{ctx}: epoch {epoch} (v={v}) was durable at watermark {durable_s} \
                         (wal length {len_s}) but did not survive"
                    );
                }
            }
        }
        // rows never appear from nowhere
        let known: HashSet<i64> = commits
            .iter()
            .map(|&(_, v)| v)
            .chain([lost_val])
            .flat_map(|v| [v, v + 1000])
            .collect();
        assert!(present.is_subset(&known), "{ctx}: unknown rows {present:?}");
    }

    // The real dir got the sync_now: the straggler IS durable there.
    let db = Database::open_durable(&dir, SyncPolicy::OsBuffered).unwrap();
    let n = db.query("SELECT COUNT(*) FROM t WHERE v = 99", &[]).unwrap().rows[0][0].clone();
    assert_eq!(n, Value::Int(1), "sync_now'd straggler must be durable in the live dir");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&snap).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// A reader racing a writer that repeatedly creates a 10-attribute file
/// and deletes it again must only ever observe the complete attribute
/// set or nothing — never a partially created/deleted file.
#[test]
fn concurrent_reader_never_sees_partial_file() {
    let admin = Credential::new("/CN=admin");
    let m = Arc::new(
        Mcs::with_options(&admin, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
            .unwrap(),
    );
    for i in 0..10 {
        m.define_attribute(&admin, &format!("a{i}"), AttrType::Str, "").unwrap();
    }

    let writer = {
        let m = Arc::clone(&m);
        let admin = admin.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                let mut spec = FileSpec::named("f");
                for i in 0..10 {
                    spec = spec.attr(format!("a{i}"), format!("v{i}"));
                }
                m.create_file(&admin, &spec).unwrap();
                m.delete_file(&admin, "f").unwrap();
            }
        })
    };
    let reader = {
        let m = Arc::clone(&m);
        let admin = admin.clone();
        std::thread::spawn(move || {
            let mut saw_full = 0usize;
            for _ in 0..400 {
                match m.get_attributes(&admin, &ObjectRef::File("f".into())) {
                    // resolve and attribute fetch are separate statements,
                    // so a delete may land between them (0 attributes) —
                    // but a *partial* set means a torn transaction leaked
                    Ok(attrs) => {
                        assert!(
                            attrs.len() == 10 || attrs.is_empty(),
                            "reader saw a partially written file: {} attributes",
                            attrs.len()
                        );
                        if attrs.len() == 10 {
                            saw_full += 1;
                        }
                    }
                    Err(_) => {} // not visible at all — fine
                }
            }
            saw_full
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
}
