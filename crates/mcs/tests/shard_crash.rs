//! Fault injection for the two-phase cross-shard membership protocol
//! (DESIGN.md §7.4): `create_collection` + `assign_collection` span two
//! backends — the global write commits on shard 0 and is mirrored to
//! shard 1, then the membership row commits on the file's owner. Either
//! shard's WAL is truncated at *every byte offset* through the sequence;
//! reopening must reconcile to a state with no dangling membership rows,
//! and replaying the operation must converge to the intended state
//! (idempotence: each step either succeeds or reports it already
//! happened — never corrupts).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mcs::{
    shard_of_name, Credential, FileSpec, IndexProfile, ManualClock, McsError, ShardedCatalog,
    StoreConfig,
};

const WAL: &str = "wal.log";
const SHARDS: usize = 2;
/// Routed to shard 1 of 2, so membership and global state live apart.
const FILE: &str = "data.001.dat";
const COLL: &str = "run-a";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcs-shard-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn admin() -> Credential {
    Credential::new("/CN=admin")
}

fn open(dir: &Path) -> ShardedCatalog {
    ShardedCatalog::open(
        dir,
        &admin(),
        IndexProfile::Paper2003,
        Arc::new(ManualClock::default()),
        StoreConfig::default().sharded(SHARDS),
    )
    .unwrap()
}

fn shard_wal(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k}")).join(WAL)
}

fn wal_len(dir: &Path, k: usize) -> u64 {
    std::fs::metadata(shard_wal(dir, k)).unwrap().len()
}

/// Copy the whole sharded store into a fresh `dst`, then truncate shard
/// `k`'s WAL copy to `wal_len` (the other shard keeps its full log).
fn copy_truncated(src: &Path, dst: &Path, k: usize, wal_len: u64) {
    let _ = std::fs::remove_dir_all(dst);
    for s in 0..SHARDS {
        let from = src.join(format!("shard-{s}"));
        let to = dst.join(format!("shard-{s}"));
        std::fs::create_dir_all(&to).unwrap();
        for entry in std::fs::read_dir(&from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
    let wal = std::fs::OpenOptions::new().write(true).open(shard_wal(dst, k)).unwrap();
    wal.set_len(wal_len).unwrap();
}

fn int_rows(db: &relstore::Database, sql: &str) -> Vec<i64> {
    db.query(sql, &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect()
}

/// No shard may hold a membership row pointing at a collection its own
/// mirror does not know — the invariant `reconcile` restores.
fn assert_no_dangling_membership(m: &ShardedCatalog, ctx: &str) {
    for k in 0..SHARDS {
        let db = m.shard(k).database();
        let colls: std::collections::HashSet<i64> =
            int_rows(db, "SELECT id FROM logical_collections").into_iter().collect();
        for c in int_rows(
            db,
            "SELECT collection_id FROM logical_files WHERE collection_id IS NOT NULL",
        ) {
            assert!(
                colls.contains(&c),
                "{ctx}: shard {k} file references dead collection {c}"
            );
        }
    }
}

/// Build the store, crash-cut shard `cut_shard`'s WAL at every offset the
/// two-phase operation wrote, and replay the operation on each copy.
fn check_cut_shard(cut_shard: usize) {
    assert_eq!(shard_of_name(FILE, SHARDS), 1, "test constant must route to shard 1");
    let a = admin();
    let dir = tmpdir(&format!("build-{cut_shard}"));
    {
        let m = open(&dir);
        m.create_file(&a, &FileSpec::named(FILE)).unwrap();
        for k in 0..SHARDS {
            m.shard(k).database().checkpoint().unwrap();
        }
    }
    let before = wal_len(&dir, cut_shard);
    {
        let m = open(&dir);
        m.create_collection(&a, COLL, None, "").unwrap();
        m.assign_collection(&a, FILE, Some(COLL)).unwrap();
    }
    let after = wal_len(&dir, cut_shard);
    assert!(after > before, "the operation must journal on shard {cut_shard}");

    let scratch = tmpdir(&format!("cut-{cut_shard}"));
    for cut in before..=after {
        copy_truncated(&dir, &scratch, cut_shard, cut);
        let ctx = format!("shard {cut_shard} cut at {cut} of {after}");
        {
            let m = open(&scratch);
            assert_no_dangling_membership(&m, &ctx);

            // Replay the whole operation: every step must either apply
            // or report it already applied — nothing else.
            match m.create_collection(&a, COLL, None, "") {
                Ok(_) | Err(McsError::AlreadyExists(_)) => {}
                Err(e) => panic!("{ctx}: create_collection replay failed: {e:?}"),
            }
            match m.assign_collection(&a, FILE, Some(COLL)) {
                Ok(()) => {}
                Err(McsError::AlreadyInCollection { collection, .. }) => {
                    assert_eq!(collection, COLL, "{ctx}: file stuck in wrong collection");
                }
                Err(e) => panic!("{ctx}: assign_collection replay failed: {e:?}"),
            }

            // Converged state: the file is in the collection, the
            // listing agrees, and mirrors hold the collection row.
            let listing = m.list_collection(&a, COLL).unwrap();
            assert_eq!(
                listing.files,
                vec![(FILE.to_string(), 1)],
                "{ctx}: listing diverged after replay"
            );
            assert_no_dangling_membership(&m, &ctx);
        }

        // Idempotence is durable: a second crash-free reopen of the
        // replayed store sees the same converged state.
        let m = open(&scratch);
        assert_eq!(m.list_collection(&a, COLL).unwrap().files, vec![(FILE.to_string(), 1)]);
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn add_to_collection_replay_survives_global_shard_truncation() {
    check_cut_shard(0);
}

#[test]
fn add_to_collection_replay_survives_member_shard_truncation() {
    check_cut_shard(1);
}
