//! Property test for the sharding transparency contract (DESIGN.md
//! §7.4): a hash-partitioned catalog fed an operation stream must be
//! observationally identical to a single-shard catalog fed the same
//! stream — same answers, same errors, same audit trails — even though
//! files land on different backends with different row ids.
//!
//! The driver is single-threaded so a seed replays the exact
//! interleaving. Deliberately hand-rolled xorshift PRNG: the property
//! must not depend on a test-only dependency being present. Reproduce a
//! failure with
//! `MCS_SHARD_SEED=<seed> cargo test -p mcs --test shard_twin`.

use std::fmt::Debug;
use std::sync::Arc;

use mcs::{
    shard_of_name, Annotation, AttrOp, AttrPredicate, AttrType, Attribute, AuditRecord,
    Credential, FileSpec, HistoryRecord, IndexProfile, LogicalFile, ManualClock, ObjectRef,
    ShardedCatalog,
};
use relstore::Value;

const SHARDS: usize = 4;

/// xorshift64 — deterministic, seedable, no dependencies. Seed must be
/// non-zero (0 is mapped to a fixed constant).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn admin() -> Credential {
    Credential::new("/O=Grid/CN=admin")
}

/// Collapse a result to a comparable form: success payloads must match
/// exactly, and failures must be the *same* failure.
fn norm<T: Debug>(r: &mcs::Result<T>) -> String {
    format!("{r:?}")
}

/// File ids are per shard and legitimately differ between the twins;
/// everything else in a [LogicalFile] (including the collection id —
/// collections are mirrored with their shard-0 ids) must match.
fn nf(mut f: LogicalFile) -> LogicalFile {
    f.id = 0;
    f
}

fn na(mut a: Annotation) -> Annotation {
    a.object_id = 0;
    a
}

fn nh(mut h: HistoryRecord) -> HistoryRecord {
    h.file_id = 0;
    h
}

fn nrec(mut r: AuditRecord) -> AuditRecord {
    r.object_id = 0;
    r
}

fn file_name(i: u64) -> String {
    format!("f{i:02}.dat")
}

fn coll_name(i: u64) -> String {
    format!("c{i}")
}

fn random_value(rng: &mut Rng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.below(5) as i64),
        AttrType::Str => Value::from(format!("s{}", rng.below(4)).as_str()),
        AttrType::Float => Value::Float(rng.below(4) as f64 / 2.0),
        _ => unreachable!("test uses int/str/float only"),
    }
}

fn random_pred(rng: &mut Rng) -> AttrPredicate {
    let (name, ty) = match rng.below(3) {
        0 => ("run", AttrType::Int),
        1 => ("site", AttrType::Str),
        _ => ("quality", AttrType::Float),
    };
    let op = match rng.below(5) {
        0 => AttrOp::Eq,
        1 => AttrOp::Ne,
        2 => AttrOp::Le,
        3 => AttrOp::Ge,
        _ => AttrOp::Lt,
    };
    AttrPredicate { name: name.into(), op, value: random_value(rng, ty) }
}

fn check_case(seed: u64) {
    eprintln!("shard_twin: seed = {seed}");
    let a = admin();
    let single =
        ShardedCatalog::in_memory(1, &a, IndexProfile::Paper2003, Arc::new(ManualClock::default()))
            .unwrap();
    let sharded = ShardedCatalog::in_memory(
        SHARDS,
        &a,
        IndexProfile::Paper2003,
        Arc::new(ManualClock::default()),
    )
    .unwrap();

    for m in [&single, &sharded] {
        m.define_attribute(&a, "run", AttrType::Int, "").unwrap();
        m.define_attribute(&a, "site", AttrType::Str, "").unwrap();
        m.define_attribute(&a, "quality", AttrType::Float, "").unwrap();
    }

    let mut rng = Rng::new(seed);
    for step in 0..400 {
        let twins = [&single, &sharded];
        let outcome: [String; 2] = match rng.below(16) {
            // 0–2: create a file (small name pool → AlreadyExists
            // collisions), sometimes directly into a collection — the
            // cross-shard membership write.
            0..=2 => {
                let mut spec = FileSpec::named(file_name(rng.below(14)));
                for _ in 0..rng.below(3) {
                    let p = random_pred(&mut rng);
                    spec = spec.attr(p.name, p.value);
                }
                if rng.below(2) == 0 {
                    spec = spec.in_collection(coll_name(rng.below(3)));
                }
                twins.map(|m| norm(&m.create_file(&a, &spec).map(nf)))
            }
            // 3–4: set an attribute on a (maybe missing) file
            3..=4 => {
                let obj = ObjectRef::File(file_name(rng.below(14)));
                let p = random_pred(&mut rng);
                let attr = Attribute { name: p.name, value: p.value };
                twins.map(|m| norm(&m.set_attribute(&a, &obj, &attr)))
            }
            // 5: remove an attribute / read them back
            5 => {
                let obj = ObjectRef::File(file_name(rng.below(14)));
                if rng.below(2) == 0 {
                    let name = ["run", "site", "quality"][rng.below(3) as usize];
                    twins.map(|m| norm(&m.remove_attribute(&a, &obj, name)))
                } else {
                    twins.map(|m| norm(&m.get_attributes(&a, &obj)))
                }
            }
            // 6: delete a file
            6 => {
                let f = file_name(rng.below(14));
                twins.map(|m| norm(&m.delete_file(&a, &f)))
            }
            // 7: collection churn — the two-phase global writes
            7 => {
                let c = coll_name(rng.below(3));
                if rng.below(2) == 0 {
                    twins.map(|m| norm(&m.create_collection(&a, &c, None, "").map(|c| c.name)))
                } else {
                    twins.map(|m| norm(&m.delete_collection(&a, &c)))
                }
            }
            // 8: move a file between collections (or out of them)
            8 => {
                let f = file_name(rng.below(14));
                let c = coll_name(rng.below(3));
                let target = if rng.below(3) == 0 { None } else { Some(c.as_str()) };
                twins.map(|m| norm(&m.assign_collection(&a, &f, target)))
            }
            // 9: resolve a file (routed read)
            9 => {
                let f = file_name(rng.below(14));
                twins.map(|m| norm(&m.get_file(&a, &f).map(nf)))
            }
            // 10: list a collection — the gathered listing
            10 => {
                let c = coll_name(rng.below(3));
                twins.map(|m| norm(&m.list_collection(&a, &c)))
            }
            // 11: view churn (global) and view membership (cross-shard)
            11 => {
                let v = "v0";
                match rng.below(4) {
                    0 => twins.map(|m| norm(&m.create_view(&a, v, "").map(|v| v.name))),
                    1 => {
                        let obj = ObjectRef::File(file_name(rng.below(14)));
                        twins.map(|m| norm(&m.add_to_view(&a, v, &obj)))
                    }
                    2 => twins.map(|m| norm(&m.list_view(&a, v))),
                    _ => twins.map(|m| norm(&m.delete_view(&a, v))),
                }
            }
            // 12: annotations on files
            12 => {
                let obj = ObjectRef::File(file_name(rng.below(14)));
                if rng.below(2) == 0 {
                    let text = format!("note {}", rng.below(4));
                    twins.map(|m| norm(&m.annotate(&a, &obj, &text)))
                } else {
                    twins.map(|m| {
                        norm(&m.get_annotations(&a, &obj).map(|v| {
                            v.into_iter().map(na).collect::<Vec<_>>()
                        }))
                    })
                }
            }
            // 13: creation/transformation history
            13 => {
                let f = file_name(rng.below(14));
                if rng.below(2) == 0 {
                    let d = format!("step {}", rng.below(4));
                    twins.map(|m| norm(&m.add_history(&a, &f, &d)))
                } else {
                    twins.map(|m| {
                        norm(&m.get_history(&a, &f).map(|v| {
                            v.into_iter().map(nh).collect::<Vec<_>>()
                        }))
                    })
                }
            }
            // 14: toggle auditing on a file or collection
            14 => {
                let obj = if rng.below(2) == 0 {
                    ObjectRef::File(file_name(rng.below(14)))
                } else {
                    ObjectRef::Collection(coll_name(rng.below(3)))
                };
                let on = rng.below(2) == 0;
                twins.map(|m| norm(&m.set_audit(&a, &obj, on)))
            }
            // 15: the complex query — scatter-gather vs single scan
            _ => {
                let n = 1 + rng.below(3);
                let preds: Vec<AttrPredicate> = (0..n).map(|_| random_pred(&mut rng)).collect();
                twins.map(|m| norm(&m.query_by_attributes(&a, &preds)))
            }
        };
        assert_eq!(
            outcome[0], outcome[1],
            "seed {seed} step {step}: sharded catalog diverged from single-shard twin"
        );
    }

    // Audit trails must agree object by object (file row ids redacted;
    // collection ids are mirrored and compared verbatim).
    for i in 0..14 {
        let obj = ObjectRef::File(file_name(i));
        let trails = [&single, &sharded].map(|m| {
            m.get_audit_trail(&a, &obj)
                .map(|v| v.into_iter().map(nrec).collect::<Vec<_>>())
        });
        assert_eq!(
            norm(&trails[0]),
            norm(&trails[1]),
            "seed {seed}: audit trail diverged for {obj:?}"
        );
    }
    for i in 0..3 {
        let obj = ObjectRef::Collection(coll_name(i));
        let trails = [&single, &sharded].map(|m| m.get_audit_trail(&a, &obj));
        assert_eq!(
            norm(&trails[0]),
            norm(&trails[1]),
            "seed {seed}: audit trail diverged for {obj:?}"
        );
    }

    // The property is vacuous unless the workload actually spread files
    // over several backends.
    assert_eq!(single.file_count().unwrap(), sharded.file_count().unwrap());
    let hits = sharded
        .query_by_attributes(&a, &[AttrPredicate { name: "run".into(), op: AttrOp::Ge, value: Value::Int(0) }])
        .unwrap();
    let mut populated = std::collections::BTreeSet::new();
    for (name, _) in &hits {
        populated.insert(shard_of_name(name, SHARDS));
    }
    if hits.len() >= 4 {
        assert!(
            populated.len() >= 2,
            "seed {seed}: {} files all landed on shards {populated:?}",
            hits.len()
        );
    }
}

/// Random interleavings under several fixed seeds (or one from
/// `MCS_SHARD_SEED`, for replaying a CI failure).
#[test]
fn sharded_catalog_equals_single_shard_twin() {
    if let Some(seed) =
        std::env::var("MCS_SHARD_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    {
        check_case(seed);
        return;
    }
    for seed in [42, 0xDEAD_BEEF, 7, 1_000_003] {
        check_case(seed);
    }
}
