//! A fixed-size worker pool (Tomcat's request-processing threads).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed pool of worker threads executing submitted jobs.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (at least 1).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let rx = Arc::new(rx);
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("soap-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool { tx: Some(tx), workers }
    }

    /// Submit a job. Panics if the pool is shut down (programming error).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let n = Arc::clone(&n);
            pool.execute(move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(n.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }
}
