//! SOAP 1.1 envelope encoding/decoding and fault model.
//!
//! The MCS exposed its Java API through Apache Axis doc/literal SOAP; we
//! reproduce the same wire shape: a `soap:Envelope` / `soap:Body` pair
//! around a method element in the `urn:mcs` namespace, and `soap:Fault`
//! for errors. The byte cost of building, escaping and parsing these
//! envelopes is the measured "web service overhead" of the paper's
//! evaluation (Figures 5–10).

use std::fmt;

use crate::xml::{self, Element, XmlError};

/// SOAP envelope namespace (SOAP 1.1).
pub const SOAP_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// Application namespace for MCS methods.
pub const MCS_NS: &str = "urn:mcs";

/// A SOAP fault (server-reported error).
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Fault code, e.g. `soap:Server` or `soap:Client`.
    pub code: String,
    /// Human-readable fault string.
    pub message: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SOAP fault {}: {}", self.code, self.message)
    }
}

impl std::error::Error for Fault {}

/// Errors crossing the SOAP client/server boundary.
#[derive(Debug)]
pub enum SoapError {
    /// Transport-level failure.
    Http(crate::http::HttpError),
    /// Envelope did not parse or had the wrong shape.
    Xml(XmlError),
    /// The server reported a fault.
    Fault(Fault),
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Http(e) => write!(f, "{e}"),
            SoapError::Xml(e) => write!(f, "{e}"),
            SoapError::Fault(fl) => write!(f, "{fl}"),
        }
    }
}

impl std::error::Error for SoapError {}

impl From<crate::http::HttpError> for SoapError {
    fn from(e: crate::http::HttpError) -> Self {
        SoapError::Http(e)
    }
}
impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Xml(e)
    }
}
impl From<Fault> for SoapError {
    fn from(f: Fault) -> Self {
        SoapError::Fault(f)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SoapError>;

fn envelope(body_child: Element) -> Element {
    Element::new("soap:Envelope").attr("xmlns:soap", SOAP_NS).child(
        Element::new("soap:Body").child(body_child),
    )
}

/// Encode a request calling `method` with an already-built argument
/// element tree: children become the method element's children, and any
/// attributes on `args` ride along on the method element itself (that is
/// how per-request headers like `mcs:durability` travel without changing
/// the doc/literal body shape).
pub fn encode_request(method: &str, args: Element) -> String {
    let mut call = Element::new(format!("m:{method}")).attr("xmlns:m", MCS_NS);
    call.children = args.children;
    call.attrs.extend(args.attrs);
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    out.push_str(&envelope(call).to_xml());
    out
}

/// Encode a successful response: `<m:{method}Response>` wrapping `result`'s
/// children; attributes on `result` are copied onto the response element
/// (the server echoes e.g. the commit epoch of an async write this way).
pub fn encode_response(method: &str, result: Element) -> String {
    let mut resp = Element::new(format!("m:{method}Response")).attr("xmlns:m", MCS_NS);
    resp.children = result.children;
    resp.attrs.extend(result.attrs);
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    out.push_str(&envelope(resp).to_xml());
    out
}

/// Encode a fault response.
pub fn encode_fault(fault: &Fault) -> String {
    let f = Element::new("soap:Fault")
        .child(Element::new("faultcode").text(&fault.code))
        .child(Element::new("faultstring").text(&fault.message));
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    out.push_str(&envelope(f).to_xml());
    out
}

/// Decode a request envelope into `(method, method_element)`.
pub fn decode_request(body: &str) -> Result<(String, Element)> {
    let root = xml::parse(body)?;
    if root.local_name() != "Envelope" {
        return Err(XmlError::Shape(format!("expected Envelope, got <{}>", root.name)).into());
    }
    let soap_body = root.expect("Body")?;
    let call = soap_body
        .elements()
        .next()
        .ok_or_else(|| XmlError::Shape("empty soap:Body".into()))?;
    Ok((call.local_name().to_owned(), call.clone()))
}

/// Decode a response envelope: either the `{method}Response` element or a
/// decoded [`Fault`].
pub fn decode_response(body: &str) -> Result<Element> {
    let root = xml::parse(body)?;
    let soap_body = root.expect("Body")?;
    let first = soap_body
        .elements()
        .next()
        .ok_or_else(|| XmlError::Shape("empty soap:Body".into()))?;
    if first.local_name() == "Fault" {
        let code = first.find("faultcode").map(|e| e.text_content()).unwrap_or_default();
        let message =
            first.find("faultstring").map(|e| e.text_content()).unwrap_or_default();
        return Err(SoapError::Fault(Fault { code, message }));
    }
    Ok(first.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let args = Element::new("args")
            .child(Element::new("logicalName").text("f1"))
            .child(Element::new("collection").text("run <42>"));
        let wire = encode_request("createFile", args);
        assert!(wire.contains("urn:mcs"));
        let (method, el) = decode_request(&wire).unwrap();
        assert_eq!(method, "createFile");
        assert_eq!(el.find("logicalName").unwrap().text_content(), "f1");
        assert_eq!(el.find("collection").unwrap().text_content(), "run <42>");
    }

    #[test]
    fn response_roundtrip() {
        let result = Element::new("r").child(Element::new("id").text("17"));
        let wire = encode_response("createFile", result);
        let el = decode_response(&wire).unwrap();
        assert_eq!(el.local_name(), "createFileResponse");
        assert_eq!(el.find("id").unwrap().text_content(), "17");
    }

    #[test]
    fn method_attributes_ride_the_envelope() {
        // per-request headers (mcs:durability) travel as attributes on
        // the method element; the epoch echo comes back the same way
        let args = Element::new("args")
            .attr("mcs:durability", "async")
            .child(Element::new("logicalName").text("f1"));
        let wire = encode_request("createFile", args);
        let (_, el) = decode_request(&wire).unwrap();
        assert_eq!(el.attr_value("mcs:durability"), Some("async"));
        assert_eq!(el.find("logicalName").unwrap().text_content(), "f1");

        let result = Element::new("r")
            .attr("mcs:epoch", "42")
            .child(Element::new("id").text("17"));
        let wire = encode_response("createFile", result);
        let el = decode_response(&wire).unwrap();
        assert_eq!(el.attr_value("mcs:epoch"), Some("42"));
        assert_eq!(el.find("id").unwrap().text_content(), "17");
    }

    #[test]
    fn fault_roundtrip() {
        let f = Fault { code: "soap:Server".into(), message: "no such file".into() };
        let wire = encode_fault(&f);
        match decode_response(&wire) {
            Err(SoapError::Fault(got)) => assert_eq!(got, f),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_envelope_rejected() {
        assert!(decode_request("<notsoap/>").is_err());
        assert!(decode_request("<soap:Envelope xmlns:soap=\"x\"/>").is_err());
    }
}
