//! SOAP client with configurable transport behaviour.
//!
//! The transport options model the paper's client testbed:
//!
//! * `keep_alive = false` (default) opens a TCP connection per call, as the
//!   2003-era Axis HTTP stack did — part of the measured web-service
//!   overhead.
//! * `simulated_rtt` injects a round-trip latency per network exchange so a
//!   single process can stand in for *multiple client hosts on a LAN*
//!   (paper Figures 8–10). One call costs one RTT on an open connection
//!   plus one extra RTT when a connection must be established.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use crate::http::{read_response, write_request, HttpError, Request};
use crate::soap::{self, Result, SoapError};
use crate::xml::Element;

/// Client transport configuration.
#[derive(Debug, Clone)]
pub struct TransportOpts {
    /// Reuse the TCP connection across calls.
    pub keep_alive: bool,
    /// Simulated network round-trip time added per exchange
    /// (`Duration::ZERO` = real loopback only).
    pub simulated_rtt: Duration,
}

impl Default for TransportOpts {
    fn default() -> Self {
        TransportOpts { keep_alive: false, simulated_rtt: Duration::ZERO }
    }
}

/// A synchronous SOAP client for one endpoint.
pub struct SoapClient {
    addr: String,
    path: String,
    opts: TransportOpts,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
}

impl SoapClient {
    /// Client for `http://{addr}{path}` with default transport options.
    pub fn new(addr: impl Into<String>, path: impl Into<String>) -> SoapClient {
        SoapClient::with_opts(addr, path, TransportOpts::default())
    }

    /// Client with explicit transport options.
    pub fn with_opts(
        addr: impl Into<String>,
        path: impl Into<String>,
        opts: TransportOpts,
    ) -> SoapClient {
        SoapClient { addr: addr.into(), path: path.into(), opts, conn: None }
    }

    /// The endpoint address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> std::result::Result<(BufReader<TcpStream>, BufWriter<TcpStream>), HttpError>
    {
        if !self.opts.simulated_rtt.is_zero() {
            // TCP handshake costs one RTT.
            std::thread::sleep(self.opts.simulated_rtt);
        }
        let stream = TcpStream::connect(&self.addr).map_err(HttpError::Io)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(HttpError::Io)?);
        let writer = BufWriter::new(stream);
        Ok((reader, writer))
    }

    /// Invoke `method` with argument children taken from `args`.
    /// Returns the `{method}Response` element.
    pub fn call(&mut self, method: &str, args: Element) -> Result<Element> {
        let body = soap::encode_request(method, args);
        let mut req = Request::post(&self.path, "text/xml; charset=utf-8", body.into_bytes());
        req.headers.push(("SOAPAction".into(), format!("\"{}#{method}\"", soap::MCS_NS)));
        if !self.opts.keep_alive {
            req.headers.push(("Connection".into(), "close".into()));
        }

        let mut conn = match self.conn.take() {
            Some(c) if self.opts.keep_alive => c,
            _ => self.connect()?,
        };
        if !self.opts.simulated_rtt.is_zero() {
            // Request + response propagation: one RTT.
            std::thread::sleep(self.opts.simulated_rtt);
        }
        let exchange = (|| -> std::result::Result<_, HttpError> {
            write_request(&mut conn.1, &req, &self.addr)?;
            read_response(&mut conn.0)
        })();
        let resp = match exchange {
            Ok(r) => r,
            Err(e) => {
                // A stale kept-alive connection may have been closed by the
                // server; retry once on a fresh connection.
                if self.opts.keep_alive {
                    let mut fresh = self.connect()?;
                    if !self.opts.simulated_rtt.is_zero() {
                        std::thread::sleep(self.opts.simulated_rtt);
                    }
                    let r = (|| -> std::result::Result<_, HttpError> {
                        write_request(&mut fresh.1, &req, &self.addr)?;
                        read_response(&mut fresh.0)
                    })();
                    conn = fresh;
                    r.map_err(SoapError::Http)?
                } else {
                    return Err(e.into());
                }
            }
        };
        if self.opts.keep_alive
            && !resp
                .header("Connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.conn = Some(conn);
        }
        let text = String::from_utf8(resp.body).map_err(|_| {
            SoapError::Http(HttpError::Malformed("response body is not UTF-8".into()))
        })?;
        soap::decode_response(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpServer, SoapDispatcher};
    use crate::soap::Fault;
    use std::sync::Arc;

    fn echo_server() -> HttpServer {
        let mut d = SoapDispatcher::new();
        d.register("echo", |el| {
            let text = el.find("msg").map(|m| m.text_content()).unwrap_or_default();
            Ok(Element::new("r").child(Element::new("msg").text(text)))
        });
        d.register("fail", |_| {
            Err(Fault { code: "soap:Server".into(), message: "intentional".into() })
        });
        HttpServer::start("127.0.0.1:0", Arc::new(d), 2).unwrap()
    }

    #[test]
    fn call_roundtrip_connection_per_request() {
        let server = echo_server();
        let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
        for i in 0..3 {
            let args = Element::new("a").child(Element::new("msg").text(format!("hello {i}")));
            let r = c.call("echo", args).unwrap();
            assert_eq!(r.find("msg").unwrap().text_content(), format!("hello {i}"));
        }
        // connection-per-request: 3 calls = 3 connections
        assert_eq!(server.stats.connections.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn call_roundtrip_keep_alive() {
        let server = echo_server();
        let opts = TransportOpts { keep_alive: true, simulated_rtt: Duration::ZERO };
        let mut c = SoapClient::with_opts(server.addr().to_string(), "/mcs", opts);
        for _ in 0..5 {
            let args = Element::new("a").child(Element::new("msg").text("x"));
            c.call("echo", args).unwrap();
        }
        assert_eq!(server.stats.connections.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(server.stats.requests.load(std::sync::atomic::Ordering::Relaxed), 5);
    }

    #[test]
    fn fault_propagates() {
        let server = echo_server();
        let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
        match c.call("fail", Element::new("a")) {
            Err(SoapError::Fault(f)) => {
                assert_eq!(f.message, "intentional");
                assert_eq!(f.code, "soap:Server");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_method_faults() {
        let server = echo_server();
        let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
        match c.call("nope", Element::new("a")) {
            Err(SoapError::Fault(f)) => assert!(f.message.contains("no such method")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulated_rtt_slows_calls() {
        let server = echo_server();
        let rtt = Duration::from_millis(20);
        let opts = TransportOpts { keep_alive: false, simulated_rtt: rtt };
        let mut c = SoapClient::with_opts(server.addr().to_string(), "/mcs", opts);
        let t0 = std::time::Instant::now();
        c.call("echo", Element::new("a").child(Element::new("msg").text("x"))).unwrap();
        // connect RTT + exchange RTT
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn server_stop_is_idempotent() {
        let mut server = echo_server();
        server.stop();
        server.stop();
    }
}
