//! Threaded HTTP server with a SOAP dispatch layer (the Tomcat+Axis
//! stand-in hosting the MCS service).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::http::{read_request, write_response, Request, Response};
use crate::soap::{self, Fault};
use crate::threadpool::ThreadPool;
use crate::xml::Element;

/// Request handler for the HTTP layer.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request, producing a response.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Counters exposed by the server (requests served, connections accepted).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Total HTTP requests served.
    pub requests: AtomicU64,
    /// Total TCP connections accepted.
    pub connections: AtomicU64,
}

impl ServerStats {
    /// Assert that `expected_requests` calls were all served over a
    /// single accepted connection — the witness that a keep-alive (or
    /// persistent binary-protocol) client really reused its socket. The
    /// `what` string names the client under test in the panic message.
    pub fn assert_single_connection(&self, expected_requests: u64, what: &str) {
        assert_eq!(
            self.connections.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "{what}: {expected_requests} sequential calls must share one TCP connection"
        );
        assert_eq!(
            self.requests.load(std::sync::atomic::Ordering::Relaxed),
            expected_requests,
            "{what}: request count"
        );
    }
}

/// A running HTTP server; dropping it shuts it down.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Service counters.
    pub stats: Arc<ServerStats>,
}

impl HttpServer {
    /// Bind `bind_addr` (e.g. `127.0.0.1:0`) and serve requests on
    /// `workers` pool threads.
    pub fn start(
        bind_addr: &str,
        handler: Arc<dyn Handler>,
        workers: usize,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::Builder::new()
            .name("soap-accept".into())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                for conn in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                    let handler = Arc::clone(&handler);
                    let stats = Arc::clone(&accept_stats);
                    pool.execute(move || serve_connection(stream, &*handler, &stats));
                }
                // pool drops here, joining workers
            })?;
        Ok(HttpServer { addr, shutdown, accept_thread: Some(accept_thread), stats })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and join the accept thread.
    pub fn stop(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(stream: TcpStream, handler: &dyn Handler, stats: &ServerStats) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean close
            Err(_) => {
                let resp = Response::error(400, "Bad Request", "malformed request");
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep = req.keep_alive();
        let resp = handler.handle(&req);
        if write_response(&mut writer, &resp, keep).is_err() || !keep {
            return;
        }
    }
}

/// A SOAP method implementation: takes the decoded method element,
/// returns a result element (children are the response payload) or a fault.
pub type SoapMethod = Box<dyn Fn(&Element) -> Result<Element, Fault> + Send + Sync>;

/// Dispatches SOAP calls on an HTTP path to registered methods.
#[derive(Default)]
pub struct SoapDispatcher {
    methods: HashMap<String, SoapMethod>,
}

impl SoapDispatcher {
    /// New, empty dispatcher.
    pub fn new() -> SoapDispatcher {
        SoapDispatcher::default()
    }

    /// Register `method` under its SOAP name.
    pub fn register(
        &mut self,
        name: &str,
        method: impl Fn(&Element) -> Result<Element, Fault> + Send + Sync + 'static,
    ) {
        self.methods.insert(name.to_owned(), Box::new(method));
    }

    /// Names of all registered methods, sorted (used by the WSDL generator).
    pub fn method_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.methods.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl Handler for SoapDispatcher {
    fn handle(&self, req: &Request) -> Response {
        let body = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
        };
        let (method, el) = match soap::decode_request(body) {
            Ok(x) => x,
            Err(e) => {
                let fault =
                    Fault { code: "soap:Client".into(), message: format!("bad envelope: {e}") };
                return soap_response(500, &soap::encode_fault(&fault));
            }
        };
        match self.methods.get(&method) {
            None => {
                let fault = Fault {
                    code: "soap:Client".into(),
                    message: format!("no such method `{method}`"),
                };
                soap_response(500, &soap::encode_fault(&fault))
            }
            Some(f) => match f(&el) {
                Ok(result) => soap_response(200, &soap::encode_response(&method, result)),
                Err(fault) => soap_response(500, &soap::encode_fault(&fault)),
            },
        }
    }
}

fn soap_response(status: u16, xml: &str) -> Response {
    let mut resp = Response::ok("text/xml; charset=utf-8", xml.as_bytes().to_vec());
    resp.status = status;
    if status != 200 {
        resp.reason = "Internal Server Error".into();
    }
    resp
}
