//! # soapstack — a minimal XML + HTTP/1.1 + SOAP 1.1 web-service stack
//!
//! The web-service substrate of the SC'03 MCS reproduction: the original
//! service ran on Apache Tomcat with an Axis SOAP engine; this crate plays
//! that role with a from-scratch XML tree/parser, an HTTP/1.1 server and
//! client over `std::net`, a SOAP envelope codec, and a thread-pool
//! request dispatcher.
//!
//! The client's [`client::TransportOpts`] deliberately model paper-era
//! behaviour (connection per call) and the evaluation testbed (simulated
//! per-host RTT), because the paper's headline result — the web service is
//! ≈4.8× slower than direct database access — *is* the cost of this layer.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;
pub mod soap;
pub mod threadpool;
pub use xmlkit as xml;

pub use client::{SoapClient, TransportOpts};
pub use http::{Request, Response};
pub use server::{Handler, HttpServer, SoapDispatcher};
pub use soap::{Fault, SoapError};
pub use threadpool::ThreadPool;
pub use xml::{Element, Node, XmlError};
