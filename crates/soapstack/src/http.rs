//! HTTP/1.1 subset: Content-Length framed requests and responses over any
//! `Read`/`Write`, with keep-alive support. This is the transport under
//! the SOAP layer, standing in for Tomcat's HTTP connector.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Maximum accepted header block (DoS guard).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body (the MCS never ships more than a result set).
const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// HTTP errors.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying I/O failed.
    Io(io::Error),
    /// The peer sent a malformed message.
    Malformed(String),
    /// Message exceeded a size limit.
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http message: {m}"),
            HttpError::TooLarge(what) => write!(f, "http {what} too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, HttpError>;

/// Protocol version of a parsed message. Connection persistence defaults
/// differ: HTTP/1.0 closes unless asked to stay open, HTTP/1.1 stays
/// open unless asked to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// HTTP/1.0.
    Http10,
    /// HTTP/1.1.
    Http11,
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method (`POST`, `GET`...).
    pub method: String,
    /// Request target (path).
    pub path: String,
    /// Protocol version from the request line.
    pub version: HttpVersion,
    /// Headers in order received/written.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A POST with a body and content type.
    pub fn post(path: &str, content_type: &str, body: Vec<u8>) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            version: HttpVersion::Http11,
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Does the client want the connection kept open after this exchange?
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("Connection");
        match self.version {
            HttpVersion::Http10 => {
                connection.is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
            }
            HttpVersion::Http11 => !connection.is_some_and(|v| v.eq_ignore_ascii_case("close")),
        }
    }
}

impl Response {
    /// A 200 response with a body and content type.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, reason: &str, body: &str) -> Response {
        Response {
            status,
            reason: reason.into(),
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Read one request. Returns `Ok(None)` on a clean EOF before any bytes
/// (client closed a kept-alive connection).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>> {
    let Some(start) = read_line_opt(r)? else { return Ok(None) };
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or_else(|| HttpError::Malformed("empty start line".into()))?;
    let path = parts.next().ok_or_else(|| HttpError::Malformed("missing path".into()))?;
    let version =
        parts.next().ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    let version = match version {
        "HTTP/1.0" => HttpVersion::Http10,
        "HTTP/1.1" => HttpVersion::Http11,
        other => return Err(HttpError::Malformed(format!("unsupported version {other}"))),
    };
    let headers = read_headers(r)?;
    let body = read_body(r, &headers)?;
    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        version,
        headers,
        body,
    }))
}

/// Write one request (adds Content-Length and Host).
pub fn write_request(w: &mut impl Write, req: &Request, host: &str) -> Result<()> {
    let mut head = format!("{} {} HTTP/1.1\r\nHost: {}\r\n", req.method, req.path, host);
    for (n, v) in &req.headers {
        head.push_str(n);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", req.body.len()));
    w.write_all(head.as_bytes())?;
    w.write_all(&req.body)?;
    w.flush()?;
    Ok(())
}

/// Read one response.
pub fn read_response(r: &mut impl BufRead) -> Result<Response> {
    let start = read_line_opt(r)?
        .ok_or_else(|| HttpError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "no response")))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad status line `{start}`")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status in `{start}`")))?;
    let reason = parts.next().unwrap_or("").to_owned();
    let headers = read_headers(r)?;
    let body = read_body(r, &headers)?;
    Ok(Response { status, reason, headers, body })
}

/// Write one response (adds Content-Length).
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    for (n, v) in &resp.headers {
        head.push_str(n);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()?;
    Ok(())
}

fn read_line_opt(r: &mut impl BufRead) -> Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line_opt(r)?
            .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge("header block"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
}

fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> Result<Vec<u8>> {
    let len: usize = match header(headers, "Content-Length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; len];
    io::Read::read_exact(r, &mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/mcs", "text/xml", b"<x/>".to_vec());
        let mut wire = Vec::new();
        write_request(&mut wire, &req, "localhost:9999").unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("POST /mcs HTTP/1.1\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        let got = read_request(&mut BufReader::new(&wire[..])).unwrap().unwrap();
        assert_eq!(got.method, "POST");
        assert_eq!(got.path, "/mcs");
        assert_eq!(got.body, b"<x/>");
        assert_eq!(got.header("content-type"), Some("text/xml"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok("text/xml", b"<ok/>".to_vec());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let got = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, b"<ok/>");
        assert_eq!(got.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn clean_eof_yields_none() {
        let empty: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(empty)).unwrap().is_none());
    }

    #[test]
    fn malformed_rejected() {
        let bad: &[u8] = b"NOT A REQUEST\r\n\r\n";
        assert!(read_request(&mut BufReader::new(bad)).is_err());
        let badver: &[u8] = b"GET / SPDY/9\r\n\r\n";
        assert!(read_request(&mut BufReader::new(badver)).is_err());
        let badlen: &[u8] = b"POST / HTTP/1.1\r\nContent-Length: wat\r\n\r\n";
        assert!(read_request(&mut BufReader::new(badlen)).is_err());
        let truncated: &[u8] = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut BufReader::new(truncated)).is_err());
    }

    #[test]
    fn keep_alive_semantics() {
        let mut req = Request::post("/", "t", vec![]);
        assert!(req.keep_alive()); // HTTP/1.1 default
        req.headers.push(("Connection".into(), "close".into()));
        assert!(!req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let wire: &[u8] = b"GET /x HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire)).unwrap().unwrap();
        assert_eq!(req.version, HttpVersion::Http10);
        assert!(!req.keep_alive());

        let wire: &[u8] = b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire)).unwrap().unwrap();
        assert!(req.keep_alive());

        // HTTP/1.1 with no Connection header still defaults to keep-alive
        let wire: &[u8] = b"GET /x HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire)).unwrap().unwrap();
        assert_eq!(req.version, HttpVersion::Http11);
        assert!(req.keep_alive());
    }

    #[test]
    fn error_response_shape() {
        let r = Response::error(500, "Internal Server Error", "boom");
        assert_eq!(r.status, 500);
        assert_eq!(r.body, b"boom");
    }
}
