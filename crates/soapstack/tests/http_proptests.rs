//! Property tests: HTTP request/response framing round-trips arbitrary
//! bodies.

use proptest::prelude::*;
use soapstack::{Request, Response};
use std::io::BufReader;

proptest! {
    #[test]
    fn http_request_roundtrip(body in prop::collection::vec(any::<u8>(), 0..2048),
                              path in "/[a-z]{0,12}") {
        let req = Request::post(&path, "application/octet-stream", body.clone());
        let mut wire = Vec::new();
        soapstack::http::write_request(&mut wire, &req, "h:1").unwrap();
        let got = soapstack::http::read_request(&mut BufReader::new(&wire[..]))
            .unwrap().unwrap();
        prop_assert_eq!(got.body, body);
        prop_assert_eq!(got.path, path);
    }

    #[test]
    fn http_response_roundtrip(body in prop::collection::vec(any::<u8>(), 0..2048),
                               status in 200u16..600) {
        let mut resp = Response::ok("application/octet-stream", body.clone());
        resp.status = status;
        let mut wire = Vec::new();
        soapstack::http::write_response(&mut wire, &resp, false).unwrap();
        let got = soapstack::http::read_response(&mut BufReader::new(&wire[..])).unwrap();
        prop_assert_eq!(got.status, status);
        prop_assert_eq!(got.body, body);
    }

    #[test]
    fn soap_envelope_roundtrip_escapes(method in "[a-z]{1,10}", payload in "\\PC{0,64}") {
        use soapstack::xml::Element;
        let args = Element::new("args").child(Element::new("v").text(payload.clone()));
        let wire = soapstack::soap::encode_request(&method, args);
        let (m, el) = soapstack::soap::decode_request(&wire).unwrap();
        prop_assert_eq!(m, method);
        prop_assert_eq!(el.find("v").unwrap().text_content(), payload);
    }
}
