//! Server robustness: malformed input, connection churn, concurrency,
//! and shutdown behaviour of the HTTP/SOAP stack.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use soapstack::xml::Element;
use soapstack::{Fault, HttpServer, Request, Response, SoapClient, SoapDispatcher};

fn echo_server(workers: usize) -> HttpServer {
    let mut d = SoapDispatcher::new();
    d.register("echo", |el| {
        Ok(Element::new("r").child(Element::new("msg").text(
            el.find("msg").map(|m| m.text_content()).unwrap_or_default(),
        )))
    });
    d.register("slow", |_| {
        std::thread::sleep(std::time::Duration::from_millis(30));
        Ok(Element::new("r"))
    });
    HttpServer::start("127.0.0.1:0", Arc::new(d), workers).unwrap()
}

fn raw(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(bytes).unwrap();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn malformed_request_line_gets_400() {
    let server = echo_server(2);
    let resp = raw(server.addr(), b"GARBAGE\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
}

#[test]
fn non_soap_body_gets_fault() {
    let server = echo_server(2);
    let resp = raw(
        server.addr(),
        b"POST /mcs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\nConnection: close\r\n\r\nnot xml!!",
    );
    assert!(resp.contains("soap:Client"), "{resp}");
    assert!(resp.starts_with("HTTP/1.1 500"));
}

#[test]
fn empty_connection_is_tolerated() {
    let server = echo_server(2);
    // connect and immediately close — must not wedge the server
    for _ in 0..5 {
        drop(TcpStream::connect(server.addr()).unwrap());
    }
    let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
    let r = c.call("echo", Element::new("a").child(Element::new("msg").text("still alive")));
    assert_eq!(r.unwrap().find("msg").unwrap().text_content(), "still alive");
}

#[test]
fn many_concurrent_clients_on_few_workers() {
    let server = echo_server(2); // fewer workers than clients: requests queue
    let addr = server.addr().to_string();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = SoapClient::new(addr, "/mcs");
                for j in 0..10 {
                    let msg = format!("t{i}-{j}");
                    let r = c
                        .call("echo", Element::new("a").child(Element::new("msg").text(&msg)))
                        .unwrap();
                    assert_eq!(r.find("msg").unwrap().text_content(), msg);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        server.stats.requests.load(std::sync::atomic::Ordering::Relaxed),
        80
    );
}

#[test]
fn slow_handler_does_not_block_other_workers() {
    let server = echo_server(4);
    let addr = server.addr().to_string();
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = SoapClient::new(addr, "/mcs");
            c.call("slow", Element::new("a")).unwrap();
        })
    };
    // while `slow` sleeps, echoes still go through
    let mut c = SoapClient::new(addr, "/mcs");
    let t0 = std::time::Instant::now();
    c.call("echo", Element::new("a").child(Element::new("msg").text("fast"))).unwrap();
    assert!(t0.elapsed() < std::time::Duration::from_millis(25));
    slow.join().unwrap();
}

#[test]
fn custom_handler_get_and_post() {
    struct Both;
    impl soapstack::Handler for Both {
        fn handle(&self, req: &Request) -> Response {
            if req.method == "GET" {
                Response::ok("text/plain", b"hello".to_vec())
            } else {
                Response::error(405, "Method Not Allowed", "POST not here")
            }
        }
    }
    let server = HttpServer::start("127.0.0.1:0", Arc::new(Both), 1).unwrap();
    let resp = raw(server.addr(), b"GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(resp.ends_with("hello"));
    let resp = raw(
        server.addr(),
        b"POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405"));
}

#[test]
fn fault_details_cross_the_wire() {
    let mut d = SoapDispatcher::new();
    d.register("always_fails", |_| {
        Err(Fault { code: "soap:Server.Custom".into(), message: "with <angle> & amp".into() })
    });
    let server = HttpServer::start("127.0.0.1:0", Arc::new(d), 1).unwrap();
    let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
    match c.call("always_fails", Element::new("a")) {
        Err(soapstack::SoapError::Fault(f)) => {
            assert_eq!(f.code, "soap:Server.Custom");
            assert_eq!(f.message, "with <angle> & amp");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn server_survives_drop_while_clients_active() {
    let mut server = echo_server(2);
    let addr = server.addr().to_string();
    let mut c = SoapClient::new(addr, "/mcs");
    c.call("echo", Element::new("a").child(Element::new("msg").text("x"))).unwrap();
    server.stop();
    // further calls fail cleanly rather than hanging
    let r = c.call("echo", Element::new("a").child(Element::new("msg").text("y")));
    assert!(r.is_err());
}
