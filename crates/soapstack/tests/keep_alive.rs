//! Regression tests for client connection reuse: a keep-alive SOAP
//! client must hold exactly one TCP connection across sequential calls
//! (the server's accepted-connection counter is the witness), including
//! across fault responses, and must transparently reconnect if the
//! server drops the idle connection.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use soapstack::xml::Element;
use soapstack::{Fault, HttpServer, SoapClient, SoapDispatcher, SoapError, TransportOpts};

fn echo_server() -> HttpServer {
    let mut d = SoapDispatcher::new();
    d.register("echo", |el| {
        Ok(Element::new("r").child(
            Element::new("msg").text(el.find("msg").map(|m| m.text_content()).unwrap_or_default()),
        ))
    });
    d.register("fail", |_| {
        Err(Fault { code: "soap:Server".into(), message: "intentional".into() })
    });
    HttpServer::start("127.0.0.1:0", Arc::new(d), 2).unwrap()
}

fn keep_alive_client(server: &HttpServer) -> SoapClient {
    let opts = TransportOpts { keep_alive: true, simulated_rtt: Duration::ZERO };
    SoapClient::with_opts(server.addr().to_string(), "/mcs", opts)
}

#[test]
fn sequential_calls_reuse_one_connection() {
    let server = echo_server();
    let mut c = keep_alive_client(&server);
    for i in 0..20 {
        let args = Element::new("a").child(Element::new("msg").text(format!("m{i}")));
        let r = c.call("echo", args).unwrap();
        assert_eq!(r.find("msg").unwrap().text_content(), format!("m{i}"));
    }
    server.stats.assert_single_connection(20, "keep-alive SOAP client");
}

#[test]
fn fault_responses_do_not_burn_the_connection() {
    let server = echo_server();
    let mut c = keep_alive_client(&server);
    c.call("echo", Element::new("a").child(Element::new("msg").text("x"))).unwrap();
    match c.call("fail", Element::new("a")) {
        Err(SoapError::Fault(f)) => assert_eq!(f.message, "intentional"),
        other => panic!("{other:?}"),
    }
    // the connection survives the fault and keeps being reused
    c.call("echo", Element::new("a").child(Element::new("msg").text("y"))).unwrap();
    server.stats.assert_single_connection(3, "keep-alive SOAP client across a fault");
}

#[test]
fn connection_per_call_still_opens_one_per_call() {
    // The keep-alive OFF path is the 2003 baseline the figures measure —
    // make sure reuse never leaks into it.
    let server = echo_server();
    let mut c = SoapClient::new(server.addr().to_string(), "/mcs");
    for _ in 0..4 {
        c.call("echo", Element::new("a").child(Element::new("msg").text("x"))).unwrap();
    }
    assert_eq!(server.stats.connections.load(Ordering::Relaxed), 4);
}
