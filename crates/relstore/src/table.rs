//! Heap storage for one table plus its indexes.

use crate::error::{Error, Result};
use crate::index::{Index, IndexDef, IndexKey};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::value::Value;

/// A table: schema, row heap, and indexes. Row ids are slot numbers in the
/// heap and are never reused, so deleted rows leave `None` tombstones
/// (compacted storage is not needed for the MCS workloads, which keep
/// database size roughly constant).
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<Index>,
    /// Next value handed out per AUTO_INCREMENT column (indexed by column
    /// position; non-auto columns keep 0).
    auto_next: Vec<i64>,
    last_auto: Option<i64>,
}

impl Table {
    /// Create an empty table. Declares a unique `pk_<table>` index if the
    /// schema has a primary key.
    pub fn new(schema: TableSchema) -> Table {
        let auto_next = vec![1; schema.columns.len()];
        let mut t = Table {
            rows: Vec::new(),
            live: 0,
            indexes: Vec::new(),
            auto_next,
            last_auto: None,
            schema,
        };
        if !t.schema.primary_key.is_empty() {
            let def = IndexDef {
                name: format!("pk_{}", t.schema.name),
                columns: t.schema.primary_key.clone(),
                unique: true,
            };
            t.indexes.push(Index::new(def));
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The value assigned by the most recent AUTO_INCREMENT insert.
    pub fn last_auto_value(&self) -> Option<i64> {
        self.last_auto
    }

    /// Add a secondary index, building it from existing rows. Fails (and
    /// leaves the table unchanged) if `unique` is violated by current data.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.iter().any(|ix| ix.def.name.eq_ignore_ascii_case(&def.name)) {
            return Err(Error::IndexExists(def.name));
        }
        for &c in &def.columns {
            if c >= self.schema.arity() {
                return Err(Error::NoSuchColumn(format!("{}[{}]", self.schema.name, c)));
            }
        }
        let mut ix = Index::new(def);
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                let key = ix.key_of(row);
                ix.check_unique(&key)?;
                ix.insert(key, RowId(slot as u64));
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop an index by name. The primary-key index cannot be dropped.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::NoSuchIndex(name.to_owned()))?;
        if self.indexes[pos].def.name == format!("pk_{}", self.schema.name) {
            return Err(Error::ExecError(format!("cannot drop primary key of `{}`", self.schema.name)));
        }
        self.indexes.remove(pos);
        Ok(())
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.def.name.eq_ignore_ascii_case(name))
    }

    /// Validate a full row (schema order) and fill AUTO_INCREMENT slots.
    fn prepare_row(&mut self, values: Vec<Value>) -> Result<Row> {
        if values.len() != self.schema.arity() {
            return Err(Error::ExecError(format!(
                "table `{}` has {} columns, {} values given",
                self.schema.name,
                self.schema.arity(),
                values.len()
            )));
        }
        let mut row = Vec::with_capacity(values.len());
        for (i, v) in values.into_iter().enumerate() {
            let col = &self.schema.columns[i];
            let v = col.check(v)?;
            if v.is_null() && col.auto_increment {
                let next = self.auto_next[i];
                self.auto_next[i] = next + 1;
                self.last_auto = Some(next);
                row.push(Value::Int(next));
            } else {
                if let (Value::Int(given), true) = (&v, col.auto_increment) {
                    // Explicit value supplied for an auto column: advance
                    // the counter past it, as MySQL does.
                    if *given >= self.auto_next[i] {
                        self.auto_next[i] = given + 1;
                    }
                }
                row.push(v);
            }
        }
        Ok(row)
    }

    /// Insert a row (values in schema order; use [`Value::Null`] to request
    /// AUTO_INCREMENT or a default). Returns the new row id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        let row = self.prepare_row(values)?;
        // Validate all unique indexes before touching any of them, so a
        // failed insert leaves every index unchanged.
        let keys: Vec<IndexKey> = self.indexes.iter().map(|ix| ix.key_of(&row)).collect();
        for (ix, key) in self.indexes.iter().zip(&keys) {
            ix.check_unique(key)?;
        }
        let id = RowId(self.rows.len() as u64);
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(key, id);
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Re-insert a previously deleted row at its original id (transaction
    /// rollback of a DELETE). The slot must be a tombstone.
    pub(crate) fn undelete(&mut self, id: RowId, row: Row) -> Result<()> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(Error::NoSuchRow(id.0))?;
        if slot.is_some() {
            return Err(Error::ExecError(format!("slot {} is occupied", id.0)));
        }
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, id);
        }
        *slot = Some(row);
        self.live += 1;
        Ok(())
    }

    /// Delete a row by id, returning the removed values (for undo logs).
    pub fn delete(&mut self, id: RowId) -> Result<Row> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(Error::NoSuchRow(id.0))?;
        let row = slot.take().ok_or(Error::NoSuchRow(id.0))?;
        self.live -= 1;
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.remove(&key, id);
        }
        Ok(row)
    }

    /// Replace a row's values, returning the old values (for undo logs).
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> Result<Row> {
        let old = self
            .rows
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(Error::NoSuchRow(id.0))?
            .clone();
        let new = self.prepare_row(values)?;
        // Uniqueness: only keys that actually change can conflict.
        let changes: Vec<(usize, IndexKey, IndexKey)> = self
            .indexes
            .iter()
            .enumerate()
            .filter_map(|(i, ix)| {
                let old_key = ix.key_of(&old);
                let new_key = ix.key_of(&new);
                (old_key != new_key).then_some((i, old_key, new_key))
            })
            .collect();
        for (i, _, new_key) in &changes {
            self.indexes[*i].check_unique(new_key)?;
        }
        for (i, old_key, new_key) in changes {
            self.indexes[i].remove(&old_key, id);
            self.indexes[i].insert(new_key, id);
        }
        self.rows[id.0 as usize] = Some(new);
        Ok(old)
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Iterate all live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (RowId(i as u64), row)))
    }

    /// Internal integrity check used by property tests: every index entry
    /// points at a live row with a matching key, and every live row appears
    /// exactly once in every index.
    pub fn check_integrity(&self) -> Result<()> {
        for ix in &self.indexes {
            let mut seen = 0usize;
            for (key, ids) in ix.iter() {
                for &id in ids {
                    let row = self
                        .get(id)
                        .ok_or_else(|| Error::ExecError(format!("index `{}` points at dead row {}", ix.def.name, id.0)))?;
                    if &ix.key_of(row) != key {
                        return Err(Error::ExecError(format!(
                            "index `{}` key mismatch for row {}",
                            ix.def.name, id.0
                        )));
                    }
                    seen += 1;
                }
            }
            if seen != self.live {
                return Err(Error::ExecError(format!(
                    "index `{}` has {} entries for {} live rows",
                    ix.def.name, seen, self.live
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "files",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::nullable("size", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name".into(), columns: vec![1], unique: true })
            .unwrap();
        t
    }

    #[test]
    fn insert_auto_increment() {
        let mut t = table();
        let id1 = t.insert(vec![Value::Null, "a".into(), Value::Int(1)]).unwrap();
        let id2 = t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(t.get(id1).unwrap()[0], Value::Int(1));
        assert_eq!(t.get(id2).unwrap()[0], Value::Int(2));
        assert_eq!(t.last_auto_value(), Some(2));
        assert_eq!(t.len(), 2);
        t.check_integrity().unwrap();
    }

    #[test]
    fn explicit_auto_value_advances_counter() {
        let mut t = table();
        t.insert(vec![Value::Int(10), "a".into(), Value::Null]).unwrap();
        let id = t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(11));
    }

    #[test]
    fn unique_index_rejects_duplicates_atomically() {
        let mut t = table();
        t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        let err = t.insert(vec![Value::Null, "a".into(), Value::Null]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
        // failed insert must not leave partial index entries
        t.check_integrity().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_and_undelete() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        let row = t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(id).is_none());
        assert!(t.delete(id).is_err());
        t.undelete(id, row).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[1], "a".into());
        t.check_integrity().unwrap();
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        // renaming a -> b collides on the unique name index
        let err = t.update(id, vec![Value::Int(1), "b".into(), Value::Int(5)]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
        t.check_integrity().unwrap();
        // renaming a -> c works
        let old = t.update(id, vec![Value::Int(1), "c".into(), Value::Int(6)]).unwrap();
        assert_eq!(old[1], "a".into());
        t.check_integrity().unwrap();
        let ix = t.index("by_name").unwrap();
        assert_eq!(ix.get_eq(&IndexKey(vec!["c".into()])).collect::<Vec<_>>(), vec![id]);
        assert_eq!(ix.count_eq(&IndexKey(vec!["a".into()])), 0);
    }

    #[test]
    fn update_same_key_no_self_collision() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        // same unique key, different other column: must not self-collide
        t.update(id, vec![Value::Int(1), "a".into(), Value::Int(9)]).unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Int(9));
    }

    #[test]
    fn create_index_on_existing_data_checks_unique() {
        let mut t = table();
        t.insert(vec![Value::Null, "a".into(), Value::Int(1)]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Int(1)]).unwrap();
        let err = t.create_index(IndexDef { name: "u_size".into(), columns: vec![2], unique: true });
        assert!(err.is_err());
        // non-unique works
        t.create_index(IndexDef { name: "by_size".into(), columns: vec![2], unique: false })
            .unwrap();
        t.check_integrity().unwrap();
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::Null, "a".into()]).is_err());
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = table();
        let a = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        t.delete(a).unwrap();
        let names: Vec<String> =
            t.scan().map(|(_, r)| r[1].to_string()).collect();
        assert_eq!(names, vec!["b"]);
    }
}
