//! Heap storage for one table plus its indexes.
//!
//! With MVCC enabled (see [`crate::mvcc`] and DESIGN.md §7.5) each slot
//! additionally carries a version chain: the heap keeps the *latest*
//! physical image (so the non-MVCC fast paths are untouched), a parallel
//! `meta` vector stamps that image with the commit epoch that created it,
//! and superseded images move into per-slot history, stamped with the
//! `(begin, end)` epochs that bound their visibility. Index entries are
//! **not** removed on update/delete while MVCC is on — an old snapshot
//! still needs the old keys — so readers visibility-filter candidates and
//! vacuum removes entries once no snapshot can reach them.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, ThreadId};

use crate::error::{Error, Result};
use crate::index::{Index, IndexDef, IndexKey};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::{self, TableStatistics, MIN_STALE_WRITES, STALE_FRACTION};
use crate::value::Value;
use crate::wal::WalStats;

/// Visibility stamp on a row image: either the commit epoch that made it,
/// or the thread of the uncommitted writer that produced it (pending
/// images are visible only to their own thread — read-your-writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stamp {
    /// Created/ended by the commit with this epoch.
    Committed(u64),
    /// Produced by an in-flight write on this thread; converted to
    /// `Committed` when its transaction's epoch is allocated.
    Pending(ThreadId),
}

impl Stamp {
    /// Is an image bearing this *begin* stamp (or lacking this *end*
    /// stamp) part of snapshot `snapshot` as seen by thread `me`?
    fn visible(self, snapshot: u64, me: ThreadId) -> bool {
        match self {
            Stamp::Committed(e) => e <= snapshot,
            Stamp::Pending(t) => t == me,
        }
    }
}

/// A superseded row image: valid for snapshots in `[begin, end)`.
#[derive(Debug)]
pub(crate) struct Version {
    begin: Stamp,
    end: Stamp,
    row: Row,
}

/// A table: schema, row heap, and indexes. Row ids are slot numbers in the
/// heap and are never reused, so deleted rows leave `None` tombstones
/// (compacted storage is not needed for the MCS workloads, which keep
/// database size roughly constant).
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<Index>,
    /// Next value handed out per AUTO_INCREMENT column (indexed by column
    /// position; non-auto columns keep 0).
    auto_next: Vec<i64>,
    last_auto: Option<i64>,
    /// Version chains enabled (set once by the database at registration;
    /// never flips at runtime). All fields below stay empty when off.
    mvcc: bool,
    /// Begin stamp of the latest image, parallel to `rows` (meaningless
    /// for tombstoned slots).
    meta: Vec<Stamp>,
    /// Superseded images per slot, oldest first.
    history: BTreeMap<usize, Vec<Version>>,
    /// Slots carrying at least one `Pending` stamp (may hold duplicates
    /// and stale entries; pruned at stamp/rollback time).
    pending_slots: Vec<RowId>,
    /// Version/vacuum gauges shared with the owning database.
    mvcc_stats: Option<Arc<WalStats>>,
    /// Cached planner statistics (see [`crate::stats`]). Interior
    /// mutability so [`Table::statistics`] can refresh lazily from behind
    /// the read side of the table lock.
    stats: Mutex<Option<Arc<TableStatistics>>>,
    /// Row mutations since the cached statistics were computed.
    writes_since_analyze: AtomicU64,
}

impl Table {
    /// Create an empty table. Declares a unique `pk_<table>` index if the
    /// schema has a primary key.
    pub fn new(schema: TableSchema) -> Table {
        let auto_next = vec![1; schema.columns.len()];
        let mut t = Table {
            rows: Vec::new(),
            live: 0,
            indexes: Vec::new(),
            auto_next,
            last_auto: None,
            schema,
            mvcc: false,
            meta: Vec::new(),
            history: BTreeMap::new(),
            pending_slots: Vec::new(),
            mvcc_stats: None,
            stats: Mutex::new(None),
            writes_since_analyze: AtomicU64::new(0),
        };
        if !t.schema.primary_key.is_empty() {
            let def = IndexDef {
                name: format!("pk_{}", t.schema.name),
                columns: t.schema.primary_key.clone(),
                unique: true,
            };
            t.indexes.push(Index::new(def));
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The value assigned by the most recent AUTO_INCREMENT insert.
    pub fn last_auto_value(&self) -> Option<i64> {
        self.last_auto
    }

    /// Enable version chains on this table (done once, at registration
    /// with an MVCC database). Rows already present — snapshot load
    /// happens before registration — are backfilled as committed at
    /// epoch 0, i.e. visible to every snapshot.
    pub(crate) fn set_mvcc(&mut self, stats: Arc<WalStats>) {
        self.mvcc = true;
        self.meta = vec![Stamp::Committed(0); self.rows.len()];
        self.mvcc_stats = Some(stats);
    }

    /// True if this table keeps version chains.
    pub fn is_mvcc(&self) -> bool {
        self.mvcc
    }

    /// Number of heap slots (live rows + tombstones). Snapshot scans must
    /// visit every slot: a tombstoned slot can still hold history-visible
    /// versions.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Fetch the row image visible to `snapshot` (MVCC only): the latest
    /// image if its begin stamp is visible, else the newest history
    /// version whose `[begin, end)` range covers the snapshot. A thread's
    /// own pending writes are always visible to it (read-your-writes).
    pub fn get_visible(&self, id: RowId, snapshot: u64) -> Option<&Row> {
        debug_assert!(self.mvcc);
        let me = thread::current().id();
        let slot = id.0 as usize;
        if let Some(row) = self.rows.get(slot).and_then(Option::as_ref) {
            if self.meta[slot].visible(snapshot, me) {
                return Some(row);
            }
        }
        self.history
            .get(&slot)?
            .iter()
            .rev()
            .find(|v| v.begin.visible(snapshot, me) && !v.end.visible(snapshot, me))
            .map(|v| &v.row)
    }

    /// Convert this thread's pending stamps to `Committed(epoch)`. Called
    /// at commit, after the epoch is allocated and before it is published
    /// to the visibility watermark. Intermediate images a multi-statement
    /// transaction superseded within itself get `begin == end == epoch` —
    /// an empty visibility range, reclaimed by the next vacuum.
    pub(crate) fn stamp_pending(&mut self, epoch: u64) {
        let me = thread::current().id();
        let pending = std::mem::take(&mut self.pending_slots);
        for id in pending {
            let slot = id.0 as usize;
            let mut still_pending = false;
            if self.rows.get(slot).is_some_and(Option::is_some) {
                if self.meta[slot] == Stamp::Pending(me) {
                    self.meta[slot] = Stamp::Committed(epoch);
                } else if matches!(self.meta[slot], Stamp::Pending(_)) {
                    still_pending = true;
                }
            }
            if let Some(versions) = self.history.get_mut(&slot) {
                for v in versions {
                    if v.begin == Stamp::Pending(me) {
                        v.begin = Stamp::Committed(epoch);
                    } else if matches!(v.begin, Stamp::Pending(_)) {
                        still_pending = true;
                    }
                    if v.end == Stamp::Pending(me) {
                        v.end = Stamp::Committed(epoch);
                    } else if matches!(v.end, Stamp::Pending(_)) {
                        still_pending = true;
                    }
                }
            }
            if still_pending {
                self.pending_slots.push(id);
            }
        }
    }

    /// Drop history versions no snapshot at or after `horizon` can reach,
    /// removing index entries that no surviving image needs. Returns the
    /// number of versions reclaimed.
    pub(crate) fn vacuum(&mut self, horizon: u64) -> u64 {
        if !self.mvcc {
            return 0;
        }
        let mut reclaimed = 0u64;
        let slots: Vec<usize> = self.history.keys().copied().collect();
        for slot in slots {
            let versions = self.history.get_mut(&slot).expect("slot key just listed");
            // A version is dead once its end epoch is committed at or
            // below the horizon: every current and future snapshot sees a
            // newer image (or the deletion). Pending stamps always survive.
            let (dead, keep): (Vec<Version>, Vec<Version>) = versions
                .drain(..)
                .partition(|v| matches!(v.end, Stamp::Committed(e) if e <= horizon));
            *versions = keep;
            if versions.is_empty() {
                self.history.remove(&slot);
            }
            if dead.is_empty() {
                continue;
            }
            reclaimed += dead.len() as u64;
            let id = RowId(slot as u64);
            for ix_pos in 0..self.indexes.len() {
                let mut to_remove: Vec<IndexKey> = Vec::new();
                {
                    let ix = &self.indexes[ix_pos];
                    // Keys the slot still needs: the latest image's plus
                    // every surviving version's.
                    let mut needed: BTreeSet<IndexKey> = BTreeSet::new();
                    if let Some(row) = self.rows.get(slot).and_then(Option::as_ref) {
                        needed.insert(ix.key_of(row));
                    }
                    if let Some(vs) = self.history.get(&slot) {
                        for v in vs {
                            needed.insert(ix.key_of(&v.row));
                        }
                    }
                    let mut seen: BTreeSet<IndexKey> = BTreeSet::new();
                    for v in &dead {
                        let key = ix.key_of(&v.row);
                        if !needed.contains(&key) && seen.insert(key.clone()) {
                            to_remove.push(key);
                        }
                    }
                }
                for key in to_remove {
                    self.indexes[ix_pos].remove(&key, id);
                }
            }
        }
        reclaimed
    }

    /// Record one row mutation for staleness tracking. Called from every
    /// code path that changes the live row population or row contents
    /// (insert/delete/update and their undo twins) — statistics are
    /// advisory, so over-counting on rollback is fine and keeps the
    /// accounting one-directional.
    fn note_write(&self) {
        self.writes_since_analyze.fetch_add(1, Ordering::Relaxed);
    }

    /// Recompute planner statistics from the live latest row images and
    /// cache the snapshot. Takes `&self`: callers hold (at least) the read
    /// side of the table lock, which already excludes writers.
    pub fn analyze(&self) -> Arc<TableStatistics> {
        let mut slot = self.stats.lock().expect("stats lock poisoned");
        self.analyze_locked(&mut slot)
    }

    /// The scan itself, run while holding the stats mutex: concurrent
    /// [`Table::statistics`] callers block on the mutex and then see the
    /// fresh snapshot instead of each repeating the full-table scan (the
    /// cold-cache stampede would otherwise multiply the one-time analyze
    /// cost by the reader count).
    fn analyze_locked(
        &self,
        slot: &mut Option<Arc<TableStatistics>>,
    ) -> Arc<TableStatistics> {
        let snapshot =
            Arc::new(stats::analyze_rows(self.schema.arity(), self.scan().map(|(_, r)| r)));
        self.writes_since_analyze.store(0, Ordering::Relaxed);
        *slot = Some(Arc::clone(&snapshot));
        snapshot
    }

    /// Current planner statistics, re-analyzing if none were ever computed
    /// or the table has drifted past the staleness threshold
    /// (`max(MIN_STALE_WRITES, analyzed_rows / STALE_FRACTION)` mutations
    /// since the last analyze).
    pub fn statistics(&self) -> Arc<TableStatistics> {
        let mut slot = self.stats.lock().expect("stats lock poisoned");
        if let Some(cached) = slot.as_ref() {
            let threshold = MIN_STALE_WRITES.max(cached.analyzed_rows / STALE_FRACTION);
            if self.writes_since_analyze.load(Ordering::Relaxed) < threshold {
                return Arc::clone(cached);
            }
        }
        self.analyze_locked(&mut slot)
    }

    /// Mutations recorded since the last analyze (for tests and explain).
    pub fn writes_since_analyze(&self) -> u64 {
        self.writes_since_analyze.load(Ordering::Relaxed)
    }

    fn bump_versions_created(&self) {
        if let Some(stats) = &self.mvcc_stats {
            stats.versions_created.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add a secondary index, building it from existing rows. Fails (and
    /// leaves the table unchanged) if `unique` is violated by current data.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.iter().any(|ix| ix.def.name.eq_ignore_ascii_case(&def.name)) {
            return Err(Error::IndexExists(def.name));
        }
        for &c in &def.columns {
            if c >= self.schema.arity() {
                return Err(Error::NoSuchColumn(format!("{}[{}]", self.schema.name, c)));
            }
        }
        let mut ix = Index::new(def);
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                let key = ix.key_of(row);
                ix.check_unique(&key)?;
                ix.insert(key, RowId(slot as u64));
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Drop an index by name. The primary-key index cannot be dropped.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|ix| ix.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::NoSuchIndex(name.to_owned()))?;
        if self.indexes[pos].def.name == format!("pk_{}", self.schema.name) {
            return Err(Error::ExecError(format!("cannot drop primary key of `{}`", self.schema.name)));
        }
        self.indexes.remove(pos);
        Ok(())
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.def.name.eq_ignore_ascii_case(name))
    }

    /// Validate a full row (schema order) and fill AUTO_INCREMENT slots.
    fn prepare_row(&mut self, values: Vec<Value>) -> Result<Row> {
        if values.len() != self.schema.arity() {
            return Err(Error::ExecError(format!(
                "table `{}` has {} columns, {} values given",
                self.schema.name,
                self.schema.arity(),
                values.len()
            )));
        }
        let mut row = Vec::with_capacity(values.len());
        for (i, v) in values.into_iter().enumerate() {
            let col = &self.schema.columns[i];
            let v = col.check(v)?;
            if v.is_null() && col.auto_increment {
                let next = self.auto_next[i];
                self.auto_next[i] = next + 1;
                self.last_auto = Some(next);
                row.push(Value::Int(next));
            } else {
                if let (Value::Int(given), true) = (&v, col.auto_increment) {
                    // Explicit value supplied for an auto column: advance
                    // the counter past it, as MySQL does.
                    if *given >= self.auto_next[i] {
                        self.auto_next[i] = given + 1;
                    }
                }
                row.push(v);
            }
        }
        Ok(row)
    }

    /// Insert a row (values in schema order; use [`Value::Null`] to request
    /// AUTO_INCREMENT or a default). Returns the new row id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        let row = self.prepare_row(values)?;
        // Validate all unique indexes before touching any of them, so a
        // failed insert leaves every index unchanged.
        let keys: Vec<IndexKey> = self.indexes.iter().map(|ix| ix.key_of(&row)).collect();
        for (i, key) in keys.iter().enumerate() {
            self.check_unique_live(i, key)?;
        }
        let id = RowId(self.rows.len() as u64);
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(key, id);
        }
        self.rows.push(Some(row));
        self.live += 1;
        self.note_write();
        if self.mvcc {
            self.meta.push(Stamp::Pending(thread::current().id()));
            self.pending_slots.push(id);
        }
        Ok(id)
    }

    /// Uniqueness check that tolerates the dangling index entries MVCC's
    /// deferred cleanup leaves behind: a key conflicts only if some row's
    /// *latest* image actually carries it. Equivalent to
    /// [`Index::check_unique`] when MVCC is off (every entry is live).
    fn check_unique_live(&self, ix_pos: usize, key: &IndexKey) -> Result<()> {
        let ix = &self.indexes[ix_pos];
        if !self.mvcc {
            return ix.check_unique(key);
        }
        if !ix.def.unique || key.0.iter().any(Value::is_null) {
            return Ok(());
        }
        for id in ix.get_eq(key) {
            if self.get(id).is_some_and(|row| &ix.key_of(row) == key) {
                return Err(Error::UniqueViolation {
                    index: ix.def.name.clone(),
                    key: format!(
                        "({})",
                        key.0.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Re-insert a previously deleted row at its original id (transaction
    /// rollback of a DELETE). The slot must be a tombstone.
    pub(crate) fn undelete(&mut self, id: RowId, row: Row) -> Result<()> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(Error::NoSuchRow(id.0))?;
        if slot.is_some() {
            return Err(Error::ExecError(format!("slot {} is occupied", id.0)));
        }
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, id);
        }
        *slot = Some(row);
        self.live += 1;
        self.note_write();
        Ok(())
    }

    /// Delete a row by id, returning the removed values (for undo logs).
    ///
    /// Under MVCC the image moves into the slot's history (ended by this
    /// writer's pending stamp) and index entries stay put — an older
    /// snapshot still needs them. Vacuum reclaims both later.
    pub fn delete(&mut self, id: RowId) -> Result<Row> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(Error::NoSuchRow(id.0))?;
        let row = slot.take().ok_or(Error::NoSuchRow(id.0))?;
        self.live -= 1;
        self.note_write();
        if self.mvcc {
            let begin = self.meta[id.0 as usize];
            self.history.entry(id.0 as usize).or_default().push(Version {
                begin,
                end: Stamp::Pending(thread::current().id()),
                row: row.clone(),
            });
            self.pending_slots.push(id);
            self.bump_versions_created();
            return Ok(row);
        }
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.remove(&key, id);
        }
        Ok(row)
    }

    /// Replace a row's values, returning the old values (for undo logs).
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> Result<Row> {
        let old = self
            .rows
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(Error::NoSuchRow(id.0))?
            .clone();
        let new = self.prepare_row(values)?;
        // Uniqueness: only keys that actually change can conflict.
        let changes: Vec<(usize, IndexKey, IndexKey)> = self
            .indexes
            .iter()
            .enumerate()
            .filter_map(|(i, ix)| {
                let old_key = ix.key_of(&old);
                let new_key = ix.key_of(&new);
                (old_key != new_key).then_some((i, old_key, new_key))
            })
            .collect();
        for (i, _, new_key) in &changes {
            self.check_unique_live(*i, new_key)?;
        }
        self.note_write();
        if self.mvcc {
            // Insert new keys but keep the old ones: snapshots pinned
            // before this commit still look the old row up by them.
            // (Index::insert is set-based, so re-acquiring a key the slot
            // held earlier in its history is a no-op.)
            for (i, _, new_key) in changes {
                self.indexes[i].insert(new_key, id);
            }
            let slot = id.0 as usize;
            self.history.entry(slot).or_default().push(Version {
                begin: self.meta[slot],
                end: Stamp::Pending(thread::current().id()),
                row: old.clone(),
            });
            self.meta[slot] = Stamp::Pending(thread::current().id());
            self.rows[slot] = Some(new);
            self.pending_slots.push(id);
            self.bump_versions_created();
            return Ok(old);
        }
        for (i, old_key, new_key) in changes {
            self.indexes[i].remove(&old_key, id);
            self.indexes[i].insert(new_key, id);
        }
        self.rows[id.0 as usize] = Some(new);
        Ok(old)
    }

    /// Undo an uncommitted INSERT: free the slot and remove its index
    /// entries. The row was never committed and occupies a fresh slot, so
    /// under MVCC there is no history to preserve and the removal is safe.
    pub(crate) fn rollback_insert(&mut self, id: RowId) -> Result<()> {
        if !self.mvcc {
            return self.delete(id).map(drop);
        }
        let row = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(Error::NoSuchRow(id.0))?
            .take()
            .ok_or(Error::NoSuchRow(id.0))?;
        self.live -= 1;
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.remove(&key, id);
        }
        self.pending_slots.retain(|&p| p != id);
        self.note_write();
        Ok(())
    }

    /// Undo an uncommitted DELETE. Under MVCC the image is recovered from
    /// the history version the delete pushed (its index entries were never
    /// removed, so none need re-adding).
    pub(crate) fn rollback_delete(&mut self, id: RowId, row: Row) -> Result<()> {
        if !self.mvcc {
            return self.undelete(id, row);
        }
        let slot = id.0 as usize;
        let versions = self.history.get_mut(&slot).ok_or(Error::NoSuchRow(id.0))?;
        let v = versions.pop().ok_or(Error::NoSuchRow(id.0))?;
        if versions.is_empty() {
            self.history.remove(&slot);
        }
        self.rows[slot] = Some(v.row);
        self.meta[slot] = v.begin;
        self.live += 1;
        self.pending_slots.retain(|&p| p != id);
        self.note_write();
        Ok(())
    }

    /// Undo an uncommitted UPDATE by popping the history version it
    /// pushed. Keys the update added are removed again — unless an older
    /// history version for this slot also carries the key (committed
    /// `a -> b -> a` within one transaction), in which case the entry
    /// still backs that older image.
    pub(crate) fn rollback_update(&mut self, id: RowId, values: Vec<Value>) -> Result<()> {
        if !self.mvcc {
            return self.update(id, values).map(drop);
        }
        let slot = id.0 as usize;
        let v = {
            let versions = self.history.get_mut(&slot).ok_or(Error::NoSuchRow(id.0))?;
            let v = versions.pop().ok_or(Error::NoSuchRow(id.0))?;
            if versions.is_empty() {
                self.history.remove(&slot);
            }
            v
        };
        let current = self
            .rows
            .get_mut(slot)
            .ok_or(Error::NoSuchRow(id.0))?
            .take()
            .ok_or(Error::NoSuchRow(id.0))?;
        for ix_pos in 0..self.indexes.len() {
            let new_key = self.indexes[ix_pos].key_of(&current);
            if new_key == self.indexes[ix_pos].key_of(&v.row) {
                continue;
            }
            let still_needed = self
                .history
                .get(&slot)
                .is_some_and(|vs| vs.iter().any(|sv| self.indexes[ix_pos].key_of(&sv.row) == new_key));
            if !still_needed {
                self.indexes[ix_pos].remove(&new_key, id);
            }
        }
        self.rows[slot] = Some(v.row);
        self.meta[slot] = v.begin;
        self.pending_slots.retain(|&p| p != id);
        self.note_write();
        Ok(())
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Iterate all live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (RowId(i as u64), row)))
    }

    /// Internal integrity check used by property tests: every index entry
    /// points at a live row with a matching key, and every live row appears
    /// exactly once in every index. Under MVCC an entry may instead be
    /// backed by a history version (deferred cleanup), but never by
    /// nothing.
    pub fn check_integrity(&self) -> Result<()> {
        for ix in &self.indexes {
            let mut seen = 0usize;
            for (key, ids) in ix.iter() {
                for &id in ids {
                    let latest = self.get(id);
                    if let Some(row) = latest {
                        if &ix.key_of(row) == key {
                            seen += 1;
                            continue;
                        }
                    }
                    if self.mvcc {
                        let backed = self
                            .history
                            .get(&(id.0 as usize))
                            .is_some_and(|vs| vs.iter().any(|v| &ix.key_of(&v.row) == key));
                        if backed {
                            continue;
                        }
                        return Err(Error::ExecError(format!(
                            "index `{}` has a dangling entry for row {} backed by no version",
                            ix.def.name, id.0
                        )));
                    }
                    if latest.is_none() {
                        return Err(Error::ExecError(format!(
                            "index `{}` points at dead row {}",
                            ix.def.name, id.0
                        )));
                    }
                    return Err(Error::ExecError(format!(
                        "index `{}` key mismatch for row {}",
                        ix.def.name, id.0
                    )));
                }
            }
            if seen != self.live {
                return Err(Error::ExecError(format!(
                    "index `{}` has {} entries for {} live rows",
                    ix.def.name, seen, self.live
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "files",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::nullable("size", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name".into(), columns: vec![1], unique: true })
            .unwrap();
        t
    }

    #[test]
    fn insert_auto_increment() {
        let mut t = table();
        let id1 = t.insert(vec![Value::Null, "a".into(), Value::Int(1)]).unwrap();
        let id2 = t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(t.get(id1).unwrap()[0], Value::Int(1));
        assert_eq!(t.get(id2).unwrap()[0], Value::Int(2));
        assert_eq!(t.last_auto_value(), Some(2));
        assert_eq!(t.len(), 2);
        t.check_integrity().unwrap();
    }

    #[test]
    fn explicit_auto_value_advances_counter() {
        let mut t = table();
        t.insert(vec![Value::Int(10), "a".into(), Value::Null]).unwrap();
        let id = t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(11));
    }

    #[test]
    fn unique_index_rejects_duplicates_atomically() {
        let mut t = table();
        t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        let err = t.insert(vec![Value::Null, "a".into(), Value::Null]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
        // failed insert must not leave partial index entries
        t.check_integrity().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_and_undelete() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        let row = t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(id).is_none());
        assert!(t.delete(id).is_err());
        t.undelete(id, row).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[1], "a".into());
        t.check_integrity().unwrap();
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        // renaming a -> b collides on the unique name index
        let err = t.update(id, vec![Value::Int(1), "b".into(), Value::Int(5)]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
        t.check_integrity().unwrap();
        // renaming a -> c works
        let old = t.update(id, vec![Value::Int(1), "c".into(), Value::Int(6)]).unwrap();
        assert_eq!(old[1], "a".into());
        t.check_integrity().unwrap();
        let ix = t.index("by_name").unwrap();
        assert_eq!(ix.get_eq(&IndexKey(vec!["c".into()])).collect::<Vec<_>>(), vec![id]);
        assert_eq!(ix.count_eq(&IndexKey(vec!["a".into()])), 0);
    }

    #[test]
    fn update_same_key_no_self_collision() {
        let mut t = table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(5)]).unwrap();
        // same unique key, different other column: must not self-collide
        t.update(id, vec![Value::Int(1), "a".into(), Value::Int(9)]).unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Int(9));
    }

    #[test]
    fn create_index_on_existing_data_checks_unique() {
        let mut t = table();
        t.insert(vec![Value::Null, "a".into(), Value::Int(1)]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Int(1)]).unwrap();
        let err = t.create_index(IndexDef { name: "u_size".into(), columns: vec![2], unique: true });
        assert!(err.is_err());
        // non-unique works
        t.create_index(IndexDef { name: "by_size".into(), columns: vec![2], unique: false })
            .unwrap();
        t.check_integrity().unwrap();
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::Null, "a".into()]).is_err());
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = table();
        let a = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Null]).unwrap();
        t.delete(a).unwrap();
        let names: Vec<String> =
            t.scan().map(|(_, r)| r[1].to_string()).collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn statistics_cache_and_staleness() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Null, format!("n{i}").into(), Value::Int(i % 3)]).unwrap();
        }
        let s = t.statistics();
        assert_eq!(s.analyzed_rows, 10);
        assert_eq!(s.columns[1].distinct, 10);
        assert_eq!(s.columns[2].distinct, 3);
        assert_eq!(t.writes_since_analyze(), 0);
        // One more write stays under the MIN_STALE_WRITES floor: the
        // cached snapshot is reused as-is.
        t.insert(vec![Value::Null, "extra".into(), Value::Null]).unwrap();
        assert_eq!(t.statistics().analyzed_rows, 10);
        // Crossing the floor refreshes.
        for i in 0..crate::stats::MIN_STALE_WRITES {
            t.insert(vec![Value::Null, format!("m{i}").into(), Value::Null]).unwrap();
        }
        assert_eq!(t.statistics().analyzed_rows, 11 + crate::stats::MIN_STALE_WRITES);
        assert_eq!(t.writes_since_analyze(), 0);
    }

    fn mvcc_table() -> Table {
        let mut t = table();
        t.set_mvcc(Arc::new(WalStats::default()));
        t
    }

    #[test]
    fn mvcc_update_keeps_old_version_visible() {
        let mut t = mvcc_table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Int(1)]).unwrap();
        t.stamp_pending(1);
        t.update(id, vec![Value::Int(1), "b".into(), Value::Int(2)]).unwrap();
        t.stamp_pending(2);
        assert!(t.get_visible(id, 0).is_none(), "not yet inserted at epoch 0");
        assert_eq!(t.get_visible(id, 1).unwrap()[1], "a".into());
        assert_eq!(t.get_visible(id, 2).unwrap()[1], "b".into());
        // both keys are in the index until vacuum; integrity holds anyway
        let ix = t.index("by_name").unwrap();
        assert_eq!(ix.count_eq(&IndexKey(vec!["a".into()])), 1);
        assert_eq!(ix.count_eq(&IndexKey(vec!["b".into()])), 1);
        t.check_integrity().unwrap();
    }

    #[test]
    fn mvcc_delete_then_vacuum_reclaims_versions_and_keys() {
        let mut t = mvcc_table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.stamp_pending(1);
        t.delete(id).unwrap();
        t.stamp_pending(2);
        assert_eq!(t.get_visible(id, 1).unwrap()[1], "a".into());
        assert!(t.get_visible(id, 2).is_none());
        // a snapshot at 1 is still pinned: nothing reclaimable
        assert_eq!(t.vacuum(1), 0);
        assert_eq!(t.get_visible(id, 1).unwrap()[1], "a".into());
        // horizon passes the delete: version and its index keys go away
        assert_eq!(t.vacuum(2), 1);
        assert!(t.get_visible(id, 1).is_none());
        assert_eq!(t.index("by_name").unwrap().count_eq(&IndexKey(vec!["a".into()])), 0);
        t.check_integrity().unwrap();
    }

    #[test]
    fn mvcc_pending_rows_invisible_to_other_threads() {
        let mut t = mvcc_table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        // the writing thread sees its own pending row at any snapshot
        assert!(t.get_visible(id, 0).is_some());
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(t.get_visible(id, 0).is_none(), "pending row leaked to another thread");
                assert!(t.get_visible(id, u64::MAX).is_none());
            });
        });
        t.stamp_pending(3);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(t.get_visible(id, 2).is_none());
                assert!(t.get_visible(id, 3).is_some());
            });
        });
    }

    #[test]
    fn mvcc_rollback_update_restores_index_through_a_b_a() {
        let mut t = mvcc_table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.stamp_pending(1);
        // one transaction: a -> b -> a, then roll both updates back
        let old1 = t.update(id, vec![Value::Int(1), "b".into(), Value::Null]).unwrap();
        let old2 = t.update(id, vec![Value::Int(1), "a".into(), Value::Null]).unwrap();
        t.rollback_update(id, old2.clone()).unwrap();
        t.rollback_update(id, old1.clone()).unwrap();
        assert_eq!(t.get_visible(id, 1).unwrap()[1], "a".into());
        let ix = t.index("by_name").unwrap();
        assert_eq!(ix.count_eq(&IndexKey(vec!["a".into()])), 1);
        assert_eq!(ix.count_eq(&IndexKey(vec!["b".into()])), 0);
        t.check_integrity().unwrap();
    }

    #[test]
    fn mvcc_rollback_insert_and_delete() {
        let mut t = mvcc_table();
        let kept = t.insert(vec![Value::Null, "keep".into(), Value::Null]).unwrap();
        t.stamp_pending(1);
        // rolled-back insert leaves no trace
        let id = t.insert(vec![Value::Null, "x".into(), Value::Null]).unwrap();
        t.rollback_insert(id).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.index("by_name").unwrap().count_eq(&IndexKey(vec!["x".into()])), 0);
        // rolled-back delete restores the committed image and stamp
        let row = t.delete(kept).unwrap();
        t.rollback_delete(kept, row).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_visible(kept, 1).unwrap()[1], "keep".into());
        t.stamp_pending(2); // no-op: nothing left pending
        assert_eq!(t.get_visible(kept, 1).unwrap()[1], "keep".into());
        t.check_integrity().unwrap();
    }

    #[test]
    fn mvcc_unique_check_ignores_dangling_entries() {
        let mut t = mvcc_table();
        let id = t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.stamp_pending(1);
        t.update(id, vec![Value::Int(1), "b".into(), Value::Null]).unwrap();
        t.stamp_pending(2);
        // "a" is only a dangling entry now: a new row may take it
        t.insert(vec![Value::Null, "a".into(), Value::Null]).unwrap();
        t.stamp_pending(3);
        // "b" is live: still rejected
        let err = t.insert(vec![Value::Null, "b".into(), Value::Null]);
        assert!(matches!(err, Err(Error::UniqueViolation { .. })));
        t.check_integrity().unwrap();
    }
}
