//! Typed values: the cell contents of every table.
//!
//! `relstore` supports the same scalar types the MCS schema needs
//! (paper §5: user-defined attributes may be "string, float, date, time
//! and date/time"), plus integers and booleans used by the predefined
//! schema columns.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The type of a [`Value`] / a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (VARCHAR/TEXT).
    Str,
    /// Boolean.
    Bool,
    /// Calendar date (year-month-day).
    Date,
    /// Time of day (hour:minute:second).
    Time,
    /// Date + time of day.
    DateTime,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INTEGER",
            ValueType::Float => "DOUBLE",
            ValueType::Str => "VARCHAR",
            ValueType::Bool => "BOOLEAN",
            ValueType::Date => "DATE",
            ValueType::Time => "TIME",
            ValueType::DateTime => "DATETIME",
        };
        f.write_str(s)
    }
}

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2003.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31 (validated against the month).
    pub day: u8,
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date> {
        if !(1..=12).contains(&month) {
            return Err(Error::BadLiteral(format!("month {month} out of range")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(Error::BadLiteral(format!("day {day} invalid for {year}-{month:02}")));
        }
        Ok(Date { year, month, day })
    }

    /// Days since 1970-01-01 (may be negative). Uses Howard Hinnant's
    /// `days_from_civil` algorithm.
    pub fn days_from_epoch(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`Date::days_from_epoch`].
    pub fn from_days_from_epoch(z: i64) -> Date {
        let z = z + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
        Date { year: (y + i64::from(m <= 2)) as i32, month: m, day: d }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Date> {
        let parts: Vec<&str> = s.split('-').collect();
        // A leading '-' for negative years is not supported; MCS never needs it.
        if parts.len() != 3 {
            return Err(Error::BadLiteral(format!("bad date `{s}` (want YYYY-MM-DD)")));
        }
        let year: i32 = parts[0].parse().map_err(|_| Error::BadLiteral(format!("bad year in `{s}`")))?;
        let month: u8 = parts[1].parse().map_err(|_| Error::BadLiteral(format!("bad month in `{s}`")))?;
        let day: u8 = parts[2].parse().map_err(|_| Error::BadLiteral(format!("bad day in `{s}`")))?;
        Date::new(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// A time of day with second resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time {
    /// Hour 0..=23.
    pub hour: u8,
    /// Minute 0..=59.
    pub minute: u8,
    /// Second 0..=59.
    pub second: u8,
}

impl Time {
    /// Construct a validated time of day.
    pub fn new(hour: u8, minute: u8, second: u8) -> Result<Time> {
        if hour > 23 || minute > 59 || second > 59 {
            return Err(Error::BadLiteral(format!("bad time {hour:02}:{minute:02}:{second:02}")));
        }
        Ok(Time { hour, minute, second })
    }

    /// Seconds since midnight.
    pub fn seconds_from_midnight(&self) -> u32 {
        u32::from(self.hour) * 3600 + u32::from(self.minute) * 60 + u32::from(self.second)
    }

    /// Parse `HH:MM:SS` (or `HH:MM`).
    pub fn parse(s: &str) -> Result<Time> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 2 && parts.len() != 3 {
            return Err(Error::BadLiteral(format!("bad time `{s}` (want HH:MM[:SS])")));
        }
        let hour: u8 = parts[0].parse().map_err(|_| Error::BadLiteral(format!("bad hour in `{s}`")))?;
        let minute: u8 =
            parts[1].parse().map_err(|_| Error::BadLiteral(format!("bad minute in `{s}`")))?;
        let second: u8 = if parts.len() == 3 {
            parts[2].parse().map_err(|_| Error::BadLiteral(format!("bad second in `{s}`")))?
        } else {
            0
        };
        Time::new(hour, minute, second)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
    }
}

/// A date + time-of-day pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// Date component.
    pub date: Date,
    /// Time component.
    pub time: Time,
}

impl DateTime {
    /// Construct from already-validated parts.
    pub fn new(date: Date, time: Time) -> DateTime {
        DateTime { date, time }
    }

    /// Seconds since the Unix epoch (UTC assumed; may be negative).
    pub fn seconds_from_epoch(&self) -> i64 {
        self.date.days_from_epoch() * 86_400 + i64::from(self.time.seconds_from_midnight())
    }

    /// Inverse of [`DateTime::seconds_from_epoch`].
    pub fn from_seconds_from_epoch(secs: i64) -> DateTime {
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400) as u32;
        DateTime {
            date: Date::from_days_from_epoch(days),
            time: Time {
                hour: (sod / 3600) as u8,
                minute: ((sod % 3600) / 60) as u8,
                second: (sod % 60) as u8,
            },
        }
    }

    /// Parse `YYYY-MM-DD HH:MM:SS` or `YYYY-MM-DDTHH:MM:SS`.
    pub fn parse(s: &str) -> Result<DateTime> {
        let sep = s.find([' ', 'T']).ok_or_else(|| {
            Error::BadLiteral(format!("bad datetime `{s}` (want YYYY-MM-DD HH:MM:SS)"))
        })?;
        let date = Date::parse(&s[..sep])?;
        let time = Time::parse(&s[sep + 1..])?;
        Ok(DateTime { date, time })
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.date, self.time)
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Compares as the smallest value in index order; `=` with
    /// NULL is never true in predicates (three-valued logic collapsed to
    /// false, like MySQL's non-`<=>` comparisons).
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String. `Arc<str>` makes clones (index keys, result rows)
    /// reference-count bumps instead of heap copies.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Calendar date.
    Date(Date),
    /// Time of day.
    Time(Time),
    /// Date and time.
    DateTime(DateTime),
}

impl Value {
    /// The type of this value, or `None` for NULL (NULL has every type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Date(_) => Some(ValueType::Date),
            Value::Time(_) => Some(ValueType::Time),
            Value::DateTime(_) => Some(ValueType::DateTime),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Can this value be stored in a column of type `ty`?
    /// Ints are accepted by FLOAT columns (widening); everything else is exact.
    pub fn fits(&self, ty: ValueType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ValueType::Float) => true,
            (v, t) => v.value_type() == Some(t),
        }
    }

    /// Coerce for storage into a column of type `ty` (applies int→float
    /// widening). Caller must have checked [`Value::fits`].
    pub fn coerce(self, ty: ValueType) -> Value {
        match (self, ty) {
            (Value::Int(i), ValueType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// SQL-style comparison for predicate evaluation: returns `None` when
    /// either side is NULL or the types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Time(a), Time(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by indexes and ORDER BY. NULL sorts first;
    /// values of different types sort by a fixed type rank (mixed-type
    /// index keys cannot arise through the typed schema, but the ordering
    /// must still be total). NaN sorts above all other floats.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
                Value::Time(_) => 5,
                Value::DateTime(_) => 6,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            _ => unreachable!("rank() separated mixed types"),
        }
    }

    /// Parse a string rendering into a value of type `ty` (used by the
    /// MCS attribute layer, which stores typed values in a narrow table).
    pub fn parse_as(s: &str, ty: ValueType) -> Result<Value> {
        Ok(match ty {
            ValueType::Int => {
                Value::Int(s.parse().map_err(|_| Error::BadLiteral(format!("bad int `{s}`")))?)
            }
            ValueType::Float => {
                Value::Float(s.parse().map_err(|_| Error::BadLiteral(format!("bad float `{s}`")))?)
            }
            ValueType::Str => Value::Str(Arc::from(s)),
            ValueType::Bool => match s {
                "true" | "TRUE" | "1" => Value::Bool(true),
                "false" | "FALSE" | "0" => Value::Bool(false),
                _ => return Err(Error::BadLiteral(format!("bad bool `{s}`"))),
            },
            ValueType::Date => Value::Date(Date::parse(s)?),
            ValueType::Time => Value::Time(Time::parse(s)?),
            ValueType::DateTime => Value::DateTime(DateTime::parse(s)?),
        })
    }

    /// Extract an `i64`, erroring on any other type.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::EvalError(format!("expected INTEGER, got {other}"))),
        }
    }

    /// Extract a `&str`, erroring on any other type.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::EvalError(format!("expected VARCHAR, got {other}"))),
        }
    }

    /// Extract an `f64` (accepting INTEGER), erroring on any other type.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::EvalError(format!("expected DOUBLE, got {other}"))),
        }
    }

    /// Extract a `bool`, erroring on any other type.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::EvalError(format!("expected BOOLEAN, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::DateTime(dt) => write!(f, "{dt}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        let d = Date::new(2003, 11, 15).unwrap(); // SC'03 started Nov 15 2003
        let days = d.days_from_epoch();
        assert_eq!(Date::from_days_from_epoch(days), d);
        assert_eq!(Date::from_days_from_epoch(0), Date::new(1970, 1, 1).unwrap());
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2003, 2, 29).is_err());
        assert!(Date::new(2004, 2, 29).is_ok()); // leap year
        assert!(Date::new(1900, 2, 29).is_err()); // century non-leap
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-year leap
        assert!(Date::new(2003, 13, 1).is_err());
        assert!(Date::new(2003, 4, 31).is_err());
    }

    #[test]
    fn date_parse_display() {
        let d = Date::parse("2003-11-15").unwrap();
        assert_eq!(d.to_string(), "2003-11-15");
        assert!(Date::parse("2003/11/15").is_err());
        assert!(Date::parse("2003-11").is_err());
    }

    #[test]
    fn time_parse_bounds() {
        assert!(Time::parse("23:59:59").is_ok());
        assert!(Time::parse("24:00:00").is_err());
        assert_eq!(Time::parse("08:30").unwrap(), Time::new(8, 30, 0).unwrap());
        assert_eq!(Time::new(1, 2, 3).unwrap().seconds_from_midnight(), 3723);
    }

    #[test]
    fn datetime_roundtrip() {
        let dt = DateTime::parse("2002-12-31 23:59:59").unwrap();
        assert_eq!(DateTime::from_seconds_from_epoch(dt.seconds_from_epoch()), dt);
        let t = DateTime::parse("1970-01-01T00:00:00").unwrap();
        assert_eq!(t.seconds_from_epoch(), 0);
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn index_cmp_total_order() {
        // NULL first, NaN above all floats, cross-type ordered by rank.
        assert_eq!(Value::Null.index_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Float(f64::NAN).index_cmp(&Value::Float(f64::INFINITY)), Ordering::Greater);
        assert_eq!(Value::Int(5).index_cmp(&Value::Str("a".into())), Ordering::Less);
        assert_eq!(Value::Int(3).index_cmp(&Value::Float(3.0)), Ordering::Equal);
    }

    #[test]
    fn fits_and_coerce() {
        assert!(Value::Int(1).fits(ValueType::Float));
        assert!(!Value::Float(1.0).fits(ValueType::Int));
        assert!(Value::Null.fits(ValueType::Date));
        assert_eq!(Value::Int(4).coerce(ValueType::Float), Value::Float(4.0));
    }

    #[test]
    fn parse_as_each_type() {
        assert_eq!(Value::parse_as("42", ValueType::Int).unwrap(), Value::Int(42));
        assert_eq!(Value::parse_as("4.5", ValueType::Float).unwrap(), Value::Float(4.5));
        assert_eq!(Value::parse_as("x", ValueType::Str).unwrap(), Value::Str("x".into()));
        assert_eq!(Value::parse_as("true", ValueType::Bool).unwrap(), Value::Bool(true));
        assert!(Value::parse_as("4.5", ValueType::Int).is_err());
        assert!(matches!(Value::parse_as("2003-01-01", ValueType::Date).unwrap(), Value::Date(_)));
        assert!(matches!(
            Value::parse_as("2003-01-01 10:00:00", ValueType::DateTime).unwrap(),
            Value::DateTime(_)
        ));
    }
}
