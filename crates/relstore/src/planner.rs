//! Access-path selection.
//!
//! Given the conjunctive constraints a WHERE clause places on one table's
//! columns, pick the cheapest access path: full-width index equality, an
//! index prefix scan (optionally range-bounded on the first unconstrained
//! column), or a full table scan. This mirrors the access paths MySQL 4.1
//! used for the MCS workload (paper §7 built indexes on names, ids and
//! (name,id) pairs).

use std::ops::Bound;

use crate::predicate::{BoundExpr, CmpOp};
use crate::table::Table;
use crate::value::Value;

/// Chosen access path for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// Walk index `index` (position in [`Table::indexes`]): rows whose key
    /// starts with `prefix`, with the column after the prefix bounded by
    /// `low`/`high`.
    Index {
        /// Index position within the table's index list.
        index: usize,
        /// Equality-constrained leading key columns.
        prefix: Vec<Value>,
        /// Lower bound on the next key column.
        low: Bound<Value>,
        /// Upper bound on the next key column.
        high: Bound<Value>,
    },
}

impl AccessPath {
    /// True if this is a full-width equality lookup (point query).
    pub fn is_point_lookup(&self, table: &Table) -> bool {
        match self {
            AccessPath::Index { index, prefix, low, high } => {
                matches!((low, high), (Bound::Unbounded, Bound::Unbounded))
                    && prefix.len() == table.indexes()[*index].def.columns.len()
            }
            AccessPath::FullScan => false,
        }
    }
}

/// Per-column constraints extracted from conjuncts.
#[derive(Debug, Default, Clone)]
struct ColConstraint {
    eq: Option<Value>,
    low: Option<(Value, bool)>,  // (bound, inclusive)
    high: Option<(Value, bool)>, // (bound, inclusive)
}

/// Extract sargable constraints for the table occupying row-buffer slots
/// `[base, base + arity)` from the conjuncts of `pred`.
fn constraints(pred: &BoundExpr, base: usize, arity: usize) -> Vec<ColConstraint> {
    let mut cons = vec![ColConstraint::default(); arity];
    for c in pred.conjuncts() {
        let BoundExpr::Cmp(op, a, b) = c else { continue };
        // normalize to slot <op> literal
        let (slot, lit, op) = match (&**a, &**b) {
            (BoundExpr::Slot(s), BoundExpr::Literal(v)) => (*s, v, *op),
            (BoundExpr::Literal(v), BoundExpr::Slot(s)) => (*s, v, flip(*op)),
            _ => continue,
        };
        if slot < base || slot >= base + arity || lit.is_null() {
            continue;
        }
        let col = slot - base;
        match op {
            CmpOp::Eq => cons[col].eq = Some(lit.clone()),
            CmpOp::Gt => tighten_low(&mut cons[col], lit.clone(), false),
            CmpOp::Ge => tighten_low(&mut cons[col], lit.clone(), true),
            CmpOp::Lt => tighten_high(&mut cons[col], lit.clone(), false),
            CmpOp::Le => tighten_high(&mut cons[col], lit.clone(), true),
            CmpOp::Ne => {}
        }
    }
    cons
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn tighten_low(c: &mut ColConstraint, v: Value, inclusive: bool) {
    let replace = match &c.low {
        None => true,
        Some((cur, cur_incl)) => match v.index_cmp(cur) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Less => false,
        },
    };
    if replace {
        c.low = Some((v, inclusive));
    }
}

fn tighten_high(c: &mut ColConstraint, v: Value, inclusive: bool) {
    let replace = match &c.high {
        None => true,
        Some((cur, cur_incl)) => match v.index_cmp(cur) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Greater => false,
        },
    };
    if replace {
        c.high = Some((v, inclusive));
    }
}

/// Pick an access path for `table` under `pred` (whose slots for this table
/// start at `base`). Returns [`AccessPath::FullScan`] when no index helps.
pub fn plan_table(table: &Table, pred: Option<&BoundExpr>, base: usize) -> AccessPath {
    let Some(pred) = pred else { return AccessPath::FullScan };
    let cons = constraints(pred, base, table.schema.arity());
    let mut best: Option<(usize, usize, bool)> = None; // (eq_len, index_pos, has_range)
    for (pos, ix) in table.indexes().iter().enumerate() {
        let mut eq_len = 0;
        for &col in &ix.def.columns {
            if cons[col].eq.is_some() {
                eq_len += 1;
            } else {
                break;
            }
        }
        let has_range = ix
            .def
            .columns
            .get(eq_len)
            .is_some_and(|&col| cons[col].low.is_some() || cons[col].high.is_some());
        if eq_len == 0 && !has_range {
            continue;
        }
        let better = match best {
            None => true,
            Some((b_eq, _, b_range)) => {
                eq_len > b_eq || (eq_len == b_eq && has_range && !b_range)
            }
        };
        if better {
            best = Some((eq_len, pos, has_range));
        }
    }
    let Some((eq_len, pos, has_range)) = best else { return AccessPath::FullScan };
    let ix = &table.indexes()[pos];
    let prefix: Vec<Value> = ix.def.columns[..eq_len]
        .iter()
        .map(|&col| cons[col].eq.clone().expect("eq constraint checked"))
        .collect();
    let (low, high) = if has_range {
        let col = ix.def.columns[eq_len];
        let low = match &cons[col].low {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        let high = match &cons[col].high {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        (low, high)
    } else {
        (Bound::Unbounded, Bound::Unbounded)
    };
    AccessPath::Index { index: pos, prefix, low, high }
}

/// Materialize the candidate row ids for an access path.
pub fn candidates(table: &Table, path: &AccessPath) -> Vec<crate::row::RowId> {
    match path {
        AccessPath::FullScan => {
            // Under a pinned MVCC snapshot a full scan must visit every
            // heap slot: a tombstoned slot can still hold the version
            // visible to this snapshot. The visibility filter happens at
            // row-fetch time (`crate::db::snapshot_row`).
            if table.is_mvcc() && crate::db::current_snapshot().is_some() {
                return (0..table.slot_count() as u64).map(crate::row::RowId).collect();
            }
            table.scan().map(|(id, _)| id).collect()
        }
        AccessPath::Index { index, prefix, low, high } => {
            let ix = &table.indexes()[*index];
            if prefix.len() == ix.def.columns.len()
                && matches!((low, high), (Bound::Unbounded, Bound::Unbounded))
            {
                ix.get_eq(&crate::index::IndexKey(prefix.clone())).collect()
            } else {
                let mut out = Vec::new();
                ix.scan_prefix_range(prefix, as_ref(low), as_ref(high), &mut out);
                out
            }
        }
    }
}

fn as_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexDef;
    use crate::predicate::{bind, Expr, Scope};
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::required("version", ValueType::Int),
                ColumnDef::nullable("score", ValueType::Float),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name_ver".into(), columns: vec![1, 2], unique: false })
            .unwrap();
        for i in 0..20i64 {
            t.insert(vec![
                Value::Null,
                format!("f{}", i % 5).into(),
                Value::Int(i),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn plan(t: &Table, where_sql: &Expr) -> AccessPath {
        let scope = Scope::single(&t.schema);
        let be = bind(where_sql, &scope, &[]).unwrap();
        plan_table(t, Some(&be), 0)
    }

    #[test]
    fn picks_pk_point_lookup() {
        let t = table();
        let p = plan(&t, &Expr::col_eq("id", 3i64));
        assert!(p.is_point_lookup(&t));
        assert_eq!(candidates(&t, &p).len(), 1);
    }

    #[test]
    fn picks_composite_prefix() {
        let t = table();
        let e = Expr::col_eq("name", "f1");
        let p = plan(&t, &e);
        match &p {
            AccessPath::Index { index, prefix, .. } => {
                assert_eq!(t.indexes()[*index].def.name, "by_name_ver");
                assert_eq!(prefix.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(candidates(&t, &p).len(), 4); // f1 appears for i=1,6,11,16
    }

    #[test]
    fn eq_prefix_plus_range() {
        let t = table();
        let e = Expr::And(
            Box::new(Expr::col_eq("name", "f1")),
            Box::new(Expr::Cmp(
                CmpOp::Ge,
                Box::new(Expr::col("version")),
                Box::new(Expr::lit(6i64)),
            )),
        );
        let p = plan(&t, &e);
        match &p {
            AccessPath::Index { prefix, low, .. } => {
                assert_eq!(prefix.len(), 1);
                assert_eq!(*low, Bound::Included(Value::Int(6)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(candidates(&t, &p).len(), 3); // versions 6, 11, 16
    }

    #[test]
    fn full_scan_when_no_index_applies() {
        let t = table();
        let e = Expr::col_eq("score", 3.0f64);
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
        assert_eq!(plan_table(&t, None, 0), AccessPath::FullScan);
        assert_eq!(candidates(&t, &AccessPath::FullScan).len(), 20);
    }

    #[test]
    fn range_only_on_first_index_column() {
        let t = table();
        let e = Expr::Cmp(CmpOp::Lt, Box::new(Expr::col("name")), Box::new(Expr::lit("f1")));
        match plan(&t, &e) {
            AccessPath::Index { prefix, high, .. } => {
                assert!(prefix.is_empty());
                assert_eq!(high, Bound::Excluded(Value::from("f1")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conflicting_bounds_tighten() {
        let t = table();
        // version > 3 AND version > 7 -> low bound 7 exclusive (on name-prefixed idx needs name eq too)
        let e = Expr::and_all(vec![
            Expr::col_eq("name", "f0"),
            Expr::Cmp(CmpOp::Gt, Box::new(Expr::col("version")), Box::new(Expr::lit(3i64))),
            Expr::Cmp(CmpOp::Gt, Box::new(Expr::col("version")), Box::new(Expr::lit(7i64))),
        ])
        .unwrap();
        match plan(&t, &e) {
            AccessPath::Index { low, .. } => assert_eq!(low, Bound::Excluded(Value::Int(7))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_disables_index_use() {
        let t = table();
        // OR at the top is not a conjunction of sargables
        let e = Expr::Or(
            Box::new(Expr::col_eq("name", "f0")),
            Box::new(Expr::col_eq("version", 3i64)),
        );
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
    }

    #[test]
    fn null_literal_not_sargable() {
        let t = table();
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::col("name")),
            Box::new(Expr::Literal(Value::Null)),
        );
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
    }
}
