//! Cost-based access-path selection.
//!
//! Given the conjunctive constraints a WHERE clause places on one table's
//! columns, pick the cheapest access path: full-width index equality, an
//! index prefix scan (optionally range-bounded on the first unconstrained
//! column), or a full table scan. This mirrors the access paths MySQL 4.1
//! used for the MCS workload (paper §7 built indexes on names, ids and
//! (name,id) pairs).
//!
//! Candidates are costed with real cardinality information, the way
//! MySQL's optimizer did for the paper's deployment: cheap predicates are
//! measured exactly by *index dives* (a capped walk of the matching key
//! range), and dives that hit the cap fall back to selectivity estimates
//! from the table's cached [`crate::stats`] snapshot. Cost is
//! `log2(rows) + estimated_fetches` for an index path versus `rows` for a
//! full scan; the cheapest plan wins, so a predicate matching most of the
//! table correctly degenerates to the scan it would cause anyway.

use std::ops::Bound;

use crate::predicate::{BoundExpr, CmpOp};
use crate::table::Table;
use crate::value::Value;

/// Cap on index-dive counting: past this many entries the dive stops and
/// the estimate switches to statistics. Bounds planning cost on huge
/// posting ranges.
pub const DIVE_CAP: usize = 1024;

/// Chosen access path for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// Walk index `index` (position in [`Table::indexes`]): rows whose key
    /// starts with `prefix`, with the column after the prefix bounded by
    /// `low`/`high`.
    Index {
        /// Index position within the table's index list.
        index: usize,
        /// Equality-constrained leading key columns.
        prefix: Vec<Value>,
        /// Lower bound on the next key column.
        low: Bound<Value>,
        /// Upper bound on the next key column.
        high: Bound<Value>,
    },
}

impl AccessPath {
    /// True if this is a full-width equality lookup (point query).
    pub fn is_point_lookup(&self, table: &Table) -> bool {
        match self {
            AccessPath::Index { index, prefix, low, high } => {
                matches!((low, high), (Bound::Unbounded, Bound::Unbounded))
                    && prefix.len() == table.indexes()[*index].def.columns.len()
            }
            AccessPath::FullScan => false,
        }
    }

    /// Compact shape string for EXPLAIN output, without estimates:
    /// `t: full scan`, `t: index ua_name_int eq(2)`,
    /// `t: index ua_name_str eq(1)+range`.
    pub fn shape(&self, table: &Table) -> String {
        match self {
            AccessPath::FullScan => format!("{}: full scan", table.schema.name),
            AccessPath::Index { index, prefix, low, high } => {
                let ix = &table.indexes()[*index];
                let ranged = !matches!((low, high), (Bound::Unbounded, Bound::Unbounded));
                let shape = match (prefix.len(), ranged) {
                    (0, _) => "range".to_owned(),
                    (n, true) => format!("eq({n})+range"),
                    (n, false) => format!("eq({n})"),
                };
                format!("{}: index {} {shape}", table.schema.name, ix.def.name)
            }
        }
    }
}

/// A costed physical plan for one table: the chosen path plus the
/// planner's cardinality/cost estimates (surfaced by `EXPLAIN`).
#[derive(Debug, Clone, PartialEq)]
pub struct TablePlan {
    /// The chosen access path.
    pub path: AccessPath,
    /// Estimated rows the path yields before residual filtering.
    pub est_rows: f64,
    /// Estimated cost (index traversal + row fetches, in row units).
    pub cost: f64,
    /// True if the estimate came from an exact (un-capped) index dive
    /// rather than statistics.
    pub exact: bool,
}

impl TablePlan {
    /// Human-readable one-liner for EXPLAIN output, e.g.
    /// `user_attributes: index ua_name_int eq(2) (~4 rows, cost 6.5)`.
    pub fn describe(&self, table: &Table) -> String {
        let src = if self.exact { "" } else { "~" };
        match &self.path {
            AccessPath::FullScan => {
                format!("{} ({src}{} rows)", self.path.shape(table), self.est_rows as u64)
            }
            AccessPath::Index { .. } => format!(
                "{} ({src}{} rows, cost {:.1})",
                self.path.shape(table),
                self.est_rows as u64,
                self.cost
            ),
        }
    }
}

/// Per-column constraints extracted from conjuncts.
#[derive(Debug, Default, Clone)]
struct ColConstraint {
    eq: Option<Value>,
    low: Option<(Value, bool)>,  // (bound, inclusive)
    high: Option<(Value, bool)>, // (bound, inclusive)
}

/// Extract sargable constraints for the table occupying row-buffer slots
/// `[base, base + arity)` from the conjuncts of `pred`.
fn constraints(pred: &BoundExpr, base: usize, arity: usize) -> Vec<ColConstraint> {
    let mut cons = vec![ColConstraint::default(); arity];
    for c in pred.conjuncts() {
        let BoundExpr::Cmp(op, a, b) = c else { continue };
        // normalize to slot <op> literal
        let (slot, lit, op) = match (&**a, &**b) {
            (BoundExpr::Slot(s), BoundExpr::Literal(v)) => (*s, v, *op),
            (BoundExpr::Literal(v), BoundExpr::Slot(s)) => (*s, v, flip(*op)),
            _ => continue,
        };
        if slot < base || slot >= base + arity || lit.is_null() {
            continue;
        }
        let col = slot - base;
        match op {
            CmpOp::Eq => cons[col].eq = Some(lit.clone()),
            CmpOp::Gt => tighten_low(&mut cons[col], lit.clone(), false),
            CmpOp::Ge => tighten_low(&mut cons[col], lit.clone(), true),
            CmpOp::Lt => tighten_high(&mut cons[col], lit.clone(), false),
            CmpOp::Le => tighten_high(&mut cons[col], lit.clone(), true),
            CmpOp::Ne => {}
        }
    }
    cons
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn tighten_low(c: &mut ColConstraint, v: Value, inclusive: bool) {
    let replace = match &c.low {
        None => true,
        Some((cur, cur_incl)) => match v.index_cmp(cur) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Less => false,
        },
    };
    if replace {
        c.low = Some((v, inclusive));
    }
}

fn tighten_high(c: &mut ColConstraint, v: Value, inclusive: bool) {
    let replace = match &c.high {
        None => true,
        Some((cur, cur_incl)) => match v.index_cmp(cur) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Greater => false,
        },
    };
    if replace {
        c.high = Some((v, inclusive));
    }
}

/// Pick the cheapest access path for `table` under `pred` (whose slots for
/// this table start at `base`), with cost and cardinality estimates.
pub fn plan_table_costed(table: &Table, pred: Option<&BoundExpr>, base: usize) -> TablePlan {
    let live = table.len() as f64;
    let full = TablePlan { path: AccessPath::FullScan, est_rows: live, cost: live, exact: true };
    let Some(pred) = pred else { return full };
    let cons = constraints(pred, base, table.schema.arity());
    let mut best = full;
    for (pos, ix) in table.indexes().iter().enumerate() {
        let mut eq_len = 0;
        for &col in &ix.def.columns {
            if cons[col].eq.is_some() {
                eq_len += 1;
            } else {
                break;
            }
        }
        let range_col = ix
            .def
            .columns
            .get(eq_len)
            .copied()
            .filter(|&col| cons[col].low.is_some() || cons[col].high.is_some());
        if eq_len == 0 && range_col.is_none() {
            continue;
        }
        let prefix: Vec<Value> = ix.def.columns[..eq_len]
            .iter()
            .map(|&col| cons[col].eq.clone().expect("eq constraint checked"))
            .collect();
        let (low, high) = match range_col {
            Some(col) => {
                let low = match &cons[col].low {
                    None => Bound::Unbounded,
                    Some((v, true)) => Bound::Included(v.clone()),
                    Some((v, false)) => Bound::Excluded(v.clone()),
                };
                let high = match &cons[col].high {
                    None => Bound::Unbounded,
                    Some((v, true)) => Bound::Included(v.clone()),
                    Some((v, false)) => Bound::Excluded(v.clone()),
                };
                (low, high)
            }
            None => (Bound::Unbounded, Bound::Unbounded),
        };
        // Cardinality: exact dive where cheap, statistics past the cap.
        let (est_rows, exact) = if eq_len == ix.def.columns.len() && range_col.is_none() {
            (ix.count_eq(&crate::index::IndexKey(prefix.clone())) as f64, true)
        } else {
            let (n, capped) = ix.count_prefix_range(&prefix, as_ref(&low), as_ref(&high), DIVE_CAP);
            if capped {
                let stats = table.statistics();
                let mut sel = 1.0f64;
                for &col in &ix.def.columns[..eq_len] {
                    sel *= stats.eq_selectivity(col);
                }
                if let Some(col) = range_col {
                    sel *= stats.range_selectivity(col);
                }
                // Never estimate below what the dive already saw, nor above
                // the live row count (exact even when stats are stale).
                ((live * sel).clamp(n as f64, live.max(n as f64)), false)
            } else {
                (n as f64, true)
            }
        };
        let cost = (live + 2.0).log2() + est_rows;
        if cost < best.cost {
            best = TablePlan {
                path: AccessPath::Index { index: pos, prefix, low, high },
                est_rows,
                cost,
                exact,
            };
        }
    }
    best
}

/// Pick an access path for `table` under `pred`. Compatibility wrapper
/// around [`plan_table_costed`] returning just the path.
pub fn plan_table(table: &Table, pred: Option<&BoundExpr>, base: usize) -> AccessPath {
    plan_table_costed(table, pred, base).path
}

/// Stream the candidate row ids for an access path in index-key order
/// (slot order for full scans). Lazy: a consumer that stops early — LIMIT,
/// short-circuiting intersection — never walks the rest of the index.
pub fn candidate_iter<'t>(
    table: &'t Table,
    path: &AccessPath,
) -> Box<dyn Iterator<Item = crate::row::RowId> + 't> {
    match path {
        AccessPath::FullScan => {
            // Under a pinned MVCC snapshot a full scan must visit every
            // heap slot: a tombstoned slot can still hold the version
            // visible to this snapshot. The visibility filter happens at
            // row-fetch time (`crate::db::snapshot_row`).
            if table.is_mvcc() && crate::db::current_snapshot().is_some() {
                Box::new((0..table.slot_count() as u64).map(crate::row::RowId))
            } else {
                Box::new(table.scan().map(|(id, _)| id))
            }
        }
        AccessPath::Index { index, prefix, low, high } => {
            let ix = &table.indexes()[*index];
            if prefix.len() == ix.def.columns.len()
                && matches!((low, high), (Bound::Unbounded, Bound::Unbounded))
            {
                Box::new(ix.get_eq(&crate::index::IndexKey(prefix.clone())))
            } else {
                Box::new(ix.iter_prefix_range(prefix.clone(), low.clone(), high.clone()))
            }
        }
    }
}

/// Materialize the candidate row ids for an access path.
pub fn candidates(table: &Table, path: &AccessPath) -> Vec<crate::row::RowId> {
    candidate_iter(table, path).collect()
}

fn as_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexDef;
    use crate::predicate::{bind, Expr, Scope};
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::required("version", ValueType::Int),
                ColumnDef::nullable("score", ValueType::Float),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name_ver".into(), columns: vec![1, 2], unique: false })
            .unwrap();
        for i in 0..20i64 {
            t.insert(vec![
                Value::Null,
                format!("f{}", i % 5).into(),
                Value::Int(i),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn plan(t: &Table, where_sql: &Expr) -> AccessPath {
        plan_costed(t, where_sql).path
    }

    fn plan_costed(t: &Table, where_sql: &Expr) -> TablePlan {
        let scope = Scope::single(&t.schema);
        let be = bind(where_sql, &scope, &[]).unwrap();
        plan_table_costed(t, Some(&be), 0)
    }

    #[test]
    fn picks_pk_point_lookup() {
        let t = table();
        let p = plan(&t, &Expr::col_eq("id", 3i64));
        assert!(p.is_point_lookup(&t));
        assert_eq!(candidates(&t, &p).len(), 1);
    }

    #[test]
    fn picks_composite_prefix() {
        let t = table();
        let e = Expr::col_eq("name", "f1");
        let p = plan(&t, &e);
        match &p {
            AccessPath::Index { index, prefix, .. } => {
                assert_eq!(t.indexes()[*index].def.name, "by_name_ver");
                assert_eq!(prefix.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(candidates(&t, &p).len(), 4); // f1 appears for i=1,6,11,16
    }

    #[test]
    fn eq_prefix_plus_range() {
        let t = table();
        let e = Expr::And(
            Box::new(Expr::col_eq("name", "f1")),
            Box::new(Expr::Cmp(
                CmpOp::Ge,
                Box::new(Expr::col("version")),
                Box::new(Expr::lit(6i64)),
            )),
        );
        let p = plan(&t, &e);
        match &p {
            AccessPath::Index { prefix, low, .. } => {
                assert_eq!(prefix.len(), 1);
                assert_eq!(*low, Bound::Included(Value::Int(6)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(candidates(&t, &p).len(), 3); // versions 6, 11, 16
    }

    #[test]
    fn full_scan_when_no_index_applies() {
        let t = table();
        let e = Expr::col_eq("score", 3.0f64);
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
        assert_eq!(plan_table(&t, None, 0), AccessPath::FullScan);
        assert_eq!(candidates(&t, &AccessPath::FullScan).len(), 20);
    }

    #[test]
    fn range_only_on_first_index_column() {
        let t = table();
        let e = Expr::Cmp(CmpOp::Lt, Box::new(Expr::col("name")), Box::new(Expr::lit("f1")));
        match plan(&t, &e) {
            AccessPath::Index { prefix, high, .. } => {
                assert!(prefix.is_empty());
                assert_eq!(high, Bound::Excluded(Value::from("f1")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conflicting_bounds_tighten() {
        let t = table();
        // version > 3 AND version > 7 -> low bound 7 exclusive (on name-prefixed idx needs name eq too)
        let e = Expr::and_all(vec![
            Expr::col_eq("name", "f0"),
            Expr::Cmp(CmpOp::Gt, Box::new(Expr::col("version")), Box::new(Expr::lit(3i64))),
            Expr::Cmp(CmpOp::Gt, Box::new(Expr::col("version")), Box::new(Expr::lit(7i64))),
        ])
        .unwrap();
        match plan(&t, &e) {
            AccessPath::Index { low, .. } => assert_eq!(low, Bound::Excluded(Value::Int(7))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_disables_index_use() {
        let t = table();
        // OR at the top is not a conjunction of sargables
        let e = Expr::Or(
            Box::new(Expr::col_eq("name", "f0")),
            Box::new(Expr::col_eq("version", 3i64)),
        );
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
    }

    #[test]
    fn costed_plan_reports_exact_dive() {
        let t = table();
        let p = plan_costed(&t, &Expr::col_eq("name", "f1"));
        assert!(p.exact, "4 matching entries are within the dive cap");
        assert_eq!(p.est_rows, 4.0);
        assert!(p.cost < t.len() as f64);
        assert!(p.describe(&t).contains("by_name_ver"), "{}", p.describe(&t));
    }

    #[test]
    fn unselective_index_degenerates_to_full_scan() {
        // Every row shares one key: fetching via the index costs a full
        // scan *plus* the tree walk, so the planner must pick the scan.
        let schema = TableSchema::new(
            "t",
            vec![ColumnDef::auto_id("id"), ColumnDef::required("name", ValueType::Str)],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name".into(), columns: vec![1], unique: false })
            .unwrap();
        for _ in 0..50 {
            t.insert(vec![Value::Null, "same".into()]).unwrap();
        }
        let p = plan_costed(&t, &Expr::col_eq("name", "same"));
        assert_eq!(p.path, AccessPath::FullScan);
    }

    #[test]
    fn capped_dive_falls_back_to_statistics() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::auto_id("id"),
                ColumnDef::required("name", ValueType::Str),
                ColumnDef::required("version", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index(IndexDef { name: "by_name_ver".into(), columns: vec![1, 2], unique: false })
            .unwrap();
        let total = DIVE_CAP as i64 + 600;
        for i in 0..total {
            let name = if i % 8 == 0 { "cold" } else { "hot" };
            t.insert(vec![Value::Null, name.into(), Value::Int(i)]).unwrap();
        }
        // "hot" matches 7/8 of the table — more than the dive cap, so the
        // estimate is statistical, floored at what the dive saw.
        let p = plan_costed(&t, &Expr::col_eq("name", "hot"));
        assert!(!p.exact);
        assert!(p.est_rows >= DIVE_CAP as f64);
        assert!(p.est_rows <= total as f64);
        // "cold" is a cheap exact dive and beats the scan.
        let p = plan_costed(&t, &Expr::col_eq("name", "cold"));
        assert!(p.exact);
        assert_eq!(p.est_rows, (total as f64 / 8.0).ceil());
        assert!(matches!(p.path, AccessPath::Index { .. }));
    }

    #[test]
    fn null_literal_not_sargable() {
        let t = table();
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::col("name")),
            Box::new(Expr::Literal(Value::Null)),
        );
        assert_eq!(plan(&t, &e), AccessPath::FullScan);
    }
}
